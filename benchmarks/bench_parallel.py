"""E-PARALLEL — pooled per-shard dispatch vs the serial execution paths.

Two claims about the parallel shard execution this PR adds:

* **Batched pool dispatch beats the singleton loop** — a zipfian ingest
  through ``insert_batch`` with an 8-worker shard pool sustains ≥2× the
  ops/s of the one-``insert``-per-op serial loop, while producing a
  *bit-identical* structure and move log to the one-worker batched run
  (hard assert, size-independent).
* **Wide scans fan out** — ``range_ranks`` / ``count_ranges`` with a pool
  attached answer a fixed window set faster than draining the
  single-threaded cross-shard cursor, with identical results (hard
  assert).

The determinism asserts stay hard in quick mode; the wall-clock speedup
claims are ``expect``-demoted there (tiny n cannot amortize dispatch).
"""

from __future__ import annotations

from benchmarks.conftest import QUICK, emit, expect, scaled
from repro.perf.scenarios import (
    run_parallel_batch_ingest,
    run_parallel_scan_fanout,
)

SEED = 20260730


def test_parallel_batch_ingest_beats_singleton_loop(run_once):
    n = scaled(16384)

    def experiment():
        return run_parallel_batch_ingest(n, SEED)

    metrics = run_once(experiment)
    # Bit-identical execution across worker counts is size-independent.
    assert metrics["parallel_matches_serial"] is True
    emit(
        f"E-PARALLEL batched zipfian ingest, n={n}",
        [
            {
                "path": "singleton loop",
                "ops_per_second": round(metrics["singleton_ops_per_second"]),
            },
            {
                "path": "batched, 1 worker",
                "ops_per_second": round(metrics["serial_ops_per_second"]),
            },
            {
                "path": f"batched, pool (batch={metrics['batch_size']})",
                "ops_per_second": round(metrics["parallel_ops_per_second"]),
            },
        ],
        note=f"speedup over singleton: {metrics['speedup']:.2f}x",
    )
    expect(
        metrics["speedup"] >= 2.0,
        f"pooled batch ingest speedup {metrics['speedup']:.2f}x < 2x",
    )


def test_parallel_scan_fanout_beats_cursor_drain(run_once):
    n = scaled(65536)

    def experiment():
        return run_parallel_scan_fanout(n, SEED)

    metrics = run_once(experiment)
    assert metrics["parallel_matches_serial"] is True
    assert metrics["reads_match"] is True
    emit(
        f"E-PARALLEL wide scans, n={n}",
        [
            {
                "path": "cursor drain",
                "elements_per_second": round(metrics["serial_ops_per_second"]),
            },
            {
                "path": "range_ranks + count_ranges, pool",
                "elements_per_second": round(
                    metrics["parallel_ops_per_second"]
                ),
            },
        ],
        note=f"speedup over cursor drain: {metrics['speedup']:.2f}x",
    )
    expect(
        metrics["speedup"] >= 1.2,
        f"pooled scan speedup {metrics['speedup']:.2f}x < 1.2x",
    )
