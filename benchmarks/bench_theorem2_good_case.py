"""E-GOOD — Theorem 2, Good-Case Cost: F ⊳ R keeps F's input-specific bound.

On hammer-insert workloads the adaptive PMA (F) is roughly a ``log n`` factor
cheaper than the classical PMA; embedding it into a reliable R must preserve
that advantage (amortized cost of ``F ⊳ R`` = O(G_F(x))).
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_N, emit, expect, measure
from repro.algorithms import AdaptivePMA, ClassicalPMA, DeamortizedPMA
from repro.core import Embedding
from repro.workloads import HammerWorkload


def test_good_case_cost_follows_fast_algorithm(run_once):
    n = DEFAULT_N

    def experiment():
        rows = [
            measure("F alone: adaptive", AdaptivePMA(n), HammerWorkload(n, seed=1)),
            measure("R alone: classical", ClassicalPMA(n), HammerWorkload(n, seed=1)),
            measure(
                "adaptive ⊳ classical",
                Embedding(
                    n,
                    fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
                    reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
                ),
                HammerWorkload(n, seed=1),
            ),
            measure(
                "adaptive ⊳ deamortized",
                Embedding(
                    n,
                    fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
                    reliable_factory=lambda cap, slots: DeamortizedPMA(cap, slots),
                ),
                HammerWorkload(n, seed=1),
            ),
        ]
        return rows

    rows = run_once(experiment)
    emit(
        "E-GOOD (Theorem 2, good case): hammer-insert workload, n = %d" % n,
        rows,
        note="Expected shape: both embeddings track the adaptive PMA's "
        "amortized cost, beating the classical PMA (R alone).",
    )
    adaptive = next(r for r in rows if r["structure"] == "F alone: adaptive")
    classical = next(r for r in rows if r["structure"] == "R alone: classical")
    embedded = next(r for r in rows if r["structure"] == "adaptive ⊳ classical")
    expect(embedded["amortized"] < classical["amortized"], "embedding should beat R alone on hammer")
    expect(embedded["amortized"] < 3 * adaptive["amortized"], "embedding should track F's adaptive bound")
