"""E-LAT — tail-latency truth: p999 under the adversarial cliff-chaser.

The paper's worst-case guarantees are invisible in amortized tables: the
deamortized PMA (Theorem 3) pays a small *average* premium over the
classical PMA precisely to cap what any single operation can cost.  This
experiment makes that trade measurable: under the feedback-driven
rebalance-cliff chaser, classical wins on amortized moves while the
deamortized structure wins on p999 per-operation move cost — the tail
inversion committed as the ``tail_inversion`` correctness flag of
``BENCH_latency.json``.

Also regression-checked here: batched and singleton runs report their
percentiles on the same per-operation scale (the batch-blind percentile
bugfix — before it, a batched run's p99 was a whole-batch number and the
ratio below exploded), and the latency percentiles are mutually ordered.
"""

from __future__ import annotations

from benchmarks.conftest import (
    BASE_FACTORIES,
    emit,
    expect,
    scaled,
)
from repro.algorithms import ClassicalPMA
from repro.analysis import run_workload
from repro.core.sharded import ShardedLabeler
from repro.workloads import BulkLoadWorkload, RebalanceCliffWorkload

#: The committed-baseline seed (BENCH_latency.json uses the same stream).
SEED = 20260730

#: Full-size run matches the BENCH_latency.json full row; the quick-mode
#: stand-in (128) is below where the tail inversion develops, so the shape
#: claims demote to notes there.
N = scaled(512)


def _row(name: str, result) -> dict[str, object]:
    tracker = result.tracker
    return {
        "structure": name,
        "amortized": tracker.amortized,
        "p50": tracker.percentile(0.50),
        "p99": tracker.percentile(0.99),
        "p999": tracker.percentile(0.999),
        "worst_case": tracker.worst_case,
        "latency_p999_us": tracker.latency_percentile(0.999) * 1e6,
    }


def test_cliff_chaser_tail_inversion(run_once):
    def experiment():
        rows = []
        for name, factory in BASE_FACTORIES.items():
            result = run_workload(
                factory(N), RebalanceCliffWorkload(N, seed=SEED)
            )
            rows.append(_row(name, result))
        return rows

    rows = run_once(experiment)
    emit(
        "E-LAT: rebalance-cliff chaser, move-cost tails, n = %d" % N,
        rows,
        note="Expected shape: classical-pma beats deamortized-pma on "
        "amortized moves, deamortized-pma beats classical-pma on p999 — "
        "the worst-case guarantee showing up only in the tail.",
    )
    by_name = {row["structure"]: row for row in rows}
    classical = by_name["classical-pma"]
    deamortized = by_name["deamortized-pma"]
    expect(
        classical["amortized"] < deamortized["amortized"],
        "classical should win the amortized average on the cliff-chaser",
    )
    expect(
        deamortized["p999"] < classical["p999"],
        "deamortized should win the p999 tail on the cliff-chaser",
    )
    # Size-independent: every run carries latencies, and the percentile
    # ladder is ordered by construction.
    for row in rows:
        assert row["latency_p999_us"] > 0.0
    for result_row in rows:
        assert result_row["p50"] <= result_row["p99"] <= result_row["p999"]


def test_batched_percentiles_per_operation_scale(run_once):
    """Singleton vs batched: the same stream, the same percentile scale."""

    def experiment():
        workload = BulkLoadWorkload(N, batch_size=64, seed=SEED)
        singleton = run_workload(
            ShardedLabeler(lambda c: ClassicalPMA(c), shard_capacity=128),
            workload,
        )
        batched = run_workload(
            ShardedLabeler(lambda c: ClassicalPMA(c), shard_capacity=128),
            workload,
            batch_size=64,
        )
        return [
            _row("singleton", singleton),
            _row("batched(64)", batched),
        ]

    rows = run_once(experiment)
    emit(
        "E-LAT: per-operation percentile scale, singleton vs batched, "
        "n = %d" % N,
        rows,
        note="Expected shape: comparable p99 on both rows.  Before the "
        "weight-aware fix the batched p99 was a whole-batch total "
        "(~64x the per-operation number).",
    )
    singleton, batched = rows
    # Size-independent regression: the batched p99 must sit on the per-op
    # scale.  With event-based percentiles it was a whole-batch cost and
    # exceeded the singleton number by roughly the batch factor.
    assert batched["p99"] <= max(1.0, float(singleton["worst_case"]))
    assert (
        batched["latency_p999_us"] < singleton["latency_p999_us"] * 64
    ), "batched per-op latency should never exceed singleton by the batch factor"


def test_latency_percentiles_ordered(run_once):
    """The latency ladder p50 <= p99 <= p999 <= max holds on a real run."""

    def experiment():
        result = run_workload(
            ClassicalPMA(N), RebalanceCliffWorkload(N, seed=SEED)
        )
        return result.tracker

    tracker = run_once(experiment)
    p50 = tracker.latency_percentile(0.50)
    p99 = tracker.latency_percentile(0.99)
    p999 = tracker.latency_percentile(0.999)
    assert 0.0 < p50 <= p99 <= p999 <= tracker.max_latency
    summary = tracker.summary()
    for key in ("latency_p50", "latency_p99", "latency_p999", "latency_max"):
        assert key in summary
