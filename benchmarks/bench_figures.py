"""FIG-1/2/3/4 — structural renderings of the paper's illustrative figures.

The four figures of the paper are diagrams of data-structure state, not
measurements; this benchmark regenerates each of them from a live embedding:

* Figure 1 — the three views of the array (embedding / F-emulator / R-shell);
* Figure 2 — a deadweight move: the per-element deadweight counters;
* Figure 3 — rebuild intervals of a pending checkpoint;
* Figure 4 — executing a rebuild interval step by step.
"""

from __future__ import annotations

from fractions import Fraction

from benchmarks.conftest import emit
from repro.algorithms import ClassicalPMA, NaiveLabeler
from repro.core import Embedding
from repro.core.rebuild import build_plan


def test_render_paper_figures(run_once):
    def experiment():
        embedding = Embedding(
            24,
            fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
            reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
            reliable_expected_cost=4,
        )
        key = Fraction(0)
        for _ in range(18):
            embedding.insert(1, key)
            key -= 1
        views = embedding.render_views()
        shadow = list(embedding.emulator.shadow)
        checkpoint = list(embedding.emulator.simulated.slots())
        plan = build_plan(shadow, checkpoint)
        deadweight = dict(embedding.physical.deadweight_by_element)
        return views, plan, deadweight, embedding

    views, plan, deadweight, embedding = run_once(experiment)

    print("\nFIG-1: the three views of the array (F/f = F-slot, B/b = buffer, . = R-empty;")
    print("       upper case = occupied by a real element)")
    print("  embedding view :", views["embedding"])
    print("  F-emulator view:", views["f_emulator"])
    print("  R-shell view   :", views["r_shell"])

    rows = [
        {"figure": "FIG-2", "quantity": "total deadweight moves", "value": embedding.deadweight_moves},
        {"figure": "FIG-2", "quantity": "max deadweight per element", "value": max(deadweight.values(), default=0)},
        {"figure": "FIG-3", "quantity": "pending rebuild steps", "value": plan.total_steps},
        {"figure": "FIG-4", "quantity": "buffered elements awaiting incorporation", "value": embedding.buffered_elements},
    ]
    emit("FIG-2/3/4: deadweight counters and the pending rebuild plan", rows,
         note="Run examples/figure2_deadweight.py and examples/figure34_rebuild.py "
         "for step-by-step traces of the same structures.")

    assert len(views["embedding"]) == embedding.num_slots
    assert embedding.elements() == sorted(embedding.elements())
