"""E-EXP / E-TAIL — expected cost vs tail behaviour of the randomized labeler.

The randomized PMA (the stand-in for the O(log^{3/2} n) algorithm) has good
average cost but heavy per-operation tails; the deamortized PMA caps the tail
by construction.  This is the tension Section 1 describes — and the reason
the paper needs the layered embedding to get both at once.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_N, emit, expect
from repro.algorithms import DeamortizedPMA, RandomizedPMA
from repro.analysis import run_workload
from repro.workloads import RandomWorkload


def test_randomized_average_vs_tail(run_once):
    n = DEFAULT_N

    def experiment():
        randomized = run_workload(RandomizedPMA(n, seed=31), RandomWorkload(n, n, seed=31))
        deamortized = run_workload(DeamortizedPMA(n), RandomWorkload(n, n, seed=31))
        rows = []
        for name, run in (("randomized-pma (Y)", randomized), ("deamortized-pma (Z)", deamortized)):
            rows.append(
                {
                    "structure": name,
                    "amortized": run.amortized_cost,
                    "p50": run.tracker.percentile(0.5),
                    "p99": run.tracker.percentile(0.99),
                    "worst_case": run.worst_case_cost,
                    "fraction ≥ 4·mean": run.tracker.tail_fraction(
                        int(4 * run.amortized_cost) + 1
                    ),
                }
            )
        return rows

    rows = run_once(experiment)
    emit(
        "E-TAIL: expected cost vs per-operation tails, n = %d" % n,
        rows,
        note="Expected shape: comparable amortized cost, but the randomized "
        "labeler's worst_case/p99 far exceeds the deamortized labeler's cap.",
    )
    randomized, deamortized = rows
    expect(
        randomized["worst_case"] > deamortized["worst_case"],
        "the randomized labeler's tail should exceed the deamortized cap",
    )
