"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment of DESIGN.md / EXPERIMENTS.md:
it runs the relevant workloads through the relevant structures via
``pytest-benchmark`` (one round — the measured quantity of interest is the
paper's cost metric, element moves, not wall-clock time) and prints the
comparison table whose *shape* reproduces the paper's claim.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms import (
    AdaptivePMA,
    ClassicalPMA,
    DeamortizedPMA,
    NaiveLabeler,
    RandomizedPMA,
)
from repro.analysis import format_table, run_workload

#: Problem size used by most experiments; large enough for the asymptotic
#: shapes to show, small enough for a pure-Python run to stay quick.
DEFAULT_N = 2048

#: Standalone algorithm factories reused across experiments.
BASE_FACTORIES = {
    "naive": lambda n: NaiveLabeler(n),
    "classical-pma": lambda n: ClassicalPMA(n),
    "adaptive-pma": lambda n: AdaptivePMA(n),
    "randomized-pma": lambda n: RandomizedPMA(n, seed=97),
    "deamortized-pma": lambda n: DeamortizedPMA(n),
}


def log2(n: int) -> float:
    return math.log2(max(2, n))


def measure(name: str, labeler, workload) -> dict[str, object]:
    """Run one (structure, workload) pair and return a report row."""
    result = run_workload(labeler, workload)
    return {
        "structure": name,
        "workload": workload.name,
        "operations": result.tracker.operations,
        "amortized": result.amortized_cost,
        "worst_case": result.worst_case_cost,
        "p99": result.tracker.percentile(0.99),
        "total": result.total_cost,
    }


def emit(title: str, rows: list[dict[str, object]], note: str = "") -> None:
    """Print an experiment table (captured by ``pytest -s`` / tee)."""
    print()
    print(format_table(rows, title=title))
    if note:
        print(note)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return runner
