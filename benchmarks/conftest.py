"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment of DESIGN.md / EXPERIMENTS.md:
it runs the relevant workloads through the relevant structures via
``pytest-benchmark`` (one round — the measured quantity of interest is the
paper's cost metric, element moves, not wall-clock time) and prints the
comparison table whose *shape* reproduces the paper's claim.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.

**Quick mode.**  Setting ``REPRO_BENCH_QUICK=1`` shrinks every experiment to
a tiny ``n`` (:func:`scaled`) and demotes the asymptotic *shape* assertions
(:func:`expect`) to printed notes: at smoke-test sizes the paper's
asymptotic claims do not hold, and the point of the CI benchmark smoke job
is to catch import/API/workload rot, not to re-verify the paper.  Hard
``assert`` statements in the benchmarks remain hard in quick mode — they
are reserved for size-independent correctness claims.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.algorithms import (
    AdaptivePMA,
    ClassicalPMA,
    DeamortizedPMA,
    NaiveLabeler,
    RandomizedPMA,
)
from repro.analysis import format_table, run_workload

#: True when the CI smoke job (or a developer) asks for the tiny-n run.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Experiment size cap in quick mode; big enough for every structure's
#: minimum-slack requirements, small enough that the whole benchmark
#: directory runs in seconds.
QUICK_N = 128


def scaled(n: int) -> int:
    """The experiment's real size, or the tiny quick-mode stand-in."""
    return min(n, QUICK_N) if QUICK else n


def sweep_sizes(sizes: list[int]) -> list[int]:
    """A size sweep for exponent fits; shrunk but still strictly growing
    in quick mode (a flat sweep would make the log-fit degenerate)."""
    return [48, 80, 128] if QUICK else sizes


def expect(condition: bool, message: str = "") -> None:
    """Check an experiment's asymptotic shape claim.

    A hard assertion on a real run; in quick mode the claim is only
    reported, because the asymptotic shapes do not hold at tiny n.
    """
    if condition:
        return
    if QUICK:
        print(f"[quick mode] shape claim skipped (fails at tiny n): {message}")
        return
    raise AssertionError(message or "benchmark shape claim failed")


#: Problem size used by most experiments; large enough for the asymptotic
#: shapes to show, small enough for a pure-Python run to stay quick.
DEFAULT_N = scaled(2048)

#: Standalone algorithm factories reused across experiments.
BASE_FACTORIES = {
    "naive": lambda n: NaiveLabeler(n),
    "classical-pma": lambda n: ClassicalPMA(n),
    "adaptive-pma": lambda n: AdaptivePMA(n),
    "randomized-pma": lambda n: RandomizedPMA(n, seed=97),
    "deamortized-pma": lambda n: DeamortizedPMA(n),
}


def log2(n: int) -> float:
    return math.log2(max(2, n))


def measure(name: str, labeler, workload) -> dict[str, object]:
    """Run one (structure, workload) pair and return a report row."""
    result = run_workload(labeler, workload)
    return {
        "structure": name,
        "workload": workload.name,
        "operations": result.tracker.operations,
        "amortized": result.amortized_cost,
        "worst_case": result.worst_case_cost,
        "p99": result.tracker.percentile(0.99),
        "total": result.total_cost,
    }


def emit(title: str, rows: list[dict[str, object]], note: str = "") -> None:
    """Print an experiment table (captured by ``pytest -s`` / tee)."""
    print()
    print(format_table(rows, title=title))
    if note:
        print(note)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return runner
