"""E-BATCH — batched vs. singleton execution across algorithms and batch sizes.

The paper charges one unit per element moved; batched mutation is the
standard systems lever for bulk ingestion (partition loads, LSM flushes,
index builds).  This experiment drives the bulk-load workload through every
dense-array algorithm twice — once one operation at a time, once through
``insert_batch`` — and compares total element moves.  The batched runs
service each sorted run with a single merged rebalance, so their totals
should drop well below the singleton totals once batches are large enough
to amortize the merge.
"""

from __future__ import annotations

from benchmarks.conftest import BASE_FACTORIES, DEFAULT_N, emit, expect
from repro.analysis import run_workload
from repro.workloads.bulk import BulkLoadWorkload

BATCH_SIZES = (16, 64, 256)


def test_batched_beats_singleton_on_bulk_loads(run_once):
    n = DEFAULT_N

    def experiment():
        rows = []
        for name, factory in BASE_FACTORIES.items():
            singleton = run_workload(
                factory(n), BulkLoadWorkload(n, batch_size=64, seed=23)
            )
            row = {
                "structure": name,
                "singleton_total": singleton.total_cost,
            }
            for batch_size in BATCH_SIZES:
                batched = run_workload(
                    factory(n),
                    BulkLoadWorkload(n, batch_size=64, seed=23),
                    batch_size=batch_size,
                )
                assert batched.final_keys == singleton.final_keys
                row[f"batched_{batch_size}"] = batched.total_cost
            rows.append(row)
        return rows

    rows = run_once(experiment)
    emit(
        "E-BATCH: bulk-load (sorted runs of 64), n = %d, total element moves" % n,
        rows,
        note="Batched execution lays each sorted run out with one merged "
        "rebalance; singleton execution pays one cascade per element.",
    )
    for row in rows:
        for batch_size in BATCH_SIZES:
            if batch_size >= 64:
                expect(
                    row[f"batched_{batch_size}"] < row["singleton_total"],
                    f"{row['structure']}: batch={batch_size} should beat "
                    "singleton execution on bulk loads",
                )


def test_batched_amortized_per_element_scales_down(run_once):
    """Larger batches amortize better: per-element cost is non-increasing-ish."""
    n = DEFAULT_N

    def experiment():
        rows = []
        for name in ("classical-pma", "naive"):
            factory = BASE_FACTORIES[name]
            row = {"structure": name}
            for batch_size in BATCH_SIZES:
                result = run_workload(
                    factory(n),
                    BulkLoadWorkload(n, batch_size=256, seed=29),
                    batch_size=batch_size,
                )
                stats = result.tracker.batch_statistics()
                row[f"per_element_{batch_size}"] = round(
                    stats["amortized_per_element"], 2
                )
            rows.append(row)
        return rows

    rows = run_once(experiment)
    emit(
        "E-BATCH-SCALE: amortized moves per element vs. batch size, n = %d" % n,
        rows,
        note="Bigger batches share one rebalance across more elements.",
    )
    for row in rows:
        expect(
            row[f"per_element_{max(BATCH_SIZES)}"]
            <= row[f"per_element_{min(BATCH_SIZES)}"] * 1.5,
            f"{row['structure']}: larger batches should amortize at least as well",
        )
