"""E-DEAD — Lemma 5 and the Deadweight Problem ablation.

Measures (a) the per-element deadweight bound of the embedding (Lemma 5 says
each buffered element is carried O(1) times) and (b) how the naive
interleaving strawman of Section 1 blows up instead.
"""

from __future__ import annotations

from fractions import Fraction

from benchmarks.conftest import emit, expect, scaled
from repro.algorithms import AdaptivePMA, ClassicalPMA, NaiveLabeler
from repro.core import Embedding, InterleavedComposition


def test_deadweight_bounded_in_embedding_unbounded_in_strawman(run_once):
    n = scaled(1024)

    def experiment():
        embedding = Embedding(
            n,
            fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
            reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
            reliable_expected_cost=16,
        )
        key = Fraction(0)
        for _ in range(n):
            embedding.insert(1, key)
            key -= 1

        strawman = InterleavedComposition(
            n,
            first_factory=lambda cap, _: AdaptivePMA(cap),
            second_factory=lambda cap, _: ClassicalPMA(cap),
        )
        for index in range(n):
            strawman.insert(1, n - index)

        embedding_per_element = max(
            embedding.physical.deadweight_by_element.values(), default=0
        )
        return [
            {
                "structure": "embedding (naive ⊳ classical)",
                "total deadweight moves": embedding.deadweight_moves,
                "max deadweight per element": embedding_per_element,
                "buffered (peak)": embedding.max_buffered_elements,
            },
            {
                "structure": "naive interleaving (strawman)",
                "total deadweight moves": strawman.total_deadweight,
                "max deadweight per element": strawman.max_deadweight_per_element,
                "buffered (peak)": "n/a",
            },
        ]

    rows = run_once(experiment)
    emit(
        "E-DEAD (Lemma 5): deadweight accounting on front-insert workload, n = %d" % n,
        rows,
        note="Expected shape: the embedding keeps the per-element deadweight "
        "at a small constant (Lemma 5 bound is 4); the strawman drags some "
        "elements around an unbounded number of times.",
    )
    expect(rows[0]["max deadweight per element"] <= 8, "Lemma 5: per-element deadweight stays a small constant")
    expect(
        rows[1]["max deadweight per element"] > rows[0]["max deadweight per element"],
        "the interleaving strawman should drag elements around more",
    )
