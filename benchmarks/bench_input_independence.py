"""E-IIF — Lemma 4: the R-shell's input is independent of R's random bits."""

from __future__ import annotations

from benchmarks.conftest import emit, scaled
from repro.algorithms import NaiveLabeler, RandomizedPMA
from repro.analysis import run_workload
from repro.core import Embedding
from repro.workloads import RandomWorkload


def test_shell_input_identical_across_reliable_seeds(run_once):
    # Lemma 4 is a determinism claim, valid at any size — its assertions
    # below stay hard even in quick mode.
    n = scaled(512)
    seeds = [1, 2, 3, 5, 8, 13]

    def experiment():
        traces = {}
        costs = {}
        for seed in seeds:
            embedding = Embedding(
                n,
                fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
                reliable_factory=lambda cap, slots: RandomizedPMA(cap, slots, seed=seed),
                reliable_expected_cost=12,
            )
            run = run_workload(embedding, RandomWorkload(n, n, delete_fraction=0.2, seed=77))
            traces[seed] = tuple(embedding.shell_input_trace)
            costs[seed] = run.amortized_cost
        return traces, costs

    traces, costs = run_once(experiment)
    reference = traces[seeds[0]]
    rows = [
        {
            "R seed": seed,
            "shell operations": len(traces[seed]),
            "trace identical to seed 1": traces[seed] == reference,
            "embedding amortized cost": costs[seed],
        }
        for seed in seeds
    ]
    emit(
        "E-IIF (Lemma 4): R-shell input sequence across R random seeds, n = %d" % n,
        rows,
        note="Expected shape: the shell receives the exact same operation "
        "sequence for every seed (the costs may differ — that is R's own "
        "randomness at work), so R's randomness never feeds back into R's input.",
    )
    assert len(reference) > 0
    assert all(row["trace identical to seed 1"] for row in rows)
