"""E-PRED — Corollary 12: learning-augmented list labeling with error η.

Sweep the prediction error η: the learned labeler's amortized cost must grow
with η (``O(log² η)`` in the corollary), while the layered composition keeps
the worst case bounded even when predictions are garbage.
"""

from __future__ import annotations

from benchmarks.conftest import emit, expect, scaled
from repro.algorithms import ClassicalPMA, LearnedLabeler
from repro.analysis import run_workload
from repro.core import make_corollary12_labeler
from repro.workloads import PredictedWorkload


def test_corollary12_prediction_error_sweep(run_once):
    n = scaled(1024)
    etas = [0, 4, 32, 256, n]

    def experiment():
        rows = []
        for eta in etas:
            workload = PredictedWorkload(n, eta=eta, seed=9)
            learned = run_workload(
                LearnedLabeler(n, predictor=workload.predictor), workload
            )
            layered = run_workload(
                make_corollary12_labeler(n, workload.predictor, seed=9), workload
            )
            rows.append(
                {
                    "eta": eta,
                    "learned amortized": learned.amortized_cost,
                    "learned worst": learned.worst_case_cost,
                    "layered amortized": layered.amortized_cost,
                    "layered worst": layered.worst_case_cost,
                }
            )
        classical = run_workload(ClassicalPMA(n), PredictedWorkload(n, eta=0, seed=9))
        rows.append(
            {
                "eta": "n/a (classical PMA)",
                "learned amortized": classical.amortized_cost,
                "learned worst": classical.worst_case_cost,
                "layered amortized": "",
                "layered worst": "",
            }
        )
        return rows

    rows = run_once(experiment)
    emit(
        "E-PRED (Corollary 12): amortized cost vs prediction error η, n = %d" % n,
        rows,
        note="Expected shape: the learned columns grow with η (≈ log² η); "
        "with η = 0 the learned labeler beats the classical PMA; the layered "
        "worst-case column stays far below n for every η.",
    )
    numeric = [row for row in rows if isinstance(row["eta"], int)]
    expect(
        numeric[0]["learned amortized"] <= numeric[-1]["learned amortized"],
        "the learned labeler's cost should grow with the prediction error",
    )
    expect(
        all(row["layered worst"] < n / 2 for row in numeric),
        "the layered worst case should stay far below n for every eta",
    )
