"""E-OBS — a live metrics registry is provably free.

Two claims about the observability subsystem (:mod:`repro.obs`):

* **Zero structural interference** — running the point-lookup-heavy and
  the pooled batched-ingest workloads under a live
  :class:`~repro.obs.MetricsRegistry` produces a move log whose digest is
  *identical* to the bare run's (hard assert, size-independent): counters
  and histograms observe decisions, they never make them.
* **Bounded wall-clock overhead** — the instrumented run's best-of
  elapsed stays within 5% of the bare run's.  Wall-clock, so
  ``expect``-demoted in quick mode (tiny n makes the ratio pure noise).
"""

from __future__ import annotations

from benchmarks.conftest import emit, expect, scaled
from repro.perf.scenarios import (
    run_obs_parallel_ingest_overhead,
    run_obs_point_lookup_overhead,
)

SEED = 20260730

#: The overhead bound the committed BENCH_obs baseline gates.
OVERHEAD_BOUND = 0.05


def _emit_overhead(title: str, n: int, metrics: dict) -> None:
    emit(
        f"{title}, n={n}",
        [
            {
                "path": "bare (null registry)",
                "elapsed_seconds": round(metrics["bare_elapsed_seconds"], 5),
            },
            {
                "path": f"instrumented ({metrics['metric_families']} instruments)",
                "elapsed_seconds": round(
                    metrics["instrumented_elapsed_seconds"], 5
                ),
            },
        ],
        note=f"overhead: {metrics['overhead_fraction'] * 100:+.2f}%",
    )


def test_obs_point_lookup_overhead_under_bound(run_once):
    n = scaled(16384)

    def experiment():
        return run_obs_point_lookup_overhead(n, SEED)

    metrics = run_once(experiment)
    # Instrumentation must never change a structural decision — hard at
    # every size.
    assert metrics["obs_matches_bare"] is True
    assert metrics["metric_families"] > 0
    _emit_overhead("E-OBS point-lookup-heavy", n, metrics)
    expect(
        metrics["overhead_fraction"] < OVERHEAD_BOUND,
        f"registry overhead {metrics['overhead_fraction'] * 100:.2f}% "
        f">= {OVERHEAD_BOUND * 100:.0f}% on point lookups",
    )


def test_obs_parallel_ingest_overhead_under_bound(run_once):
    n = scaled(8192)

    def experiment():
        return run_obs_parallel_ingest_overhead(n, SEED)

    metrics = run_once(experiment)
    assert metrics["obs_matches_bare"] is True
    assert metrics["metric_families"] > 0
    _emit_overhead("E-OBS pooled batched ingest", n, metrics)
    expect(
        metrics["overhead_fraction"] < OVERHEAD_BOUND,
        f"registry overhead {metrics['overhead_fraction'] * 100:.2f}% "
        f">= {OVERHEAD_BOUND * 100:.0f}% on pooled ingest",
    )
