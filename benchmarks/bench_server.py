"""E-SERVER — the networked store: concurrent serving and replication.

Three claims about the networked layer, measured over real sockets:

* **Concurrent clients merge exactly** — ≥4 clients with disjoint key
  ranges hammer one served store at once; because disjoint mutations
  commute, the merged final state is seed-deterministic and must equal
  the locally computed model (hard-asserted, size-independent).
* **A replica converges byte-identically** — a replica bootstraps from
  the primary's snapshot, catches up through a backlog, then streams the
  live half of the workload; at the end its state *digest* (keys, items,
  composed labels, per-shard layout) must equal the primary's, with zero
  final lag.  The catch-up and drain timings are reported, not asserted
  — they are wall-clock.
* **Failover loses nothing** — a promoted replica serves the primary's
  exact final state and accepts writes.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the workloads; every hard
assertion here is a size-independent correctness claim, so they all stay
fatal in the CI smoke job.
"""

from __future__ import annotations

from benchmarks.conftest import emit, scaled
from repro.perf.scenarios import run_replica_catchup, run_server_mixed

#: Seed shared with the committed ``BENCH_server.json`` baseline.
SEED = 20260730


def test_concurrent_clients_merge_exactly(run_once):
    """Disjoint-range clients over real sockets produce the exact model."""
    n = scaled(1024)

    metrics = run_once(lambda: run_server_mixed(n, SEED))
    emit(
        "E-SERVER: concurrent clients (disjoint ranges) vs local model",
        [
            {
                "clients": metrics["clients"],
                "operations": metrics["operations"],
                "final keys": metrics["keys"],
                "wal frames": metrics["wal_frames"],
                "merged == model": metrics["reads_match"],
                "ops/s": round(metrics["ops_per_second"]),
                "event p999 (s)": round(
                    metrics.get("latency_event_p999", 0.0), 6
                ),
            }
        ],
    )
    assert metrics["clients"] >= 4
    assert metrics["reads_match"] is True


def test_replica_converges_byte_identically(run_once):
    """Bootstrap + backlog catch-up + live streaming ends digest-equal."""
    n = scaled(1024)

    metrics = run_once(lambda: run_replica_catchup(n, SEED))
    emit(
        "E-SERVER: replica bootstrap, catch-up and live streaming",
        [
            {
                "workload frames": metrics["wal_frames"],
                "frames applied": metrics["frames_applied"],
                "bootstraps": metrics["bootstraps"],
                "final lag": metrics["replica_lag_final"],
                "digest equal": metrics["replicas_match"],
                "catch-up (s)": round(metrics["latency_catchup_seconds"], 4),
                "live drain (s)": round(
                    metrics["latency_live_drain_seconds"], 4
                ),
            }
        ],
    )
    assert metrics["replicas_match"] is True
    assert metrics["replica_lag_final"] == 0
    assert metrics["frames_applied"] == metrics["wal_frames"]
    # A fresh replica bootstraps exactly once, then streams.
    assert metrics["bootstraps"] == 1


def test_failover_promotion_serves_exact_state(run_once, tmp_path):
    """A promoted replica holds the primary's final state and takes writes."""
    from repro.store.client import StoreClient
    from repro.store.harness import apply_to_store, make_ops, state_digest
    from repro.store.replica import Replica
    from repro.store.server import ServerThread
    from repro.store.service import StoreService
    from repro.store.store import DurableStore

    frames = scaled(512)

    def experiment():
        store = DurableStore(
            tmp_path / "primary",
            algorithm="classical",
            shard_capacity=64,
            sync_policy="never",
        )
        service = StoreService(store, stripes=8)
        with ServerThread(service) as server:
            for op in make_ops(frames, seed=SEED):
                apply_to_store(service, op)
            replica = Replica(
                tmp_path / "replica",
                server.address,
                serve=True,
                sync_policy="never",
            )
            replica.start()
            replica.wait_ready(timeout=60.0)
            replica.wait_caught_up(store.last_lsn, timeout=60.0)
            primary_digest = state_digest(store.map)
        promoted = replica.promote()
        promoted_digest = state_digest(promoted.store.map)
        host, port = replica.address
        with StoreClient(host, port) as client:
            client.put(10**9 + 1, "post-failover")
            accepted = client.get(10**9 + 1) == "post-failover"
        size = len(promoted.store)
        replica.stop()
        service.close()
        return {
            "workload frames": frames,
            "digest equal at promotion": primary_digest == promoted_digest,
            "accepts writes": accepted,
            "keys after failover write": size,
        }

    row = run_once(experiment)
    emit("E-SERVER: failover promotion", [row])
    assert row["digest equal at promotion"] is True
    assert row["accepts writes"] is True
