"""E-WC — Theorem 2, Worst-Case Cost: the embedding inherits R's spikes, not F's.

The classical PMA alone shows Θ(n) rebalance spikes.  Embedded into the
deamortized PMA (``classical ⊳ deamortized``) the spikes are buffered in the
R-shell and the worst single operation drops to the R-side bound.
"""

from __future__ import annotations

from benchmarks.conftest import DEFAULT_N, emit, expect, measure
from repro.algorithms import ClassicalPMA, DeamortizedPMA, NaiveLabeler
from repro.core import Embedding
from repro.workloads import RandomWorkload, SequentialWorkload


def _embedding(n, fast):
    return Embedding(
        n,
        fast_factory=fast,
        reliable_factory=lambda cap, slots: DeamortizedPMA(cap, slots),
    )


def test_worst_case_is_bounded_by_reliable_side(run_once):
    n = DEFAULT_N

    def experiment():
        rows = []
        for workload_factory in (
            lambda: RandomWorkload(n, n, seed=21),
            lambda: SequentialWorkload(n),
        ):
            rows.append(measure("F alone: classical", ClassicalPMA(n), workload_factory()))
            rows.append(measure("Z alone: deamortized", DeamortizedPMA(n), workload_factory()))
            rows.append(
                measure(
                    "classical ⊳ deamortized",
                    _embedding(n, lambda cap, slots: ClassicalPMA(cap, slots)),
                    workload_factory(),
                )
            )
            rows.append(
                measure(
                    "naive ⊳ deamortized",
                    _embedding(n, lambda cap, slots: NaiveLabeler(cap, slots)),
                    workload_factory(),
                )
            )
        return rows

    rows = run_once(experiment)
    emit(
        "E-WC (Theorem 2, worst-case): per-operation spikes, n = %d" % n,
        rows,
        note="Expected shape: the embeddings' worst_case column tracks the "
        "deamortized (Z) column, far below the classical PMA's Θ(n) spikes.",
    )
    random_rows = [row for row in rows if row["workload"] == "uniform-random"]
    classical = next(r for r in random_rows if r["structure"].startswith("F alone"))
    embedded = next(r for r in random_rows if r["structure"] == "classical ⊳ deamortized")
    expect(
        embedded["worst_case"] < classical["worst_case"],
        "the embedding's worst case should drop below F's spikes",
    )
