"""E-BASE — baseline cost profiles of every substrate algorithm.

Reproduces the landscape Section 1 of the paper describes: the 1981
classical PMA at amortized ``O(log² n)``, the naive baseline at ``Θ(n)``,
and the adaptive / randomized / deamortized variants in between.
"""

from __future__ import annotations

from benchmarks.conftest import BASE_FACTORIES, DEFAULT_N, emit, expect, measure
from repro.workloads import RandomWorkload


def test_baseline_costs_uniform_random(run_once):
    n = DEFAULT_N

    def experiment():
        rows = []
        for name, factory in BASE_FACTORIES.items():
            workload = RandomWorkload(n, n, seed=11)
            rows.append(measure(name, factory(n), workload))
        return rows

    rows = run_once(experiment)
    emit(
        "E-BASE: uniform-random insertions, n = %d" % n,
        rows,
        note="Expected shape: naive >> classical ~ randomized ~ adaptive; "
        "deamortized has the smallest worst_case column.",
    )
    by_name = {row["structure"]: row for row in rows}
    expect(
        by_name["classical-pma"]["amortized"] < by_name["naive"]["amortized"] / 5,
        "classical PMA should be far cheaper than naive",
    )
    expect(
        by_name["deamortized-pma"]["worst_case"] < by_name["classical-pma"]["worst_case"],
        "deamortized PMA should have the smaller worst case",
    )
