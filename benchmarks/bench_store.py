"""E-STORE — the durable store: recovery cost and crash-injection payoff.

Three claims about the durability layer, in the paper's cost currency plus
the store's own op-framing:

* **Checkpoints amortize recovery** — recovering a store that checkpoints
  replays only the WAL tail past the newest snapshot: *strictly fewer*
  operations than the full workload (the acceptance criterion of the
  durable-store PR), and the gap widens with the checkpoint rate.
* **Recovery is exact for every registered shard algorithm** — a measured
  crash-injection differential: kill the WAL at sampled frame boundaries,
  recover, and compare key order, composed labels and per-shard physical
  layout against an uninterrupted run of the same prefix.  The benchmark
  *measures* the number of identical kill points and hard-asserts full
  equality (size-independent correctness, so it stays fatal in quick
  mode).
* **Batch framing compresses the log** — bulk ingest through atomic
  ``put_many`` frames writes an order of magnitude fewer WAL frames than
  singleton puts for the same keys, and recovery replays the batches
  through the same merged-rebalance path.
"""

from __future__ import annotations

import shutil

from benchmarks.conftest import emit, expect, scaled
from repro.store.factories import EXACT_SNAPSHOT_ALGORITHMS
from repro.store.harness import (
    RecordedRun,
    ReferenceStore,
    fingerprint,
    logical_operations,
    make_ops,
)
from repro.store.store import DurableStore

#: Shard algorithms measured by the differential rows (every registered
#: exact-snapshot algorithm; ``corollary11`` restores via the elements
#: fallback and is covered by its own logical-contract test instead).
EXACT_ALGORITHMS = list(EXACT_SNAPSHOT_ALGORITHMS)


def test_snapshot_tail_recovery_replays_fewer_ops(run_once, tmp_path):
    """Recovery replays the tail past the snapshot, not the whole workload."""
    frames = scaled(1200)
    snapshot_every = max(10, frames // 8)

    def experiment():
        rows = []
        for label, every in (
            ("no checkpoints", None),
            (f"every {snapshot_every} frames", snapshot_every),
        ):
            directory = tmp_path / f"tail-{every}"
            store = DurableStore(
                directory, algorithm="classical", shard_capacity=64,
                sync_policy="never",
            )
            ops = make_ops(frames, seed=41)
            for index, op in enumerate(ops, start=1):
                if op[0] == "put":
                    store.put(op[1], op[2])
                elif op[0] == "del":
                    store.delete(op[1])
                elif op[0] == "put_many":
                    store.put_many(op[1])
                else:
                    store.delete_many(op[1])
                if every and index % every == 0:
                    store.compact()
            expected = fingerprint(store.map)
            store.close()
            recovered = DurableStore(directory, sync_policy="never")
            assert fingerprint(recovered.map) == expected
            rows.append(
                {
                    "checkpointing": label,
                    "workload frames": frames,
                    "logical ops": logical_operations(ops),
                    "snapshot lsn": recovered.recovery.snapshot_lsn,
                    "frames replayed": recovered.recovery.frames_replayed,
                    "replay fraction": round(
                        recovered.recovery.frames_replayed / frames, 4
                    ),
                }
            )
            recovered.close()
        return rows

    rows = run_once(experiment)
    emit("E-STORE: recovery replay vs checkpoint rate", rows)
    baseline_row, checkpointed_row = rows
    # Size-independent correctness claims stay hard in quick mode: with
    # checkpoints, recovery must replay *strictly fewer* ops than the full
    # workload (the acceptance criterion), and strictly fewer than the
    # checkpoint-free recovery.
    assert checkpointed_row["frames replayed"] < checkpointed_row["workload frames"]
    assert checkpointed_row["frames replayed"] < baseline_row["frames replayed"]
    assert baseline_row["frames replayed"] == baseline_row["workload frames"]
    expect(
        checkpointed_row["replay fraction"] <= 0.25,
        "checkpointing every n/8 frames should cut replay to <= 25% of the log",
    )


def test_crash_injection_differential_every_algorithm(run_once, tmp_path):
    """Sampled kill points recover bit-identically for every algorithm."""
    frames = scaled(96)
    snapshot_every = max(8, frames // 4)

    def experiment():
        rows = []
        for name in EXACT_ALGORITHMS:
            ops = make_ops(frames, seed=59)
            recorded = RecordedRun(
                tmp_path, name, ops,
                shard_capacity=16, snapshot_every=snapshot_every,
            )
            stride = max(1, recorded.frames // 12)
            kill_points = sorted(
                set(range(0, recorded.frames + 1, stride)) | {recorded.frames}
            )
            reference = ReferenceStore(name, 16)
            applied = 0
            identical = 0
            tail_replays = []
            for k in kill_points:
                while applied < k:
                    reference.apply(recorded.ops[applied])
                    applied += 1
                recovered = recorded.recover_at(tmp_path, k)
                assert fingerprint(recovered.map) == fingerprint(reference.map), (
                    f"{name}: crash recovery diverged at frame {k}"
                )
                identical += 1
                tail_replays.append(recovered.recovery.frames_replayed)
                recovered.close()
            rows.append(
                {
                    "algorithm": name,
                    "kill points": len(kill_points),
                    "identical recoveries": identical,
                    "max tail replay": max(tail_replays),
                    "workload frames": recorded.frames,
                }
            )
            shutil.rmtree(recorded.directory, ignore_errors=True)
        return rows

    rows = run_once(experiment)
    emit("E-STORE: crash-injection differential (sampled kill points)", rows)
    for row in rows:
        assert row["identical recoveries"] == row["kill points"]
        # Snapshot + tail replay beats replaying the whole prefix.
        assert row["max tail replay"] < row["workload frames"]


def test_batch_framing_compresses_the_wal(run_once, tmp_path):
    """Atomic batch frames: far fewer WAL records for the same keys."""
    n = scaled(2048)

    def experiment():
        rows = []
        for label, batch in (("singleton puts", 1), ("put_many(64)", 64)):
            directory = tmp_path / f"ingest-{batch}"
            store = DurableStore(
                directory, algorithm="classical", shard_capacity=64,
                sync_policy="never",
            )
            keys = list(range(n))
            if batch == 1:
                for key in keys:
                    store.put(key, key)
            else:
                for start in range(0, n, batch):
                    store.put_many(
                        [(key, key) for key in keys[start : start + batch]]
                    )
            frames = store.last_lsn
            moves = store.map.costs.total_cost
            store.close()
            recovered = DurableStore(directory, sync_policy="never")
            assert recovered.keys() == keys
            rows.append(
                {
                    "ingest": label,
                    "keys": n,
                    "wal frames": frames,
                    "total moves": moves,
                    "frames replayed on recovery": (
                        recovered.recovery.frames_replayed
                    ),
                }
            )
            recovered.close()
        return rows

    rows = run_once(experiment)
    emit("E-STORE: batch framing vs singleton logging", rows)
    singleton_row, batched_row = rows
    assert batched_row["wal frames"] * 8 <= singleton_row["wal frames"]
    expect(
        batched_row["total moves"] < singleton_row["total moves"],
        "merged batch rebalances should also move fewer elements",
    )
