"""E-TRIPLE — Theorem 3 / Corollary 11: all three guarantees at once.

The layered structure ``adaptive ⊳ (randomized ⊳ deamortized)`` must
simultaneously (a) match the adaptive PMA on hammer-insert workloads,
(b) stay within the expected-cost bound on uniform random inputs, and
(c) never show the Θ(n) worst-case spikes of the unprotected algorithms.
"""

from __future__ import annotations

from benchmarks.conftest import emit, expect, measure, scaled
from repro.algorithms import AdaptivePMA, ClassicalPMA, NaiveLabeler
from repro.core import make_corollary11_labeler
from repro.core.layered import corollary11_worst_case_bound
from repro.workloads import HammerWorkload, RandomWorkload


def test_corollary11_three_guarantees(run_once):
    n = scaled(1024)

    def experiment():
        rows = []
        for workload_factory in (
            lambda: HammerWorkload(n, seed=5),
            lambda: RandomWorkload(n, n, seed=5),
        ):
            rows.append(measure("adaptive PMA (X alone)", AdaptivePMA(n), workload_factory()))
            rows.append(measure("classical PMA", ClassicalPMA(n), workload_factory()))
            rows.append(measure("naive", NaiveLabeler(n), workload_factory()))
            rows.append(
                measure(
                    "X ⊳ (Y ⊳ Z)  [Corollary 11]",
                    make_corollary11_labeler(n, seed=5),
                    workload_factory(),
                )
            )
        return rows

    rows = run_once(experiment)
    emit(
        "E-TRIPLE (Corollary 11): adaptive ⊳ (randomized ⊳ deamortized), n = %d" % n,
        rows,
        note="Expected shape: on hammer the layered structure tracks the "
        "adaptive PMA; on uniform-random it stays polylog (far below naive); "
        "its worst_case column never approaches n on either workload.",
    )
    hammer = [r for r in rows if r["workload"] == "hammer-insert"]
    random_rows = [r for r in rows if r["workload"] == "uniform-random"]
    layered_hammer = next(r for r in hammer if "Corollary" in r["structure"])
    classical_hammer = next(r for r in hammer if r["structure"] == "classical PMA")
    layered_random = next(r for r in random_rows if "Corollary" in r["structure"])
    naive_random = next(r for r in random_rows if r["structure"] == "naive")
    expect(
        layered_hammer["amortized"] < 1.5 * classical_hammer["amortized"],
        "the layered structure should track the adaptive PMA on hammer",
    )
    expect(
        layered_random["amortized"] < naive_random["amortized"] / 4,
        "the layered structure should stay polylog on uniform random",
    )
    # The worst case is checked against the structure's own Θ(log² n)
    # envelope (the old n/2 recalibration was both loose for large n and
    # wrong at n = 1024, where a legitimate 600-move rebuild spike sits
    # above 512); the envelope itself must stay o(n) at the benchmark size.
    bound = corollary11_worst_case_bound(n)
    expect(bound < n, "the Θ(log² n) envelope must sit below n at the benchmark size")
    expect(
        layered_hammer["worst_case"] < bound,
        "hammer worst case must respect the envelope",
    )
    expect(
        layered_random["worst_case"] < bound,
        "random worst case must respect the envelope",
    )
