"""E-SCALE — amortized-cost growth exponents across the algorithm family."""

from __future__ import annotations

from benchmarks.conftest import emit, expect, sweep_sizes
from repro.algorithms import AdaptivePMA, ClassicalPMA, RandomizedPMA
from repro.analysis import estimate_log_exponent, run_workload
from repro.workloads import RandomWorkload


def test_scaling_exponents_uniform_random(run_once):
    sizes = sweep_sizes([256, 512, 1024, 2048, 4096])
    structures = {
        "classical-pma": lambda n: ClassicalPMA(n),
        "adaptive-pma": lambda n: AdaptivePMA(n),
        "randomized-pma": lambda n: RandomizedPMA(n, seed=3),
    }

    def experiment():
        table = {name: [] for name in structures}
        for n in sizes:
            for name, factory in structures.items():
                run = run_workload(factory(n), RandomWorkload(n, n, seed=13))
                table[name].append(run.amortized_cost)
        return table

    table = run_once(experiment)
    rows = []
    for name, costs in table.items():
        exponent = estimate_log_exponent(sizes, costs)
        row = {"structure": name, "log-exponent": exponent}
        row.update({f"n={n}": cost for n, cost in zip(sizes, costs)})
        rows.append(row)
    emit(
        "E-SCALE: amortized cost vs n (uniform random insertions)",
        rows,
        note="Expected shape: every PMA variant grows polylogarithmically "
        "(fitted exponent well below 4), with the classical PMA consistent "
        "with its O(log² n) bound.",
    )
    for row in rows:
        expect(row["log-exponent"] < 4.0, f"{row['structure']} exponent should stay polylog")
