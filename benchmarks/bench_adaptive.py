"""E-ADAPT — the adaptive PMA's log-factor advantage on hammer workloads."""

from __future__ import annotations

from benchmarks.conftest import emit, expect, sweep_sizes
from repro.algorithms import AdaptivePMA, ClassicalPMA
from repro.analysis import estimate_log_exponent, run_workload
from repro.workloads import HammerWorkload


def test_adaptive_advantage_grows_with_n(run_once):
    sizes = sweep_sizes([256, 512, 1024, 2048, 4096])

    def experiment():
        rows = []
        for n in sizes:
            adaptive = run_workload(AdaptivePMA(n), HammerWorkload(n, seed=7))
            classical = run_workload(ClassicalPMA(n), HammerWorkload(n, seed=7))
            rows.append(
                {
                    "n": n,
                    "adaptive amortized": adaptive.amortized_cost,
                    "classical amortized": classical.amortized_cost,
                    "ratio": classical.amortized_cost / max(adaptive.amortized_cost, 1e-9),
                }
            )
        return rows

    rows = run_once(experiment)
    adaptive_exp = estimate_log_exponent(sizes, [r["adaptive amortized"] for r in rows])
    classical_exp = estimate_log_exponent(sizes, [r["classical amortized"] for r in rows])
    emit(
        "E-ADAPT: hammer-insert amortized cost vs n",
        rows,
        note=f"Fitted log-exponents: adaptive ≈ {adaptive_exp:.2f}, classical ≈ "
        f"{classical_exp:.2f}.  Expected shape: the ratio grows with n and the "
        "classical exponent exceeds the adaptive one (log² n vs ~log n).",
    )
    expect(rows[-1]["ratio"] > 1.5, "adaptive advantage should exceed 1.5x at the largest n")
    expect(classical_exp > adaptive_exp, "classical log-exponent should exceed the adaptive one")
