"""Vector-backend experiment: numpy bitboards vs the slab physical array.

The vector backend's claim is pure wire-speed behind the differential
wall: bit-identical move logs (the PR 3 differential oracle extended to a
third implementation) at a fraction of the slab's wall-clock.  Two
scenarios pin it down:

* the insert-heavy embedding trace (chain moves, shell replays, relabels)
  — the mutation path, where the bitboard XOR updates and the 1–2-word
  popcount fast path for single-element chain moves pay off, and
* batched point lookups (``elements_at_ranks``) against the state that
  trace builds — the read path, where one ``flatnonzero`` + gather
  replaces thousands of interpreted Fenwick selects.

Both hard-assert move-log / answer equality at every size (the speedups
are :func:`expect` shape claims, demoted to notes in quick mode).  The
whole module is skipped when numpy is unavailable — the slab default must
keep the no-dependency install fully benchmarkable.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, expect, scaled

from repro.core.physical_backends import vector_available
from repro.perf.scenarios import run_insert_heavy, run_point_lookup_core

pytestmark = pytest.mark.skipif(
    not vector_available(), reason="numpy unavailable (slab-only install)"
)


def test_vector_insert_heavy_replay(run_once):
    n = scaled(4096)
    metrics = run_once(lambda: run_insert_heavy(n, seed=20260730))
    emit(
        "E-VECTOR: insert-heavy trace replay, vector vs slab vs reference",
        [
            {
                "backend": name,
                "n": n,
                "trace_ops": metrics["trace_ops"],
                "elapsed_s": metrics[f"{prefix}elapsed_seconds"],
                "ops_per_s": metrics[f"{prefix}ops_per_second"],
            }
            for name, prefix in (
                ("reference", "reference_"),
                ("slab", ""),
                ("vector", "vector_"),
            )
        ],
    )
    assert metrics["vector_matches_slab"], (
        "vector and slab move logs diverged on the insert-heavy trace"
    )
    assert metrics["vector_moves"] == metrics["moves"]
    expect(
        metrics["vector_vs_slab_speedup"] >= 2.0,
        f"vector {metrics['vector_vs_slab_speedup']:.2f}x < 2x over slab on "
        f"insert-heavy (n={n})",
    )
    expect(
        metrics["vector_speedup"] >= 4.0,
        f"vector {metrics['vector_speedup']:.2f}x < 4x over the reference on "
        f"insert-heavy (n={n})",
    )


def test_vector_point_lookups(run_once):
    n = scaled(4096)
    metrics = run_once(lambda: run_point_lookup_core(n, seed=20260730))
    emit(
        "E-VECTOR: batched point lookups (elements_at_ranks), "
        f"{metrics['operations']} lookups over {metrics['element_count']} keys",
        [
            {
                "backend": name,
                "n": n,
                "elapsed_s": metrics[f"{prefix}elapsed_seconds"],
                "lookups_per_s": metrics[f"{prefix}ops_per_second"],
            }
            for name, prefix in (
                ("reference", "reference_"),
                ("slab", ""),
                ("vector", "vector_"),
            )
        ],
    )
    assert metrics["reads_match"], "slab and reference lookup answers diverged"
    assert metrics["vector_matches_slab"], (
        "vector and slab lookup answers diverged"
    )
    expect(
        metrics["vector_vs_slab_speedup"] >= 3.0,
        f"vector {metrics['vector_vs_slab_speedup']:.2f}x < 3x over slab on "
        f"batched point lookups (n={n})",
    )


if __name__ == "__main__":  # pragma: no cover - manual run helper
    print(run_insert_heavy(scaled(4096), seed=20260730))
    print(run_point_lookup_core(scaled(4096), seed=20260730))
