"""E-SHARD — the sharding engine: unbounded capacity at bounded local cost.

Two claims, both beyond what any monolithic structure in this library can
do:

* **Scale** — a :class:`~repro.core.sharded.ShardedLabeler` over classical
  PMA shards absorbs ``n ≥ 8×`` a single shard's capacity (here 64×),
  paying only local per-shard rebalances plus the directory's split/merge
  traffic, while a monolithic classical PMA of the same total size pays
  array-wide cascades — and simply cannot be built without knowing ``n``
  up front.
* **Batching** — the per-shard sub-batch execution composes with the PR 1
  batch engine: on bulk loads the batched sharded runs land far below the
  singleton sharded runs in total element moves.
"""

from __future__ import annotations

from benchmarks.conftest import QUICK, emit, expect, scaled
from repro.algorithms import ClassicalPMA
from repro.analysis import run_workload
from repro.core import ShardedLabeler
from repro.workloads import RandomWorkload
from repro.workloads.bulk import BulkLoadWorkload

#: Shrunk with the quick-mode n so the n ≥ 8× shard-capacity claim stays
#: meaningful at smoke sizes too.
SHARD_CAPACITY = 16 if QUICK else 64


def _sharded():
    return ShardedLabeler(
        lambda cap: ClassicalPMA(cap), shard_capacity=SHARD_CAPACITY
    )


def test_sharded_scales_past_any_single_shard(run_once):
    sizes = sorted({scaled(n) for n in (512, 1024, 2048, 4096)})

    def experiment():
        rows = []
        for n in sizes:
            sharded = _sharded()
            run = run_workload(sharded, RandomWorkload(n, n, seed=17))
            monolithic = run_workload(
                ClassicalPMA(n), RandomWorkload(n, n, seed=17)
            )
            summary = run.summary()
            rows.append(
                {
                    "n": n,
                    "n / shard_capacity": round(n / SHARD_CAPACITY, 1),
                    "sharded amortized": run.amortized_cost,
                    "monolithic amortized": monolithic.amortized_cost,
                    "shards": int(summary["shards"]),
                    "splits": int(summary["splits"]),
                    "restructure_moves": int(summary["restructure_moves"]),
                }
            )
        return rows

    rows = run_once(experiment)
    emit(
        "E-SHARD: sharded (classical shards of %d) vs monolithic classical PMA,"
        " uniform random" % SHARD_CAPACITY,
        rows,
        note="Expected shape: the sharded amortized cost stays flat as n "
        "grows (every operation is local to one ~%d-element shard) while "
        "the monolithic cost keeps growing with log² n.  The monolithic "
        "structure also needs n declared up front — the sharded engine "
        "does not." % SHARD_CAPACITY,
    )
    # Unbounded capacity: the largest run must dwarf one shard.
    largest = rows[-1]
    assert largest["n"] >= 8 * SHARD_CAPACITY
    assert largest["shards"] >= largest["n"] // SHARD_CAPACITY
    expect(
        rows[-1]["sharded amortized"] < rows[-1]["monolithic amortized"],
        "local shard rebalances should beat array-wide cascades at scale",
    )
    # Flatness: sharded cost must grow slower than the monolithic cost.
    sharded_growth = rows[-1]["sharded amortized"] / max(rows[0]["sharded amortized"], 1e-9)
    monolithic_growth = rows[-1]["monolithic amortized"] / max(
        rows[0]["monolithic amortized"], 1e-9
    )
    expect(
        sharded_growth < monolithic_growth,
        "sharded amortized cost should flatten relative to the monolithic curve",
    )


def test_batched_bulk_load_beats_singleton_on_sharded(run_once):
    n = scaled(4096)

    def experiment():
        singleton = run_workload(
            _sharded(), BulkLoadWorkload(n, batch_size=64, seed=23)
        )
        rows = [
            {
                "execution": "singleton",
                "total_moves": singleton.total_cost,
                "amortized": singleton.amortized_cost,
                "splits": singleton.tracker.structure_statistics().get("splits", 0),
            }
        ]
        for batch_size in (16, 64, 256):
            batched = run_workload(
                _sharded(),
                BulkLoadWorkload(n, batch_size=64, seed=23),
                batch_size=batch_size,
            )
            assert batched.final_keys == singleton.final_keys
            rows.append(
                {
                    "execution": f"batched({batch_size})",
                    "total_moves": batched.total_cost,
                    "amortized": batched.amortized_cost,
                    "splits": batched.tracker.structure_statistics().get("splits", 0),
                }
            )
        return rows

    rows = run_once(experiment)
    emit(
        "E-SHARD-BATCH: bulk-load onto the sharded engine, n = %d "
        "(%d× one shard's capacity), total element moves" % (n, n // SHARD_CAPACITY),
        rows,
        note="Batches are partitioned through the shard directory and each "
        "sub-batch is absorbed with one merged per-shard rebalance.",
    )
    singleton_total = rows[0]["total_moves"]
    for row in rows[1:]:
        # This is the acceptance claim of the sharding engine and it holds
        # at any size: one merged rebalance per shard always beats one
        # cascade per element.
        assert row["total_moves"] < singleton_total, (
            f"{row['execution']} should move fewer elements than singleton "
            "execution on bulk loads"
        )
