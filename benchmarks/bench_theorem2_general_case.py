"""E-GEN — Theorem 2, General Cost: F ⊳ R is O(E_R) even when F is terrible.

The naive labeler has Θ(n) amortized cost on front-loaded insertions; the
embedding ``naive ⊳ classical`` must stay at the classical PMA's polylog
amortized cost because expensive operations are buffered in the R-shell.
"""

from __future__ import annotations

from benchmarks.conftest import emit, expect, measure, scaled
from repro.algorithms import ClassicalPMA, NaiveLabeler
from repro.core import Embedding
from repro.workloads import RandomWorkload, SequentialWorkload


def test_general_cost_bounded_by_reliable_side(run_once):
    n = scaled(1024)  # the naive baseline is quadratic, keep the run short

    def experiment():
        rows = []
        for workload_factory in (
            lambda: SequentialWorkload(n, ascending=False),
            lambda: RandomWorkload(n, n, seed=33),
        ):
            rows.append(measure("F alone: naive", NaiveLabeler(n), workload_factory()))
            rows.append(measure("R alone: classical", ClassicalPMA(n), workload_factory()))
            rows.append(
                measure(
                    "naive ⊳ classical",
                    Embedding(
                        n,
                        fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
                        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
                        reliable_expected_cost=24,
                    ),
                    workload_factory(),
                )
            )
        return rows

    rows = run_once(experiment)
    emit(
        "E-GEN (Theorem 2, general case): a terrible F cannot drag the embedding down",
        rows,
        note="Expected shape: 'naive ⊳ classical' stays within a constant of "
        "the classical PMA while the naive baseline alone is ~n/2 per op.",
    )
    for workload in {row["workload"] for row in rows}:
        subset = [row for row in rows if row["workload"] == workload]
        naive = next(r for r in subset if r["structure"] == "F alone: naive")
        embedded = next(r for r in subset if r["structure"] == "naive ⊳ classical")
        expect(
            embedded["amortized"] < naive["amortized"] / 2,
            f"naive \u22b3 classical should stay well below naive alone ({workload})",
        )
