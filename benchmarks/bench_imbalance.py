"""E-IMB — Lemmas 6 and 7: rebuild spans stay o(n), the buffer never fills.

Runs the embedding with a deliberately slow fast-algorithm (the naive
labeler) so that almost every operation takes the slow path, and reports how
long rebuilds run and how full the R-shell buffer ever gets.
"""

from __future__ import annotations

from fractions import Fraction

from benchmarks.conftest import emit, expect, scaled
from repro.algorithms import ClassicalPMA, NaiveLabeler
from repro.core import Embedding


def test_rebuild_spans_and_buffer_occupancy(run_once):
    n = scaled(1024)

    def experiment():
        embedding = Embedding(
            n,
            fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
            reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
            reliable_expected_cost=16,
        )
        key = Fraction(0)
        for _ in range(n):
            embedding.insert(1, key)
            key -= 1
        spans = embedding.emulator.rebuild_spans or [0]
        buffer_slots = embedding.physical.buffer_count
        return [
            {
                "metric": "slow-path operations",
                "value": embedding.slow_operations,
                "bound": f"≤ {n} (all operations)",
            },
            {
                "metric": "rebuilds completed",
                "value": embedding.emulator.rebuilds_completed,
                "bound": "—",
            },
            {
                "metric": "max rebuild span (operations)",
                "value": max(spans),
                "bound": f"o(n) — Lemma 6 (n = {n})",
            },
            {
                "metric": "peak buffered elements",
                "value": embedding.max_buffered_elements,
                "bound": f"≪ εn = {buffer_slots} buffer slots — Lemma 7",
            },
            {
                "metric": "dummy buffer slots remaining (min ≥ 1)",
                "value": embedding.physical.dummy_buffer_count,
                "bound": "> 0 — the halting condition never fires",
            },
        ]

    rows = run_once(experiment)
    emit(
        "E-IMB (Lemmas 6–7): rebuild spans and buffer occupancy under sustained slow path",
        rows,
        note="Expected shape: rebuild spans stay well below n and the peak "
        "buffer occupancy stays well below the εn available buffer slots.",
    )
    metrics = {row["metric"]: row["value"] for row in rows}
    expect(
        metrics["max rebuild span (operations)"] < n / 2,
        "Lemma 6: rebuild spans stay o(n)",
    )
    expect(
        metrics["peak buffered elements"]
        < metrics["dummy buffer slots remaining (min ≥ 1)"] + n // 4,
        "Lemma 7: the buffer never comes close to filling",
    )
