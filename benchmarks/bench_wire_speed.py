"""Wire-speed experiment: every physical-array backend vs the seed reference.

Replays identical recorded physical traces (insert-heavy embedding traffic
and sparse chain moves — see :mod:`repro.perf.scenarios`) on the
slab-backed :class:`repro.core.physical.PhysicalArray`, the seed's
:class:`repro.core.physical_reference.ReferencePhysicalArray`, and — when
numpy is importable — the bitboard
:class:`repro.core.physical_vector.VectorPhysicalArray`, then checks the
claims the committed ``BENCH_core.json`` baseline records:

* move logs are bit-identical across every backend (a hard assertion at
  every size), and
* the rewrites win on wall-clock — slab ≥ 1.5× over the reference on the
  insert-heavy scenario at real size, vector ≥ 2× over slab on the same
  trace, and the select-walk by a wide margin on sparse chain moves
  (shape claims, demoted to notes in quick mode where constant factors
  dominate).
"""

from __future__ import annotations

from benchmarks.conftest import emit, expect, scaled

from repro.core.physical_backends import vector_available
from repro.perf.scenarios import run_chain_sparse, run_insert_heavy


def backend_rows(scenario, n, metrics):
    """One table row per backend present in a scenario's metrics."""
    rows = [
        {
            "scenario": scenario,
            "backend": "reference",
            "n": n,
            "elapsed_s": metrics["reference_elapsed_seconds"],
            "speedup_vs_ref": 1.0,
        },
        {
            "scenario": scenario,
            "backend": "slab",
            "n": n,
            "elapsed_s": metrics["elapsed_seconds"],
            "speedup_vs_ref": metrics["speedup"],
        },
    ]
    if "vector_elapsed_seconds" in metrics:
        rows.append(
            {
                "scenario": scenario,
                "backend": "vector",
                "n": n,
                "elapsed_s": metrics["vector_elapsed_seconds"],
                "speedup_vs_ref": metrics["vector_speedup"],
            }
        )
    return rows


def test_wire_speed_insert_heavy(run_once):
    n = scaled(4096)
    metrics = run_once(lambda: run_insert_heavy(n, seed=20260730))
    emit(
        "E-WIRE: physical-array backends, insert-heavy trace "
        f"(trace_ops={metrics['trace_ops']}, moves={metrics['moves']})",
        backend_rows("insert_heavy", n, metrics),
    )
    assert metrics["moves_match"], "slab and reference move logs diverged"
    assert metrics["moves"] == metrics["reference_moves"]
    expect(
        metrics["speedup"] >= 1.5,
        f"slab speedup {metrics['speedup']:.2f}x < 1.5x on insert-heavy "
        f"(n={n})",
    )
    if vector_available():
        assert metrics["vector_matches_slab"], (
            "vector and slab move logs diverged"
        )
        assert metrics["vector_moves"] == metrics["moves"]
        expect(
            metrics["vector_vs_slab_speedup"] >= 2.0,
            f"vector speedup {metrics['vector_vs_slab_speedup']:.2f}x < 2x "
            f"over slab on insert-heavy (n={n})",
        )


def test_wire_speed_chain_sparse(run_once):
    n = scaled(2048)
    metrics = run_once(lambda: run_chain_sparse(n, seed=20260730))
    emit(
        "E-WIRE: chain moves across a sparse array (select-walk vs scan, "
        f"chains={metrics['operations']})",
        backend_rows("chain_sparse", n, metrics),
    )
    assert metrics["moves_match"], "slab and reference move logs diverged"
    if vector_available():
        assert metrics["vector_matches_slab"], (
            "vector and slab move logs diverged"
        )
    expect(
        metrics["speedup"] >= 2.0,
        f"select-walk speedup {metrics['speedup']:.2f}x < 2x on the sparse "
        f"chain scenario (n={n})",
    )


if __name__ == "__main__":  # pragma: no cover - manual run helper
    print(run_insert_heavy(scaled(4096), seed=20260730))
    print(run_chain_sparse(scaled(2048), seed=20260730))
