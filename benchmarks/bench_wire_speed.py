"""Wire-speed experiment: the slab physical array vs the seed reference.

Replays identical recorded physical traces (insert-heavy embedding traffic
and sparse chain moves — see :mod:`repro.perf.scenarios`) on the
slab-backed :class:`repro.core.physical.PhysicalArray` and on the seed's
:class:`repro.core.physical_reference.ReferencePhysicalArray`, then checks
the two claims the committed ``BENCH_core.json`` baseline records:

* move logs are bit-identical (a hard assertion at every size), and
* the slab backend wins on wall-clock — ≥ 1.5× on the insert-heavy
  scenario at real size, and by a wide margin on sparse chain moves
  (shape claims, demoted to notes in quick mode where constant factors
  dominate).
"""

from __future__ import annotations

from benchmarks.conftest import emit, expect, scaled

from repro.perf.scenarios import run_chain_sparse, run_insert_heavy


def test_wire_speed_insert_heavy(run_once):
    n = scaled(4096)
    metrics = run_once(lambda: run_insert_heavy(n, seed=20260730))
    emit(
        "E-WIRE: slab vs reference physical array, insert-heavy trace",
        [
            {
                "scenario": "insert_heavy",
                "n": n,
                "trace_ops": metrics["trace_ops"],
                "moves": metrics["moves"],
                "slab_s": metrics["elapsed_seconds"],
                "reference_s": metrics["reference_elapsed_seconds"],
                "speedup": metrics["speedup"],
            }
        ],
    )
    assert metrics["moves_match"], "slab and reference move logs diverged"
    assert metrics["moves"] == metrics["reference_moves"]
    expect(
        metrics["speedup"] >= 1.5,
        f"slab speedup {metrics['speedup']:.2f}x < 1.5x on insert-heavy "
        f"(n={n})",
    )


def test_wire_speed_chain_sparse(run_once):
    n = scaled(2048)
    metrics = run_once(lambda: run_chain_sparse(n, seed=20260730))
    emit(
        "E-WIRE: chain moves across a sparse array (select-walk vs scan)",
        [
            {
                "scenario": "chain_sparse",
                "n": n,
                "chains": metrics["operations"],
                "slab_s": metrics["elapsed_seconds"],
                "reference_s": metrics["reference_elapsed_seconds"],
                "speedup": metrics["speedup"],
            }
        ],
    )
    assert metrics["moves_match"], "slab and reference move logs diverged"
    expect(
        metrics["speedup"] >= 2.0,
        f"select-walk speedup {metrics['speedup']:.2f}x < 2x on the sparse "
        f"chain scenario (n={n})",
    )


if __name__ == "__main__":  # pragma: no cover - manual run helper
    print(run_insert_heavy(scaled(4096), seed=20260730))
    print(run_chain_sparse(scaled(2048), seed=20260730))
