"""E-OVER — ablations: embedding overhead and the rebuild-work budget.

Two design questions DESIGN.md calls out:

* how much does wrapping an algorithm in the embedding cost when the fast
  algorithm alone would have been fine? (overhead of ``F ⊳ R`` vs ``F``);
* how does the ``Θ(E_R)`` rebuild-work budget (the ``rebuild_work_factor``)
  affect the balance between buffer occupancy and per-operation cost —
  footnote 3 of the paper explains why the budget must be a fixed Θ(E_R)
  rather than matched to R's realized cost.
"""

from __future__ import annotations

from benchmarks.conftest import emit, expect, measure, scaled
from repro.algorithms import ClassicalPMA, DeamortizedPMA
from repro.analysis import run_workload
from repro.core import Embedding
from repro.workloads import RandomWorkload


def test_embedding_overhead_and_work_budget(run_once):
    n = scaled(1024)

    def experiment():
        rows = [
            measure("classical alone", ClassicalPMA(n), RandomWorkload(n, n, seed=3)),
            measure(
                "classical ⊳ deamortized (work_factor=1)",
                Embedding(
                    n,
                    fast_factory=lambda cap, slots: ClassicalPMA(cap, slots),
                    reliable_factory=lambda cap, slots: DeamortizedPMA(cap, slots),
                ),
                RandomWorkload(n, n, seed=3),
            ),
        ]
        budget_rows = []
        for factor in (0.5, 1.0, 2.0, 4.0):
            embedding = Embedding(
                n,
                fast_factory=lambda cap, slots: ClassicalPMA(cap, slots),
                reliable_factory=lambda cap, slots: DeamortizedPMA(cap, slots),
                rebuild_work_factor=factor,
            )
            run = run_workload(embedding, RandomWorkload(n, n, seed=3))
            budget_rows.append(
                {
                    "rebuild_work_factor": factor,
                    "amortized": run.amortized_cost,
                    "worst_case": run.worst_case_cost,
                    "peak buffered": embedding.max_buffered_elements,
                    "rebuilds": embedding.emulator.rebuilds_completed,
                }
            )
        return rows, budget_rows

    rows, budget_rows = run_once(experiment)
    emit("E-OVER (a): embedding overhead vs running F alone, n = %d" % n, rows,
         note="Expected shape: the embedding pays a constant-factor overhead "
         "in amortized cost in exchange for the bounded worst case.")
    emit("E-OVER (b): effect of the Θ(E_R) rebuild-work budget", budget_rows,
         note="Expected shape: larger budgets drain the buffer faster (lower "
         "peak occupancy) at a slightly higher per-operation cost.")
    alone, embedded = rows
    expect(
        embedded["amortized"] < 6 * alone["amortized"] + 5,
        "embedding overhead should stay a constant factor",
    )
    expect(
        budget_rows[-1]["peak buffered"] <= budget_rows[0]["peak buffered"],
        "a larger rebuild budget should not raise peak buffer occupancy",
    )
