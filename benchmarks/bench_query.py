"""E-QUERY — the streaming read path: routing-index lookups + lazy cursors.

Three claims about the query engine this PR adds:

* **Routing beats probing** — ``ShardedLabeler.slot_of`` through the
  element→shard reverse index answers point lookups ≥10× faster than the
  pre-index ``O(K)`` probe loop (kept verbatim as ``_slot_of_probe``) once
  the structure spans ≥64 shards, and the gap grows with the shard count.
* **Cursors stream** — ``iter_from`` consumes a short prefix of a huge
  structure while touching only the shards that prefix crosses (hard
  assert, size-independent), and a prefix read through the cursor beats
  materializing ``elements()`` by a factor that grows with n.
* **Reads are exact and free of side effects** — every cursor read matches
  the reference model and leaves the layout digest untouched (hard
  asserts).
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import QUICK, emit, expect, scaled
from repro.algorithms import ClassicalPMA
from repro.analysis.reference import ChunkedList
from repro.core import ShardedLabeler


#: Shrunk with the quick-mode n so the many-shard claims stay meaningful
#: at smoke sizes too.
SHARD_CAPACITY = 16 if QUICK else 64


def _loaded_sharded(n: int, shard_capacity: int | None = None, factory=ClassicalPMA):
    labeler = ShardedLabeler(
        lambda cap: factory(cap),
        shard_capacity=shard_capacity or SHARD_CAPACITY,
    )
    labeler.bulk_load(list(range(n)))
    return labeler


def _time(func, repeats: int = 3) -> float:
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_routing_index_beats_probe_loop(run_once):
    n = scaled(8192)
    lookups = 2000 if not QUICK else 200

    def experiment():
        labeler = _loaded_sharded(n)
        rng = random.Random(11)
        keys = [rng.randrange(n) for _ in range(lookups)]
        expected = [labeler._slot_of_probe(key) for key in keys]

        def indexed():
            return [labeler.slot_of(key) for key in keys]

        def probed():
            return [labeler._slot_of_probe(key) for key in keys]

        assert indexed() == expected  # identical answers, before timing
        indexed_elapsed = _time(indexed)
        probed_elapsed = _time(probed)
        return {
            "n": n,
            "shards": labeler.shard_count,
            "lookups": lookups,
            "probe_s": round(probed_elapsed, 4),
            "index_s": round(indexed_elapsed, 4),
            "speedup": round(probed_elapsed / indexed_elapsed, 1),
        }

    row = run_once(experiment)
    emit("E-QUERY: routing index vs O(K) probe loop", [row])
    expect(
        row["shards"] >= 64,
        f"the experiment must span >=64 shards (got {row['shards']})",
    )
    expect(
        row["speedup"] >= 10,
        f"routing index must be >=10x the probe loop at {row['shards']} "
        f"shards (got {row['speedup']}x)",
    )


class _TouchCountingPMA(ClassicalPMA):
    """A shard that counts read touches, proving which shards a scan visits."""

    touched: set = set()

    def _iter_from(self, rank):
        type(self).touched.add(id(self))
        return super()._iter_from(rank)

    def select(self, rank):
        type(self).touched.add(id(self))
        return super().select(rank)

    def elements(self):
        type(self).touched.add(id(self))
        return super().elements()

    def slots(self):
        type(self).touched.add(id(self))
        return super().slots()


def test_cursor_prefix_touches_only_crossed_shards(run_once):
    """Streaming a short prefix must not wake the rest of the structure."""
    n = scaled(4096)

    def experiment():
        labeler = _loaded_sharded(n, factory=_TouchCountingPMA)
        assert labeler.shard_count >= 8
        start = 5
        _TouchCountingPMA.touched = set()
        cursor = labeler.cursor(start)
        got = cursor.take(8)
        touched_by_cursor = len(_TouchCountingPMA.touched)
        assert got == list(range(start - 1, start - 1 + 8))
        # An 8-element prefix from inside the first shard crosses at most
        # two shard boundaries; the other dozens of shards stay cold.
        assert touched_by_cursor <= 3, (
            f"cursor prefix touched {touched_by_cursor} shards"
        )
        return {
            "n": n,
            "shards": labeler.shard_count,
            "prefix": 8,
            "shards_touched": touched_by_cursor,
        }

    row = run_once(experiment)
    emit("E-QUERY: cursor prefix shard touches", [row])


def test_cursor_prefix_beats_materialization(run_once):
    n = scaled(65536)
    prefix = 32
    rounds = 50 if not QUICK else 5

    def experiment():
        labeler = _loaded_sharded(n)
        rng = random.Random(7)
        starts = [rng.randint(1, n - prefix) for _ in range(rounds)]

        def cursored():
            out = []
            for start in starts:
                out.append(labeler.cursor(start).take(prefix))
            return out

        def materialized():
            out = []
            for start in starts:
                out.append(list(labeler.elements())[start - 1 : start - 1 + prefix])
            return out

        assert cursored() == materialized()
        cursor_elapsed = _time(cursored, repeats=2)
        full_elapsed = _time(materialized, repeats=2)
        return {
            "n": n,
            "rounds": rounds,
            "prefix": prefix,
            "materialize_s": round(full_elapsed, 4),
            "cursor_s": round(cursor_elapsed, 4),
            "speedup": round(full_elapsed / cursor_elapsed, 1),
        }

    row = run_once(experiment)
    emit("E-QUERY: cursor range vs full materialization", [row])
    expect(
        row["speedup"] >= 10,
        f"prefix cursor reads must dwarf full materialization at n={n} "
        f"(got {row['speedup']}x)",
    )


def test_reads_match_reference_and_leave_layout_untouched(run_once):
    """Fuzzed reads vs ChunkedList, with a layout digest before/after."""
    n = scaled(2048)

    def experiment():
        rng = random.Random(23)
        labeler = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=32)
        reference = ChunkedList(block_size=32)
        for step in range(n):
            if len(reference) and rng.random() < 0.25:
                rank = rng.randint(1, len(reference))
                labeler.delete(rank)
                reference.pop(rank - 1)
            else:
                rank = rng.randint(1, len(reference) + 1)
                labeler.insert(rank, (step, rank))
                reference.insert(rank - 1, (step, rank))
            if step % 64 != 0 or not len(reference):
                continue
            digest = hash(tuple(labeler.labels().items()))
            size = len(reference)
            rank = rng.randint(1, size)
            span = min(size, rank + rng.randint(0, 40))
            assert labeler.select(rank) == reference.select(rank)
            assert (
                labeler.cursor(rank).take(span - rank + 1)
                == reference.range_ranks(rank, span)
            )
            assert labeler.count_rank_range(rank, span) == span - rank + 1
            assert hash(tuple(labeler.labels().items())) == digest, (
                "a read mutated the physical layout"
            )
        return {"operations": n, "shards": labeler.shard_count}

    row = run_once(experiment)
    emit("E-QUERY: read/reference differential", [row])
