"""Setup shim for environments without the `wheel` package (offline installs).

All project metadata lives in pyproject.toml; this file only enables the
legacy `pip install -e . --no-use-pep517` code path.
"""

from setuptools import setup

setup()
