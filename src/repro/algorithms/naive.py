"""Naive baselines: shift-to-fit list labeling.

:class:`NaiveLabeler` keeps all elements packed at the front of the array and
shifts a suffix by one slot on every insertion/deletion; its cost is
``Θ(n - r)`` per operation — the textbook strawman every PMA improves on and
a convenient "arbitrarily bad fast algorithm" to stress the General-Cost
guarantee of Theorem 2 (experiment E-GEN).

:class:`SparseNaiveLabeler` spreads elements evenly but rebuilds the whole
array whenever the local neighbourhood of an insertion is full — a slightly
less pessimal baseline whose worst case is still ``Θ(n)``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.algorithms.base import DenseArrayLabeler
from repro.core.operations import Operation, OperationResult


class NaiveLabeler(DenseArrayLabeler):
    """Left-packed array with suffix shifting.

    Insertion at rank ``r`` moves every element of rank ``>= r`` one slot to
    the right (cost ``size - r + 2`` including the placement); deletion moves
    the suffix back.  Amortized and worst-case costs are both ``Θ(n)`` for
    adversarial (front-loaded) inputs and ``O(1)`` for append-only inputs.
    """

    #: The naive labeler does not need slack, but keep one extra slot so the
    #: structure is a legal list-labeling array of size ``(1 + Θ(1))n``.
    default_slack = 0.05

    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        result = self._begin(Operation.insert(rank))
        index = rank - 1  # elements occupy slots [0, size)
        # Shift the suffix right by one, right-to-left.
        for position in range(self.size - 1, index - 1, -1):
            self._move(position, position + 1)
        self._place(index, element)
        self._finish()
        return result

    def _delete(self, rank: int) -> OperationResult:
        result = self._begin(Operation.delete(rank))
        index = rank - 1
        self._remove(index)
        for position in range(index + 1, self.size):
            self._move(position, position - 1)
        self._finish()
        return result

    # ------------------------------------------------------------------
    # Batched operations: one suffix rewrite for the whole batch
    # ------------------------------------------------------------------
    #: The singleton loop shifts the suffix once *per insertion*, so the
    #: merged rewrite (each displaced element moves exactly once) wins for
    #: any batch of two or more.
    batch_merge_threshold = 2

    def _batch_window(self, rank_lo: int, rank_hi: int, extra: int) -> tuple[int, int]:
        # Left-packed layout: everything from the first affected rank to the
        # end of the array is rewritten; elements below it stay put.
        return rank_lo - 1, self.num_slots

    def _batch_targets(self, lo: int, hi: int, count: int) -> list[int]:
        return list(range(lo, lo + count))

    def _bulk_targets(self, count: int) -> list[int]:
        # The even spread of the base class would violate the left-packed
        # invariant every other operation relies on.
        return list(range(count))

    def _delete_batch(self, prepared: Sequence[int]) -> list[OperationResult]:
        """Remove all batch ranks, then compact the suffix in one pass."""
        if len(prepared) < 2:
            return super()._delete_batch(prepared)
        result = self._begin(Operation.delete(prepared[-1]))
        try:
            size_before = self.size
            for rank in prepared:  # descending: slots are pre-batch ranks - 1
                self._remove(rank - 1)
            write = prepared[-1] - 1  # the leftmost freed slot
            for read in range(write + 1, size_before):
                if self._slots[read] is not None:
                    self._move(read, write)
                    write += 1
        finally:
            self._finish()
        self._size -= len(prepared)
        return [result]


class SparseNaiveLabeler(DenseArrayLabeler):
    """Evenly spread array with full rebuilds when a neighbourhood is packed.

    Insertions go to a free slot adjacent to the predecessor when one exists
    (cost ``O(1)``); otherwise the entire array is rebuilt with even spacing
    (cost ``Θ(n)``).  This mimics the behaviour of naive database page
    layouts that periodically reorganize the whole file.
    """

    default_slack = 0.5

    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        result = self._begin(Operation.insert(rank))
        target = self._insertion_gap(rank)
        if target is None:
            self._rebuild_with(rank, element)
        else:
            self._place(target, element)
        self._finish()
        return result

    def _delete(self, rank: int) -> OperationResult:
        result = self._begin(Operation.delete(rank))
        self._remove(self.slot_of_rank(rank))
        self._finish()
        return result

    # ------------------------------------------------------------------
    def _insertion_gap(self, rank: int) -> int | None:
        """A free slot between the rank's neighbours, if one exists."""
        left = self.slot_of_rank(rank - 1) if rank > 1 else -1
        right = self.slot_of_rank(rank) if rank <= self.size else self.num_slots
        if right - left > 1:
            # Any slot strictly between the neighbours keeps sorted order.
            return left + 1 + (right - left - 1) // 2
        return None

    def _rebuild_with(self, rank: int, element: Hashable) -> None:
        """Rebuild the array evenly with ``element`` inserted at ``rank``."""
        contents = self.elements()
        contents.insert(rank - 1, element)
        while self.size > 0 and self._occupancy.total > 0:
            self._remove(self.slot_of_rank(1))
        targets = self.even_targets(0, self.num_slots, len(contents))
        for item, target in zip(contents, targets):
            self._place(target, item)
