"""Deamortized (worst-case bounded) packed-memory array.

This is the library's stand-in for Willard's ``O(log² n)`` worst-case
algorithm [49] — the reliable algorithm ``Z`` of Corollary 11.  Rather than
reproducing Willard's construction verbatim, the class keeps the PMA
skeleton of :class:`repro.algorithms.classical.ClassicalPMA` and removes the
amortization spikes with *incremental rebalancing*:

* density violations never trigger an immediate full-window rebalance;
  instead they enqueue a **rebalance task** whose target layout (the even
  spreading the classical PMA would have produced) is frozen when the task
  is created;
* every operation executes at most ``work_cap = ceil(work_factor · log²₂ m)``
  element moves drawn from the active tasks, smallest window first, so the
  per-operation cost is capped at ``Θ(log² n)``;
* leaves are triggered *early* (at ``tau_leaf < 1``) so a task normally
  finishes long before its leaf can actually fill up.

Task execution is *best effort*: a planned move is skipped when an element
inserted after the plan was frozen blocks either the target slot or the path
to it, which keeps every executed move order-safe.  In the (rare) event
that a leaf still fills up before its task has made room, the structure
falls back to an immediate classical rebalance; these events are counted in
:attr:`forced_rebalances` and reported by the E-WC / E-TAIL benchmarks, so
the deamortization quality is measured rather than assumed — see the
substitution note in ``DESIGN.md``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Hashable

from repro.algorithms.classical import ClassicalPMA
from repro.core.exceptions import InvariantViolation
from repro.core.operations import Operation, OperationResult


@dataclass
class RebalanceTask:
    """An in-progress incremental rebalance of one window."""

    level: int
    lo: int
    hi: int
    #: Remaining planned moves: ``(element, target_slot)`` in execution order.
    queue: Deque[tuple[Hashable, int]] = field(default_factory=deque)

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def covers(self, slot: int) -> bool:
        return self.lo <= slot < self.hi


class DeamortizedPMA(ClassicalPMA):
    """PMA whose rebalancing work is spread out with a hard per-op move cap."""

    default_slack = 0.75
    #: Leaves are considered "over threshold" early, leaving headroom while
    #: their rebalance task drains.
    tau_leaf = 0.85
    tau_root = 0.6
    #: ``work_cap = ceil(work_factor * log2(m) ** 2)`` moves per operation.
    work_factor = 2.0

    def __init__(self, capacity: int, num_slots: int | None = None, **kwargs) -> None:
        super().__init__(capacity, num_slots, **kwargs)
        log_m = math.log2(max(4, self.num_slots))
        self.work_cap = max(self._segment_size * 2, int(math.ceil(self.work_factor * log_m * log_m)))
        self._tasks: list[RebalanceTask] = []
        #: Number of times the structure had to fall back to an immediate
        #: classical rebalance because a leaf filled before its task drained.
        self.forced_rebalances = 0
        #: Per-operation number of moves spent on background task execution.
        self.background_moves = 0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        result = self._begin(Operation.insert(rank))
        try:
            anchor = self._placement(rank, element)
            self._schedule_tasks(anchor)
            used = len(result.moves)
            self._run_tasks(anchor, budget=max(0, self.work_cap - used))
        finally:
            self._finish()
        return result

    def _delete(self, rank: int) -> OperationResult:
        result = self._begin(Operation.delete(rank))
        try:
            slot = self.slot_of_rank(rank)
            self._remove(slot)
            # Deletions only create slack, never density violations, so they
            # simply contribute their budget to draining pending tasks.
            self._run_tasks(slot, budget=self.work_cap)
        finally:
            self._finish()
        return result

    def _after_batch_merge(self, lo: int, hi: int) -> None:
        super()._after_batch_merge(lo, hi)
        # A merged batch rewrite supersedes any frozen incremental plan that
        # overlaps the window; stale tasks would only burn budget on moves
        # the order-safety checks skip anyway.
        self._cancel_tasks_overlapping(lo, hi)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _placement(self, rank: int, element: Hashable) -> int:
        """Place the new element, falling back to a forced rebalance if needed.

        Returns the anchor slot (the slot of the predecessor, or of the new
        element itself when it becomes the smallest).
        """
        pred_slot = self.slot_of_rank(rank - 1) if rank > 1 else -1
        succ_slot = self.slot_of_rank(rank) if rank <= self.size else self.num_slots
        anchor = max(0, min(pred_slot if pred_slot >= 0 else succ_slot, self.num_slots - 1))

        if succ_slot - pred_slot > 1:
            self._place(pred_slot + 1 + (succ_slot - pred_slot - 1) // 2, element)
            return anchor

        leaf_lo, leaf_hi = ClassicalPMA._window_bounds(self, anchor, 0)
        gap = self._find_gap_in(leaf_lo, leaf_hi, pred_slot, succ_slot)
        if gap is not None:
            target = pred_slot + 1 if gap > pred_slot else pred_slot
            self._shift_gap_to(gap, target)
            self._place(target, element)
            return anchor

        # Leaf completely full before its task could drain: emergency path.
        # Rather than a full (possibly Θ(n)-cost) window rebalance, pull the
        # nearest free slot into the leaf by shifting the gap over; the cost
        # is the gap distance, which stays small as long as the background
        # tasks keep densities under control, and is measured either way.
        self.forced_rebalances += 1
        target = pred_slot + 1 if pred_slot >= 0 else succ_slot
        left_gap = self.free_slot_left(pred_slot) if pred_slot >= 0 else None
        right_gap = (
            self.free_slot_right(succ_slot) if succ_slot < self.num_slots else None
        )
        if left_gap is None and right_gap is None:
            raise InvariantViolation("the array is completely full")
        if right_gap is None or (
            left_gap is not None and (pred_slot - left_gap) <= (right_gap - succ_slot)
        ):
            self._shift_gap_to(left_gap, pred_slot)
            self._place(pred_slot, element)
        else:
            self._shift_gap_to(right_gap, succ_slot)
            self._place(succ_slot, element)
        return anchor

    # ------------------------------------------------------------------
    # Task scheduling
    # ------------------------------------------------------------------
    def _schedule_tasks(self, anchor: int) -> None:
        """Create a rebalance task if any window containing ``anchor`` is too dense.

        Unlike the classical PMA, the check starts at the leaf but considers
        *every* level: a mid-level window drifting over its threshold starts
        its (incremental) rebalance long before the leaf inside it can fill,
        which is what keeps the per-operation cost capped.
        """
        violated_level: int | None = None
        for level in range(0, self._height + 1):
            lo, hi = self._window_bounds(anchor, level)
            if self.occupied_in(lo, hi) > (hi - lo) * self.upper_threshold(level):
                violated_level = level
                break
        if violated_level is None:
            return
        # Target the smallest enclosing window that is within its threshold —
        # the same window the classical PMA would rebalance immediately.
        for level in range(violated_level + 1, self._height + 1):
            lo, hi = self._window_bounds(anchor, level)
            count = self.occupied_in(lo, hi)
            at_root = (lo, hi) == (0, self.num_slots)
            if count <= (hi - lo) * self.upper_threshold(level) or at_root:
                if self._task_covering(lo, hi) is not None:
                    return
                self._cancel_tasks_inside(lo, hi)
                self._tasks.append(self._build_task(level, lo, hi))
                return

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        extra = super()._snapshot_extra()
        # The frozen task queues decide which background moves future
        # operations will spend their budget on — without them a recovered
        # structure would drift from the uninterrupted run on the very next
        # operation.
        extra["deamortized"] = {
            "tasks": [
                {
                    "level": task.level,
                    "lo": task.lo,
                    "hi": task.hi,
                    "queue": [[element, target] for element, target in task.queue],
                }
                for task in self._tasks
            ],
            "forced_rebalances": self.forced_rebalances,
            "background_moves": self.background_moves,
        }
        return extra

    def _restore_extra(self, extra: dict) -> None:
        super()._restore_extra(extra)
        state = extra.get("deamortized")
        if state:
            self._tasks = [
                RebalanceTask(
                    level=task["level"],
                    lo=task["lo"],
                    hi=task["hi"],
                    queue=deque(
                        (element, target) for element, target in task["queue"]
                    ),
                )
                for task in state["tasks"]
            ]
            self.forced_rebalances = state["forced_rebalances"]
            self.background_moves = state["background_moves"]

    def _task_covering(self, lo: int, hi: int) -> RebalanceTask | None:
        for task in self._tasks:
            if task.lo <= lo and hi <= task.hi:
                return task
        return None

    def _cancel_tasks_inside(self, lo: int, hi: int) -> None:
        self._tasks = [t for t in self._tasks if not (lo <= t.lo and t.hi <= hi)]

    def _cancel_tasks_overlapping(self, lo: int, hi: int) -> None:
        self._tasks = [t for t in self._tasks if t.hi <= lo or hi <= t.lo]

    def _build_task(self, level: int, lo: int, hi: int) -> RebalanceTask:
        """Freeze an even-spreading plan for ``[lo, hi)`` as a task queue."""
        contents = [item for item in self._slots[lo:hi] if item is not None]
        targets = self._rebalance_targets(lo, hi, len(contents), None)
        current = {
            item: slot
            for slot, item in enumerate(self._slots[lo:hi], start=lo)
            if item is not None
        }
        left_movers = [
            (item, dst) for item, dst in zip(contents, targets) if dst < current[item]
        ]
        right_movers = [
            (item, dst) for item, dst in zip(contents, targets) if dst > current[item]
        ]
        queue: Deque[tuple[Hashable, int]] = deque(left_movers + list(reversed(right_movers)))
        return RebalanceTask(level=level, lo=lo, hi=hi, queue=queue)

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _run_tasks(self, anchor: int, budget: int) -> None:
        """Spend up to ``budget`` moves draining active tasks.

        Tasks covering the current anchor are drained first (they are the
        ones protecting the leaf that is filling up), then the remaining
        tasks from the smallest window to the largest.
        """
        if not self._tasks or budget <= 0:
            return
        ordered = sorted(
            self._tasks, key=lambda t: (not t.covers(anchor), t.width)
        )
        moves_used = 0
        for task in ordered:
            if moves_used >= budget:
                break
            moves_used += self._drain_task(task, budget - moves_used)
        self.background_moves += moves_used
        self._tasks = [t for t in self._tasks if t.queue]

    def _drain_task(self, task: RebalanceTask, budget: int) -> int:
        """Execute planned moves from ``task``; returns the number of moves spent."""
        spent = 0
        while task.queue and spent < budget:
            element, target = task.queue.popleft()
            if not self.contains(element):
                continue  # The element was deleted after the plan froze.
            src = self.slot_of(element)
            if src == target:
                continue
            if self._slots[target] is not None:
                continue  # A newer element occupies the target: skip.
            lo, hi = (src, target) if src < target else (target, src)
            if self.occupied_in(lo + 1, hi) > 0:
                continue  # The path is blocked: moving would break order.
            self._move(src, target)
            spent += 1
        return spent
