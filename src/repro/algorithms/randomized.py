"""Randomized, history-oblivious packed-memory array.

This class is the library's stand-in for the Bender et al. FOCS'22 algorithm
[8] that breaks the ``log² n`` barrier with randomization and history
independence (see the substitution note in ``DESIGN.md``).  It keeps the PMA
skeleton but randomizes the two decisions an oblivious adversary could
otherwise exploit:

* **window alignment** — each level's windows are shifted by a per-instance
  random offset, so the adversary cannot aim insertions at a window boundary;
* **redistribution layout** — the free slots of a rebalance are scattered
  among the gaps at random (multinomially) instead of perfectly evenly, so
  the post-rebalance state does not reveal the insertion history.

Both sources of randomness are drawn from a private :class:`random.Random`
seeded at construction, which is exactly the oblivious-adversary model of
Section 2: the input sequence may depend on the distribution but not on the
sampled bits.  The embedding's input-independence property (Lemma 4) is
checked against this class in the E-IIF experiment.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.algorithms.classical import ClassicalPMA


class RandomizedPMA(ClassicalPMA):
    """PMA with randomized window offsets and randomized redistribution."""

    def __init__(
        self,
        capacity: int,
        num_slots: int | None = None,
        *,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(capacity, num_slots, **kwargs)
        self._rng = random.Random(seed)
        # A fixed random phase per level; re-drawn after every rebalance of
        # that level so the layout does not become predictable.
        self._level_offsets: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _level_offset(self, level: int) -> int:
        span = self._segment_size * (1 << level)
        if level not in self._level_offsets:
            self._level_offsets[level] = self._rng.randrange(span)
        return self._level_offsets[level]

    def _window_bounds(self, slot: int, level: int) -> tuple[int, int]:
        span = self._segment_size * (1 << level)
        if span >= self.num_slots:
            return 0, self.num_slots
        offset = self._level_offset(level) if level > 0 else 0
        shifted = slot + offset
        lo = (shifted // span) * span - offset
        hi = lo + span
        lo = max(0, lo)
        hi = min(self.num_slots, hi)
        if not lo <= slot < hi:  # clamping at the array ends
            lo, hi = super()._window_bounds(slot, level)
        return lo, hi

    def _rebalance(self, level, lo, hi, insert_rank, insert_element) -> None:
        super()._rebalance(level, lo, hi, insert_rank, insert_element)
        # Re-draw this level's phase so repeated attacks on one boundary fail.
        if level in self._level_offsets:
            del self._level_offsets[level]

    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        extra = super()._snapshot_extra()
        version, internal, gauss = self._rng.getstate()
        extra["randomized"] = {
            "rng_state": [version, list(internal), gauss],
            "level_offsets": sorted(self._level_offsets.items()),
        }
        return extra

    def _restore_extra(self, extra: dict) -> None:
        super()._restore_extra(extra)
        state = extra.get("randomized")
        if state:
            version, internal, gauss = state["rng_state"]
            self._rng.setstate((version, tuple(internal), gauss))
            self._level_offsets = {
                int(level): offset for level, offset in state["level_offsets"]
            }

    # ------------------------------------------------------------------
    def _rebalance_targets(
        self,
        lo: int,
        hi: int,
        count: int,
        insert_slot_hint: int | None,
    ) -> list[int]:
        width = hi - lo
        free = width - count
        if count == 0:
            return []
        if free <= 0:
            return self.even_targets(lo, hi, count)
        # Scatter the free slots uniformly at random among the count + 1 gaps.
        allocation = [0] * (count + 1)
        for _ in range(free):
            allocation[self._rng.randrange(count + 1)] += 1
        targets = []
        cursor = lo
        for index in range(count):
            cursor += allocation[index]
            targets.append(cursor)
            cursor += 1
        return targets
