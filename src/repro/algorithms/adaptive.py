"""Adaptive packed-memory array in the style of Bender and Hu [18].

The classical PMA rebalances every window to perfectly even spacing, which
is wasteful when the workload keeps hammering the same rank: the freshly
created gaps far from the hotspot are never used.  The adaptive PMA instead
*skews* the free slots of every rebalance toward where insertions have been
arriving, so a hammer-insert workload finds Θ(window) free slots right at
the hot gap and only pays ``O(1)`` per insertion until they are exhausted.
This is the mechanism behind the ``O(log n)``-on-hammer-workloads guarantee
that Corollary 11 consumes (algorithm ``X``), and experiment E-ADAPT
measures the resulting ~``log n``-factor advantage over the classical PMA.

The implementation keeps an exponentially-decayed hit counter per leaf
segment (the "predictor" of [18]) and, inside :meth:`_rebalance_targets`,
allocates the window's free slots to inter-element gaps proportionally to a
mixture of (a) the hit counter of the leaf each gap currently lives in and
(b) proximity to the gap of the element being inserted right now.
"""

from __future__ import annotations

from typing import Hashable

from repro.algorithms.classical import ClassicalPMA


class AdaptivePMA(ClassicalPMA):
    """PMA with hotspot-skewed rebalances (adaptive/uneven redistribution)."""

    #: Exponential decay applied to every leaf hit counter on each insertion.
    hit_decay = 0.995
    #: Weight of the proximity kernel relative to the leaf hit counters.
    proximity_weight = 8.0
    #: Baseline (even-spreading) weight of every gap; the adaptive terms are
    #: added on top of it, scaled by how concentrated the workload looks, so
    #: no region is ever starved of free slots.
    floor_weight = 1.0

    def __init__(self, capacity: int, num_slots: int | None = None, **kwargs) -> None:
        super().__init__(capacity, num_slots, **kwargs)
        self._leaf_hits: list[float] = [0.0] * (self._num_segments + 1)

    # ------------------------------------------------------------------
    # Hotspot tracking
    # ------------------------------------------------------------------
    def _note_insertion(self, anchor_slot: int) -> None:
        """Record that an insertion landed near ``anchor_slot``."""
        leaf = min(self.leaf_of(anchor_slot), len(self._leaf_hits) - 1)
        for index in range(len(self._leaf_hits)):
            self._leaf_hits[index] *= self.hit_decay
        self._leaf_hits[leaf] += 1.0

    def _insert_impl(self, rank: int, element: Hashable) -> None:
        anchor = self.slot_of_rank(rank - 1) if rank > 1 else 0
        self._note_insertion(min(anchor, self.num_slots - 1))
        super()._insert_impl(rank, element)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        extra = super()._snapshot_extra()
        # The decayed hit counters steer every future rebalance, so they are
        # part of the behaviour-relevant state a recovery must reproduce.
        extra["adaptive"] = {"leaf_hits": list(self._leaf_hits)}
        return extra

    def _restore_extra(self, extra: dict) -> None:
        super()._restore_extra(extra)
        state = extra.get("adaptive")
        if state:
            self._leaf_hits = [float(hit) for hit in state["leaf_hits"]]

    # ------------------------------------------------------------------
    # Skewed redistribution
    # ------------------------------------------------------------------
    def _rebalance_targets(
        self,
        lo: int,
        hi: int,
        count: int,
        insert_slot_hint: int | None,
    ) -> list[int]:
        width = hi - lo
        free = width - count
        if count == 0:
            return []
        if free <= 0:
            return self.even_targets(lo, hi, count)

        # How concentrated have recent insertions been?  A hammer workload
        # drives ``concentration`` toward 1 and the rebalance skews hard; a
        # uniform workload keeps it near 1/#leaves and the rebalance stays
        # essentially even, so adaptivity never hurts the average case.
        total_hits = sum(self._leaf_hits)
        concentration = (max(self._leaf_hits) / total_hits) if total_hits > 0 else 0.0

        # One weight per gap; gaps sit before element 0, between consecutive
        # elements, and after the last element (count + 1 gaps).
        weights = []
        for gap in range(count + 1):
            # Approximate physical location of the gap if spread evenly; used
            # only to look up the leaf hit counter.
            approx_slot = lo + min(width - 1, (gap * width) // (count + 1))
            leaf = min(self.leaf_of(approx_slot), len(self._leaf_hits) - 1)
            weight = self.floor_weight + concentration * self._leaf_hits[leaf]
            if insert_slot_hint is not None and concentration > 0.0:
                distance = abs(gap - (insert_slot_hint + 1))
                weight += concentration * self.proximity_weight / (1.0 + distance)
            weights.append(weight)

        total_weight = sum(weights)
        # Largest-remainder allocation of the free slots to gaps.
        raw = [w / total_weight * free for w in weights]
        allocation = [int(r) for r in raw]
        leftover = free - sum(allocation)
        remainders = sorted(
            range(count + 1), key=lambda g: raw[g] - allocation[g], reverse=True
        )
        for gap in remainders[:leftover]:
            allocation[gap] += 1

        targets = []
        cursor = lo
        for index in range(count):
            cursor += allocation[index]
            targets.append(cursor)
            cursor += 1
        return targets
