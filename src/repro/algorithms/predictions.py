"""Rank predictors for learning-augmented list labeling (Corollary 12).

Corollary 12 considers an insertion-only sequence ``x₁ … x_n`` together with
a *rank predictor* ``P`` mapping each element to a guess of its final rank,
and measures the predictor by its maximum error
``η = max_i |π(i) − P(x_i)|``.  The predictors in this module produce such
guesses for the integer-keyed elements used throughout the library:

* :class:`ExactPredictor` — error 0 (knows the final sorted order);
* :class:`NoisyPredictor` — exact rank perturbed by a deterministic
  pseudo-random offset bounded by ``eta``;
* :class:`StalePredictor` — predictions computed from an outdated snapshot
  of the key set, the way a stale machine-learning model would behave.

All predictors are deterministic functions of their construction arguments,
so experiments are reproducible and the predictor cannot leak the data
structure's random bits back into the input (cf. Lemma 4).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Protocol, Sequence


class RankPredictor(Protocol):
    """Protocol implemented by every rank predictor."""

    def predict(self, element: Hashable) -> int:
        """Predicted final rank (1-based) of ``element``."""
        ...  # pragma: no cover - protocol definition


def _stable_noise(element: Hashable, salt: int) -> float:
    """Deterministic pseudo-random value in [0, 1) derived from ``element``."""
    digest = hashlib.blake2b(
        repr(element).encode("utf8") + salt.to_bytes(8, "little"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2**64


class ExactPredictor:
    """Knows the final sorted order exactly (η = 0)."""

    def __init__(self, final_keys: Iterable[Hashable]) -> None:
        self._sorted: Sequence[Hashable] = sorted(final_keys)
        self._rank = {key: index + 1 for index, key in enumerate(self._sorted)}

    @property
    def universe_size(self) -> int:
        return len(self._sorted)

    def true_rank(self, element: Hashable) -> int:
        return self._rank[element]

    def predict(self, element: Hashable) -> int:
        return self._rank[element]

    def max_error(self) -> int:
        return 0


class NoisyPredictor(ExactPredictor):
    """Exact rank perturbed by a bounded deterministic offset.

    The offset of each element is fixed (a hash of the element and the salt),
    so the predictor's maximum error is at most ``eta`` by construction and
    repeated calls agree.
    """

    def __init__(
        self, final_keys: Iterable[Hashable], eta: int, *, salt: int = 0
    ) -> None:
        super().__init__(final_keys)
        if eta < 0:
            raise ValueError("eta must be non-negative")
        self._eta = eta
        self._salt = salt

    @property
    def eta(self) -> int:
        return self._eta

    def predict(self, element: Hashable) -> int:
        exact = self.true_rank(element)
        if self._eta == 0:
            return exact
        noise = _stable_noise(element, self._salt)
        offset = int(round((noise * 2.0 - 1.0) * self._eta))
        return max(1, min(self.universe_size, exact + offset))

    def max_error(self) -> int:
        return max(
            abs(self.predict(key) - self.true_rank(key)) for key in self._sorted
        )


class StalePredictor:
    """Predicts ranks from an outdated snapshot of the key set.

    Elements unknown to the snapshot are predicted at the rank their key
    would occupy in the snapshot (a ``bisect``), which is how a trained but
    stale learned index behaves.  The error grows with the number of keys
    that arrived after the snapshot was taken.
    """

    def __init__(self, snapshot_keys: Iterable[Hashable]) -> None:
        self._snapshot = sorted(snapshot_keys)

    def predict(self, element: Hashable) -> int:
        return bisect.bisect_left(self._snapshot, element) + 1

    def max_error_against(self, final_keys: Iterable[Hashable]) -> int:
        """Maximum error with respect to the true final order of ``final_keys``."""
        final_sorted = sorted(final_keys)
        true_rank = {key: index + 1 for index, key in enumerate(final_sorted)}
        worst = 0
        for key in final_sorted:
            worst = max(worst, abs(self.predict(key) - true_rank[key]))
        return worst
