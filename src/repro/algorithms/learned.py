"""Learning-augmented list labeling (McCauley et al. [35] style).

The algorithm ``X`` of Corollary 12: equipped with a rank predictor ``P`` of
maximum error ``η``, it supports an insertion sequence with amortized cost
that depends on the *quality of the predictions* (``O(log² η)`` in [35])
rather than on ``n``.

The implementation keeps the PMA skeleton and uses the prediction where it
matters most: **placement**.  Each inserted element is steered toward the
physical slot its predicted final rank maps to
(``predicted_rank / capacity · m``).  When the prediction is good the slot is
free and order-compatible, the insertion costs ``O(1)``, and — because every
element sits near its final position — later insertions keep finding room
exactly where they land, so rebalances stay confined to windows of size
``O(η · m / n)``.  When predictions are poor the steering attempt fails and
the structure falls back to the classical PMA insertion path, so the cost
degrades gracefully toward ``O(log² n)``; experiment E-PRED measures the
resulting dependence on ``η``.
"""

from __future__ import annotations

from typing import Hashable

from repro.algorithms.classical import ClassicalPMA
from repro.algorithms.predictions import RankPredictor


class LearnedLabeler(ClassicalPMA):
    """PMA that steers insertions toward predicted final positions."""

    default_slack = 0.75

    def __init__(
        self,
        capacity: int,
        num_slots: int | None = None,
        *,
        predictor: RankPredictor,
        **kwargs,
    ) -> None:
        super().__init__(capacity, num_slots, **kwargs)
        self._predictor = predictor
        #: Scale factor from predicted rank space to physical slot space.
        self._stretch = self.num_slots / max(1, self.capacity)
        #: Number of insertions placed directly at their predicted slot.
        self.steered_placements = 0
        #: Number of insertions that fell back to the classical PMA path.
        self.fallback_placements = 0

    # ------------------------------------------------------------------
    def predicted_slot(self, element: Hashable) -> int | None:
        """The physical slot the predictor steers ``element`` toward.

        Returns ``None`` when the predictor has no prediction for the element
        (e.g. a key outside its training universe); the insertion then uses
        the classical placement.
        """
        try:
            predicted_rank = self._predictor.predict(element)
        except (KeyError, ValueError):
            return None
        slot = int((predicted_rank - 0.5) * self._stretch)
        return max(0, min(self.num_slots - 1, slot))

    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        extra = super()._snapshot_extra()
        # The predictor itself is rebuilt by the owning factory on restore
        # (it is training data, not runtime state); only the steering
        # statistics need to survive.
        extra["learned"] = {
            "steered_placements": self.steered_placements,
            "fallback_placements": self.fallback_placements,
        }
        return extra

    def _restore_extra(self, extra: dict) -> None:
        super()._restore_extra(extra)
        state = extra.get("learned")
        if state:
            self.steered_placements = state["steered_placements"]
            self.fallback_placements = state["fallback_placements"]

    # ------------------------------------------------------------------
    def _insert_impl(self, rank: int, element: Hashable) -> None:
        steered = self._steered_insert(rank, element)
        if steered:
            self.steered_placements += 1
            return
        self.fallback_placements += 1
        super()._insert_impl(rank, element)

    def _steered_insert(self, rank: int, element: Hashable) -> bool:
        """Try to place ``element`` at (or next to) its predicted slot.

        The placement is accepted only when the chosen slot is free and lies
        strictly between the physical slots of the element's rank neighbours,
        so sorted order can never be violated by a bad prediction.
        """
        desired = self.predicted_slot(element)
        if desired is None:
            return False
        pred_slot = self.slot_of_rank(rank - 1) if rank > 1 else -1
        succ_slot = (
            self.slot_of_rank(rank) if rank <= self.size else self.num_slots
        )
        if succ_slot - pred_slot <= 1:
            return False  # no room between the neighbours; use the PMA path
        lo, hi = pred_slot + 1, succ_slot - 1
        target = max(lo, min(hi, desired))
        if self._slots[target] is not None:
            # The exact slot is taken: try the nearest free slot between the
            # neighbours on the side of the prediction.
            left = self.free_slot_left(target)
            right = self.free_slot_right(target)
            candidates = [
                slot
                for slot in (left, right)
                if slot is not None and lo <= slot <= hi
            ]
            if not candidates:
                return False
            target = min(candidates, key=lambda slot: abs(slot - desired))
        self._place(target, element)
        return True
