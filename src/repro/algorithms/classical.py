"""The classical packed-memory array (Itai–Konheim–Rodeh [31]).

This is the 1981 density-threshold algorithm that achieves amortized
``O(log² n)`` cost per operation and is the workhorse of every PMA-based
database index.  The array is divided into ``Θ(log n)``-sized leaf segments;
the segments are the leaves of an implicit binary tree of *windows*.  Each
tree level has upper and lower density thresholds, interpolated between leaf
and root.  An insertion that overfills its leaf rebalances (evenly spreads)
the smallest enclosing window whose density is within threshold; deletions
do the symmetric thing against the lower thresholds.

The class is written so the other PMA variants in this package only override
two policy hooks:

* :meth:`_window_bounds` — which physical window a level-``l`` rebalance
  covers (the randomized variant shifts it by a random offset);
* :meth:`_rebalance_targets` — where the window's elements are placed
  (the adaptive variant skews gaps toward insertion hotspots).
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

from repro.algorithms.base import DenseArrayLabeler
from repro.core.exceptions import InvariantViolation
from repro.core.operations import Operation, OperationResult


class ClassicalPMA(DenseArrayLabeler):
    """Density-threshold packed-memory array with amortized O(log² n) cost."""

    default_slack = 0.5

    #: Density thresholds: leaves may fill completely, the root is kept at
    #: ``tau_root``; lower thresholds are only enforced on deletion.
    tau_leaf = 1.0
    tau_root = 0.75
    delta_leaf = 0.05
    delta_root = 0.25

    def __init__(
        self,
        capacity: int,
        num_slots: int | None = None,
        *,
        segment_size: int | None = None,
    ) -> None:
        super().__init__(capacity, num_slots)
        if segment_size is None:
            segment_size = max(2, int(math.ceil(math.log2(max(2, self.num_slots)))))
        self._segment_size = segment_size
        self._num_segments = max(1, math.ceil(self.num_slots / segment_size))
        self._height = max(1, math.ceil(math.log2(self._num_segments)))
        # The root density can never be below the fill ratio at capacity,
        # otherwise the structure could not reach its declared capacity.
        fill_at_capacity = self.capacity / self.num_slots
        self._tau_root = max(self.tau_root, min(0.98, fill_at_capacity + 0.02))
        self._tau_leaf = max(self.tau_leaf, self._tau_root)
        # Statistics useful to the experiments.
        self.rebalance_count = 0
        self.rebalance_moves = 0
        self.rebalances_by_level: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Geometry and thresholds
    # ------------------------------------------------------------------
    @property
    def segment_size(self) -> int:
        return self._segment_size

    @property
    def height(self) -> int:
        """Number of window levels above the leaves."""
        return self._height

    def leaf_of(self, slot: int) -> int:
        """Index of the leaf segment containing ``slot``."""
        return slot // self._segment_size

    def upper_threshold(self, level: int) -> float:
        """Maximum density allowed for a level-``level`` window."""
        fraction = min(1.0, level / self._height)
        return self._tau_leaf - (self._tau_leaf - self._tau_root) * fraction

    def lower_threshold(self, level: int) -> float:
        """Minimum density required of a level-``level`` window."""
        fraction = min(1.0, level / self._height)
        return self.delta_leaf + (self.delta_root - self.delta_leaf) * fraction

    def _window_bounds(self, slot: int, level: int) -> tuple[int, int]:
        """Physical bounds ``[lo, hi)`` of the level-``level`` window at ``slot``.

        Level 0 is a single leaf segment; level ``l`` spans ``2^l`` segments
        aligned to multiples of ``2^l`` segments.  Subclasses may override
        (e.g. to randomize alignment), provided the window contains ``slot``.
        """
        span = self._segment_size * (1 << level)
        lo = (slot // span) * span
        hi = min(self.num_slots, lo + span)
        return lo, hi

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        result = self._begin(Operation.insert(rank))
        try:
            self._insert_impl(rank, element)
        finally:
            self._finish()
        return result

    def _insert_impl(self, rank: int, element: Hashable) -> None:
        pred_slot = self.slot_of_rank(rank - 1) if rank > 1 else -1
        succ_slot = self.slot_of_rank(rank) if rank <= self.size else self.num_slots
        anchor = pred_slot if pred_slot >= 0 else min(succ_slot, self.num_slots - 1)
        anchor = max(0, min(anchor, self.num_slots - 1))

        if succ_slot - pred_slot > 1:
            # A free slot already separates the neighbours: place directly.
            self._place(pred_slot + 1 + (succ_slot - pred_slot - 1) // 2, element)
            self._maybe_rebalance_after_insert(anchor)
            return

        # Neighbours are adjacent: make room within the leaf when possible.
        leaf_lo, leaf_hi = self._window_bounds(anchor, 0)
        gap = self._find_gap_in(leaf_lo, leaf_hi, pred_slot, succ_slot)
        if gap is not None:
            self._shift_gap_to(gap, pred_slot + 1 if gap > pred_slot else pred_slot)
            # After shifting, the free slot sits right next to the predecessor.
            target = pred_slot + 1 if gap > pred_slot else pred_slot
            self._place(target, element)
            self._maybe_rebalance_after_insert(anchor)
            return

        # The leaf is full: rebalance the smallest within-threshold window,
        # inserting the new element as part of the redistribution.
        self._rebalance_for_insert(anchor, rank, element)

    def _find_gap_in(
        self, lo: int, hi: int, pred_slot: int, succ_slot: int
    ) -> int | None:
        """A free slot in ``[lo, hi)`` adjacent (in rank order) to the gap.

        Returns a free slot that can be shifted next to the predecessor
        without crossing other windows, or ``None`` if the leaf is full.
        """
        if self.occupied_in(lo, hi) >= hi - lo:
            return None
        left = self.free_slot_left(max(lo, min(pred_slot, hi - 1))) if pred_slot >= lo else None
        if left is not None and left >= lo:
            return left
        start = max(lo, min(succ_slot, hi - 1))
        right = self.free_slot_right(start)
        if right is not None and right < hi:
            return right
        return None

    def _maybe_rebalance_after_insert(self, anchor: int) -> None:
        """Classical post-insertion density check starting at the leaf."""
        lo, hi = self._window_bounds(anchor, 0)
        density = self.occupied_in(lo, hi) / (hi - lo)
        if density <= self.upper_threshold(0):
            return
        self._rebalance_up(anchor, insert_rank=None, insert_element=None)

    def _rebalance_for_insert(self, anchor: int, rank: int, element: Hashable) -> None:
        self._rebalance_up(anchor, insert_rank=rank, insert_element=element)

    def _rebalance_up(
        self,
        anchor: int,
        insert_rank: int | None,
        insert_element: Hashable | None,
    ) -> None:
        """Find the smallest within-threshold enclosing window and rebalance it."""
        extra = 1 if insert_element is not None else 0
        for level in range(0, self._height + 1):
            lo, hi = self._window_bounds(anchor, level)
            count = self.occupied_in(lo, hi) + extra
            if count <= (hi - lo) * self.upper_threshold(level) or (lo, hi) == (0, self.num_slots):
                if count > hi - lo:
                    raise InvariantViolation(
                        "window cannot hold its elements; capacity accounting is broken"
                    )
                self._rebalance(level, lo, hi, insert_rank, insert_element)
                return
        raise InvariantViolation("no window could absorb the insertion")

    # ------------------------------------------------------------------
    # Batched insertion: merge the batch into one PMA window
    # ------------------------------------------------------------------
    def _batch_window(self, rank_lo: int, rank_hi: int, extra: int) -> tuple[int, int]:
        """Smallest union of within-threshold PMA windows covering the batch.

        Instead of the generic doubling of the base class, the window is the
        span of the level-``l`` windows containing the batch's extreme rank
        neighbours, for the smallest level whose density threshold can
        absorb the merged contents — the natural batched generalization of
        :meth:`_rebalance_up`, so the post-merge state is exactly the state
        a (single) classical rebalance of that window would leave.
        """
        if self.size == 0:
            self._batch_level = self._height
            return 0, self.num_slots
        anchor_lo = self.slot_of_rank(min(rank_lo, self.size))
        anchor_hi = self.slot_of_rank(min(max(rank_hi - 1, 1), self.size))
        for level in range(self._height + 1):
            lo = self._window_bounds(anchor_lo, level)[0]
            hi = self._window_bounds(anchor_hi, level)[1]
            count = self.occupied_in(lo, hi) + extra
            at_root = (lo, hi) == (0, self.num_slots)
            if count <= (hi - lo) * self.upper_threshold(level) or at_root:
                self._batch_level = level
                return lo, hi
        # Unreachable: the level-``height`` window spans the whole array,
        # so the loop always returns at or before its last iteration.
        raise InvariantViolation("no window could absorb the batch")

    def _batch_targets(self, lo: int, hi: int, count: int) -> list[int]:
        """Lay the merged window out with the algorithm's rebalance policy."""
        return self._rebalance_targets(lo, hi, count, None)

    def _after_batch_merge(self, lo: int, hi: int) -> None:
        """Account the merged layout as one rebalance of the chosen level."""
        level = getattr(self, "_batch_level", 0)
        self.rebalance_count += 1
        if self._current_moves is not None:
            self.rebalance_moves += self._current_moves.total_cost
        self.rebalances_by_level[level] = self.rebalances_by_level.get(level, 0) + 1

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _snapshot_extra(self) -> dict:
        extra = super()._snapshot_extra()
        extra["pma"] = {
            "rebalance_count": self.rebalance_count,
            "rebalance_moves": self.rebalance_moves,
            "rebalances_by_level": sorted(self.rebalances_by_level.items()),
        }
        return extra

    def _restore_extra(self, extra: dict) -> None:
        super()._restore_extra(extra)
        pma = extra.get("pma")
        if pma:
            self.rebalance_count = pma["rebalance_count"]
            self.rebalance_moves = pma["rebalance_moves"]
            self.rebalances_by_level = {
                int(level): count for level, count in pma["rebalances_by_level"]
            }

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def _delete(self, rank: int) -> OperationResult:
        result = self._begin(Operation.delete(rank))
        try:
            slot = self.slot_of_rank(rank)
            self._remove(slot)
            self._maybe_rebalance_after_delete(slot)
        finally:
            self._finish()
        return result

    def _maybe_rebalance_after_delete(self, anchor: int) -> None:
        if self.size <= 2 * self._segment_size:
            return  # Nearly empty structures do not need density control.
        lo, hi = self._window_bounds(anchor, 0)
        density = self.occupied_in(lo, hi) / (hi - lo)
        if density >= self.lower_threshold(0):
            return
        for level in range(1, self._height + 1):
            lo, hi = self._window_bounds(anchor, level)
            density = self.occupied_in(lo, hi) / (hi - lo)
            if density >= self.lower_threshold(level) or (lo, hi) == (0, self.num_slots):
                self._rebalance(level, lo, hi, None, None)
                return

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def _rebalance_targets(
        self,
        lo: int,
        hi: int,
        count: int,
        insert_slot_hint: int | None,
    ) -> list[int]:
        """Target slots for a rebalance of ``[lo, hi)`` holding ``count`` elements.

        The classical PMA spreads evenly; subclasses override this hook.
        ``insert_slot_hint`` is the position (index into the contents list)
        of a just-inserted element, which adaptive variants use to skew gaps.
        """
        return self.even_targets(lo, hi, count)

    def _rebalance(
        self,
        level: int,
        lo: int,
        hi: int,
        insert_rank: int | None,
        insert_element: Hashable | None,
    ) -> None:
        """Evenly redistribute ``[lo, hi)``, optionally inserting an element."""
        contents: list[Hashable] = [
            item for item in self._slots[lo:hi] if item is not None
        ]
        insert_pos: int | None = None
        if insert_element is not None:
            assert insert_rank is not None
            # Position of the new element among the window contents: the
            # number of stored elements of rank < insert_rank that live in
            # this window.
            below_window = self.occupied_in(0, lo)
            insert_pos = min(len(contents), max(0, (insert_rank - 1) - below_window))
            contents = contents[:insert_pos] + [insert_element] + contents[insert_pos:]

        targets = self._rebalance_targets(lo, hi, len(contents), insert_pos)
        if len(targets) != len(contents):
            raise InvariantViolation("rebalance targets must match contents")

        moves_before = len(self._current_moves) if self._current_moves is not None else 0
        self._execute_rebalance(lo, hi, contents, targets, insert_pos)
        moves_after = len(self._current_moves) if self._current_moves is not None else 0

        self.rebalance_count += 1
        self.rebalance_moves += moves_after - moves_before
        self.rebalances_by_level[level] = self.rebalances_by_level.get(level, 0) + 1

    def _execute_rebalance(
        self,
        lo: int,
        hi: int,
        contents: list[Hashable],
        targets: list[int],
        insert_pos: int | None,
    ) -> None:
        """Physically rewrite the window.

        A newly inserted element (the one at index ``insert_pos`` of
        ``contents``) is placed into its — by then free — target slot after
        the existing elements have been moved by the shared two-pass
        monotone rewrite.
        """
        fresh = () if insert_pos is None else (insert_pos,)
        self._layout_window(contents, targets, fresh)
