"""Substrate list-labeling algorithms.

Each module implements one of the algorithm families the paper composes:

* :mod:`repro.algorithms.naive` — the ``O(n)`` shift-to-fit baseline;
* :mod:`repro.algorithms.classical` — the Itai–Konheim–Rodeh packed-memory
  array with ``O(log² n)`` amortized cost [31];
* :mod:`repro.algorithms.deamortized` — an incrementally-rebalanced PMA that
  bounds the per-operation cost (stand-in for Willard [49], the worst-case
  algorithm ``Z`` of Corollary 11);
* :mod:`repro.algorithms.randomized` — a randomized-offset, history-oblivious
  PMA (stand-in for Bender et al. [8], the expected-cost algorithm ``Y``);
* :mod:`repro.algorithms.adaptive` — an adaptive PMA in the style of
  Bender–Hu [18], the hammer-insert algorithm ``X`` of Corollary 11;
* :mod:`repro.algorithms.learned` — a learning-augmented labeler in the
  style of McCauley et al. [35], the algorithm ``X`` of Corollary 12;
* :mod:`repro.algorithms.predictions` — rank predictors used by the
  learning-augmented labeler and the predicted workloads.

The sharding engine (:class:`repro.core.sharded.ShardedLabeler`) is
re-exported here with :func:`make_sharded_labeler` because it composes with
every algorithm above: any of these factories can serve as its shard
building block, lifting the fixed-capacity algorithm to unbounded size.
"""

from repro.algorithms.naive import NaiveLabeler, SparseNaiveLabeler
from repro.algorithms.classical import ClassicalPMA
from repro.algorithms.deamortized import DeamortizedPMA
from repro.algorithms.randomized import RandomizedPMA
from repro.algorithms.adaptive import AdaptivePMA
from repro.algorithms.learned import LearnedLabeler
from repro.algorithms.predictions import (
    ExactPredictor,
    NoisyPredictor,
    RankPredictor,
    StalePredictor,
)
from repro.core.sharded import ShardedLabeler, ShardFactory


def make_sharded_labeler(
    shard_factory: ShardFactory | None = None,
    *,
    shard_capacity: int = 64,
    physical_backend: str | None = None,
    **kwargs,
) -> ShardedLabeler:
    """An unbounded labeler over shards of any registered algorithm.

    Defaults to :class:`ClassicalPMA` shards — the production profile: each
    shard pays the classical ``O(log² n)`` amortized cost at ``n`` capped by
    ``shard_capacity``, and the directory keeps every operation local.

    ``physical_backend`` selects the physical-array implementation for
    shard factories that build embeddings (they must accept a
    ``physical_backend`` keyword, e.g. a :func:`make_corollary11_labeler`
    wrapper); passing it with a backend-less shard algorithm is a loud
    error rather than a silently ignored knob.
    """
    if shard_factory is None:
        shard_factory = ClassicalPMA
    if physical_backend is not None:
        import inspect

        try:
            parameters = inspect.signature(shard_factory).parameters
        except (TypeError, ValueError):
            parameters = {}
        accepts = "physical_backend" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        if not accepts:
            raise ValueError(
                f"shard factory {shard_factory!r} does not take a "
                "physical_backend keyword (only embedding-based shards "
                "have a physical-array layer)"
            )
        inner = shard_factory

        def shard_factory(capacity):
            return inner(capacity, physical_backend=physical_backend)

    return ShardedLabeler(shard_factory, shard_capacity=shard_capacity, **kwargs)


__all__ = [
    "AdaptivePMA",
    "ClassicalPMA",
    "DeamortizedPMA",
    "ExactPredictor",
    "LearnedLabeler",
    "NaiveLabeler",
    "NoisyPredictor",
    "RandomizedPMA",
    "RankPredictor",
    "ShardedLabeler",
    "SparseNaiveLabeler",
    "StalePredictor",
    "make_sharded_labeler",
]
