"""Shared machinery for array-based list-labeling algorithms.

:class:`DenseArrayLabeler` owns the physical slot array, an occupancy
Fenwick tree for ``O(log m)`` rank/select queries, and a per-operation move
recorder.  Concrete algorithms (the naive labeler, the PMA family) only
implement placement and rebalancing policy on top of the primitive
:meth:`_move`, :meth:`_place` and :meth:`_remove` operations, which keep the
occupancy index consistent and the move log accurate.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.fenwick import FenwickTree
from repro.core.interface import ListLabeler
from repro.core.operations import Move, Operation, OperationResult


class DenseArrayLabeler(ListLabeler):
    """Base class for labelers storing elements directly in a slot list."""

    def __init__(self, capacity: int, num_slots: int | None = None) -> None:
        super().__init__(capacity, num_slots)
        self._slots: list[Hashable | None] = [None] * self.num_slots
        self._occupancy = FenwickTree(self.num_slots)
        self._position: dict[Hashable, int] = {}
        self._current_moves: list[Move] | None = None

    # ------------------------------------------------------------------
    # Physical state
    # ------------------------------------------------------------------
    def slots(self) -> Sequence[Hashable | None]:
        return tuple(self._slots)

    def raw_slots(self) -> list[Hashable | None]:
        """Mutable view for subclasses; callers must not modify it."""
        return self._slots

    def occupied_in(self, lo: int, hi: int) -> int:
        """Number of occupied slots in ``[lo, hi)``."""
        return self._occupancy.count(lo, hi)

    def slot_of_rank(self, rank: int) -> int:
        """Physical slot of the element with the given 1-based rank."""
        return self._occupancy.select(rank)

    def slot_of(self, element: Hashable) -> int:
        """Physical slot currently holding ``element`` (``O(1)``)."""
        try:
            return self._position[element]
        except KeyError:
            raise KeyError(f"element {element!r} is not stored") from None

    def contains(self, element: Hashable) -> bool:
        """Whether ``element`` is currently stored."""
        return element in self._position

    def rank_at_slot(self, index: int) -> int:
        """1-based rank of the element stored at ``index``."""
        return self._occupancy.rank_of(index)

    def free_slot_left(self, index: int) -> int | None:
        """Nearest free slot at or to the left of ``index`` (or ``None``)."""
        if self._occupancy.count(0, index + 1) == index + 1:
            return None
        # Smallest q such that [q, index] is fully occupied; q - 1 is free.
        lo, hi = 0, index + 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._occupancy.count(mid, index + 1) == index + 1 - mid:
                hi = mid
            else:
                lo = mid + 1
        return lo - 1

    def free_slot_right(self, index: int) -> int | None:
        """Nearest free slot at or to the right of ``index`` (or ``None``)."""
        m = self.num_slots
        if self._occupancy.count(index, m) == m - index:
            return None
        # Largest q such that [index, q) is fully occupied; q is free.
        lo, hi = index, m
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._occupancy.count(index, mid) == mid - index:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # ------------------------------------------------------------------
    # Move-recorded primitives
    # ------------------------------------------------------------------
    def _begin(self, operation: Operation) -> OperationResult:
        result = OperationResult(operation)
        self._current_moves = result.moves
        return result

    def _finish(self) -> None:
        self._current_moves = None

    def _record(self, move: Move) -> None:
        if self._current_moves is not None:
            self._current_moves.append(move)

    def _place(self, index: int, element: Hashable) -> None:
        """Place a brand-new element into a free slot."""
        if self._slots[index] is not None:
            raise RuntimeError(f"slot {index} is occupied; cannot place {element!r}")
        self._slots[index] = element
        self._occupancy.set(index, 1)
        self._position[element] = index
        self._record(Move(element, None, index))

    def _remove(self, index: int) -> Hashable:
        """Remove and return the element stored at ``index``."""
        element = self._slots[index]
        if element is None:
            raise RuntimeError(f"slot {index} is empty; nothing to remove")
        self._slots[index] = None
        self._occupancy.set(index, 0)
        del self._position[element]
        self._record(Move(element, index, None))
        return element

    def _move(self, src: int, dst: int) -> None:
        """Move the element at ``src`` into the free slot ``dst``."""
        if src == dst:
            return
        element = self._slots[src]
        if element is None:
            raise RuntimeError(f"slot {src} is empty; nothing to move")
        if self._slots[dst] is not None:
            raise RuntimeError(f"slot {dst} is occupied; cannot move into it")
        self._slots[src] = None
        self._slots[dst] = element
        self._occupancy.set(src, 0)
        self._occupancy.set(dst, 1)
        self._position[element] = dst
        self._record(Move(element, src, dst))

    # ------------------------------------------------------------------
    # Common manoeuvres
    # ------------------------------------------------------------------
    def _shift_gap_to(self, gap: int, target: int) -> None:
        """Shift the free slot at ``gap`` until it sits at ``target``.

        Elements between the two positions each move by one slot; this is the
        classic make-room-by-shifting primitive and costs ``|gap - target|``
        minus the number of free slots encountered on the way.
        """
        if gap == target:
            return
        step = 1 if target > gap else -1
        position = gap
        while position != target:
            neighbour = position + step
            if self._slots[neighbour] is None:
                position = neighbour
                continue
            self._move(neighbour, position)
            position = neighbour

    def _redistribute(self, lo: int, hi: int, contents: list[Hashable], targets: list[int]) -> None:
        """Rewrite ``[lo, hi)`` so ``contents[i]`` ends up at ``targets[i]``.

        ``contents`` must be the occupied elements of the window in order and
        ``targets`` an increasing list of slots inside the window.  The
        rewrite is executed as two monotone passes (left-movers left-to-right
        then right-movers right-to-left) so the array is valid after every
        individual move.
        """
        if len(contents) != len(targets):
            raise ValueError("contents and targets must have equal length")
        positions = []
        cursor = lo
        for element in contents:
            while self._slots[cursor] != element:
                cursor += 1
            positions.append(cursor)
            cursor += 1
        # Left-moving elements, in left-to-right order.
        for element, src, dst in zip(contents, positions, targets):
            if dst < src:
                self._move(src, dst)
        # Right-moving elements, in right-to-left order.
        for element, src, dst in reversed(list(zip(contents, positions, targets))):
            if dst > src:
                self._move(src, dst)

    def bulk_load(self, elements) -> int:
        """Load sorted ``elements`` into an empty array with even spacing.

        Costs one placement per element (the minimum possible) and leaves the
        structure in the evenly-spread state a freshly rebalanced array would
        have — the natural starting point for the embedding's R-shell.
        """
        elements = list(elements)
        if self.size:
            raise RuntimeError("bulk_load requires an empty structure")
        if len(elements) > self.capacity:
            raise ValueError("bulk_load exceeds the structure's capacity")
        targets = self.even_targets(0, self.num_slots, len(elements))
        for element, target in zip(elements, targets):
            self._slots[target] = element
            self._occupancy.set(target, 1)
            self._position[element] = target
        self._size = len(elements)
        return len(elements)

    @staticmethod
    def even_targets(lo: int, hi: int, count: int) -> list[int]:
        """Evenly spaced target slots for ``count`` elements in ``[lo, hi)``."""
        width = hi - lo
        if count > width:
            raise ValueError("cannot place more elements than slots")
        if count == 0:
            return []
        return [lo + (i * width) // count for i in range(count)]
