"""Shared machinery for array-based list-labeling algorithms.

:class:`DenseArrayLabeler` owns the physical slot array, an occupancy
Fenwick tree for ``O(log m)`` rank/select queries, and a per-operation move
recorder.  Concrete algorithms (the naive labeler, the PMA family) only
implement placement and rebalancing policy on top of the primitive
:meth:`_move`, :meth:`_place` and :meth:`_remove` operations, which keep the
occupancy index consistent and the move log accurate.

Batch execution: the class overrides the :meth:`_insert_batch` hook of the
interface with a *merged rebalance* — the batch is sorted, merged with the
contents of the smallest slot window that can absorb it, and the result is
laid out with a single two-pass monotone rewrite (:meth:`_layout_window`).
One rebalance serves the whole batch instead of one cascade per element,
which is what makes bulk loads cheap; subclasses customize the window choice
(:meth:`_batch_window`) and the slot targets (:meth:`_batch_targets`).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from repro.core.fenwick import FenwickTree
from repro.core.interface import ListLabeler
from repro.core.operations import MoveRecorder, Operation, OperationResult


class DenseArrayLabeler(ListLabeler):
    """Base class for labelers storing elements directly in a slot list."""

    #: Insert batches smaller than this fall back to the singleton loop —
    #: a merged window rewrite only pays off once it amortizes over enough
    #: elements.
    batch_merge_threshold = 8

    #: Maximum post-merge density of the chosen batch window; the window is
    #: grown until the merged contents fit below this fill ratio (or the
    #: whole array is reached), so the next few singleton insertions do not
    #: immediately hit a packed neighbourhood.
    batch_fill_limit = 0.85

    def __init__(self, capacity: int, num_slots: int | None = None) -> None:
        super().__init__(capacity, num_slots)
        self._slots: list[Hashable | None] = [None] * self.num_slots
        self._occupancy = FenwickTree(self.num_slots)
        self._position: dict[Hashable, int] = {}
        self._current_moves: MoveRecorder | None = None

    # ------------------------------------------------------------------
    # Physical state
    # ------------------------------------------------------------------
    def slots(self) -> Sequence[Hashable | None]:
        return tuple(self._slots)

    def raw_slots(self) -> list[Hashable | None]:
        """Mutable view for subclasses; callers must not modify it."""
        return self._slots

    def occupied_in(self, lo: int, hi: int) -> int:
        """Number of occupied slots in ``[lo, hi)``."""
        return self._occupancy.count(lo, hi)

    def slot_of_rank(self, rank: int) -> int:
        """Physical slot of the element with the given 1-based rank."""
        return self._occupancy.select(rank)

    def slot_of(self, element: Hashable) -> int:
        """Physical slot currently holding ``element`` (``O(1)``)."""
        try:
            return self._position[element]
        except KeyError:
            raise KeyError(f"element {element!r} is not stored") from None

    def contains(self, element: Hashable) -> bool:
        """Whether ``element`` is currently stored."""
        return element in self._position

    def rank_at_slot(self, index: int) -> int:
        """1-based rank of the element stored at ``index``."""
        return self._occupancy.rank_of(index)

    def rank_of(self, element: Hashable) -> int:
        """1-based rank of ``element`` (``O(log m)`` via the occupancy index)."""
        return self.rank_at_slot(self.slot_of(element))

    # ------------------------------------------------------------------
    # Read path: occupancy-index selects and streaming slot walks
    # ------------------------------------------------------------------
    def select(self, rank: int) -> Hashable:
        """The ``rank``-th element via one occupancy-index select (O(log m))."""
        self._check_read_rank(rank, "select")
        return self._slots[self._occupancy.select(rank)]

    def _iter_from(self, rank: int) -> "Iterator[Hashable]":
        """Seek the start slot once, then stream the slot slab rightward."""
        if rank > self._size:
            return
        slots = self._slots
        for index in range(self._occupancy.select(rank), self.num_slots):
            item = slots[index]
            if item is not None:
                yield item

    def count_range(self, lo: int, hi: int) -> int:
        """Stored elements in the slot window ``[lo, hi)`` (Fenwick count)."""
        return self._occupancy.count(max(0, lo), min(self.num_slots, hi))

    def free_slot_left(self, index: int) -> int | None:
        """Nearest free slot at or to the left of ``index`` (or ``None``)."""
        if self._occupancy.count(0, index + 1) == index + 1:
            return None
        # Smallest q such that [q, index] is fully occupied; q - 1 is free.
        lo, hi = 0, index + 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._occupancy.count(mid, index + 1) == index + 1 - mid:
                hi = mid
            else:
                lo = mid + 1
        return lo - 1

    def free_slot_right(self, index: int) -> int | None:
        """Nearest free slot at or to the right of ``index`` (or ``None``)."""
        m = self.num_slots
        if self._occupancy.count(index, m) == m - index:
            return None
        # Largest q such that [index, q) is fully occupied; q is free.
        lo, hi = index, m
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._occupancy.count(index, mid) == mid - index:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # ------------------------------------------------------------------
    # Move-recorded primitives
    # ------------------------------------------------------------------
    def _begin(self, operation: Operation) -> OperationResult:
        # Recorder-backed move log: the rebalance loops append raw triples
        # instead of allocating one frozen Move dataclass per element moved.
        result = OperationResult(operation, MoveRecorder())
        self._current_moves = result.moves
        return result

    def _finish(self) -> None:
        self._current_moves = None

    def _record(self, element: Hashable, source: int | None, destination: int | None) -> None:
        if self._current_moves is not None:
            self._current_moves.record(element, source, destination)

    def _place(self, index: int, element: Hashable) -> None:
        """Place a brand-new element into a free slot."""
        if self._slots[index] is not None:
            raise RuntimeError(f"slot {index} is occupied; cannot place {element!r}")
        self._slots[index] = element
        self._occupancy.set(index, 1)
        self._position[element] = index
        self._record(element, None, index)

    def _remove(self, index: int) -> Hashable:
        """Remove and return the element stored at ``index``."""
        element = self._slots[index]
        if element is None:
            raise RuntimeError(f"slot {index} is empty; nothing to remove")
        self._slots[index] = None
        self._occupancy.set(index, 0)
        del self._position[element]
        self._record(element, index, None)
        return element

    def _move(self, src: int, dst: int) -> None:
        """Move the element at ``src`` into the free slot ``dst``."""
        if src == dst:
            return
        element = self._slots[src]
        if element is None:
            raise RuntimeError(f"slot {src} is empty; nothing to move")
        if self._slots[dst] is not None:
            raise RuntimeError(f"slot {dst} is occupied; cannot move into it")
        self._slots[src] = None
        self._slots[dst] = element
        self._occupancy.set(src, 0)
        self._occupancy.set(dst, 1)
        self._position[element] = dst
        self._record(element, src, dst)

    # ------------------------------------------------------------------
    # Common manoeuvres
    # ------------------------------------------------------------------
    def _shift_gap_to(self, gap: int, target: int) -> None:
        """Shift the free slot at ``gap`` until it sits at ``target``.

        Elements between the two positions each move by one slot; this is the
        classic make-room-by-shifting primitive and costs ``|gap - target|``
        minus the number of free slots encountered on the way.
        """
        if gap == target:
            return
        step = 1 if target > gap else -1
        position = gap
        while position != target:
            neighbour = position + step
            if self._slots[neighbour] is None:
                position = neighbour
                continue
            self._move(neighbour, position)
            position = neighbour

    def _redistribute(self, lo: int, hi: int, contents: list[Hashable], targets: list[int]) -> None:
        """Rewrite ``[lo, hi)`` so ``contents[i]`` ends up at ``targets[i]``.

        ``contents`` must be the occupied elements of the window in order and
        ``targets`` an increasing list of slots inside the window.
        """
        self._layout_window(contents, targets, ())

    # ------------------------------------------------------------------
    # Batched insertion: one merged rebalance for the whole batch
    # ------------------------------------------------------------------
    def _insert_batch(
        self, prepared: Sequence[tuple[int, Hashable]]
    ) -> list[OperationResult]:
        if len(prepared) < self.batch_merge_threshold:
            return super()._insert_batch(prepared)
        result = self._begin(Operation.insert(prepared[0][0]))
        try:
            self._merge_batch(prepared)
        finally:
            self._finish()
        self._size += len(prepared)
        return [result]

    def _merge_batch(self, prepared: Sequence[tuple[int, Hashable]]) -> None:
        """Merge a rank-sorted batch into one window with a single rewrite."""
        rank_lo = prepared[0][0]
        rank_hi = prepared[-1][0]
        lo, hi = self._batch_window(rank_lo, rank_hi, len(prepared))
        below = self.occupied_in(0, lo)
        window = [item for item in self._slots[lo:hi] if item is not None]

        # Interleave: a batch item of pre-batch rank r goes immediately
        # before the stored element of rank r; window element j (0-based)
        # holds pre-batch rank below + j + 1, and the window always covers
        # ranks [rank_lo, rank_hi - 1], so every local index is in range.
        contents: list[Hashable] = []
        fresh: list[int] = []
        consumed = 0
        for rank, element in prepared:
            local = rank - below - 1
            while consumed < local:
                contents.append(window[consumed])
                consumed += 1
            fresh.append(len(contents))
            contents.append(element)
        contents.extend(window[consumed:])

        targets = self._batch_targets(lo, hi, len(contents))
        self._layout_window(contents, targets, fresh)
        self._after_batch_merge(lo, hi)

    def _batch_window(self, rank_lo: int, rank_hi: int, extra: int) -> tuple[int, int]:
        """Smallest slot window that can absorb ``extra`` new elements.

        The window always contains the slots of the stored elements with
        ranks in ``[rank_lo, rank_hi - 1]`` (the rank neighbours of every
        batch item) and is grown symmetrically until the merged contents fit
        under :attr:`batch_fill_limit`, falling back to the whole array.
        """
        m = self.num_slots
        if self.size == 0:
            return 0, m
        lo = self.slot_of_rank(min(rank_lo, self.size))
        hi = self.slot_of_rank(min(max(rank_hi - 1, 1), self.size)) + 1
        while (lo, hi) != (0, m):
            width = hi - lo
            if self.occupied_in(lo, hi) + extra <= width * self.batch_fill_limit:
                break
            grow = max(1, width // 2)
            lo = max(0, lo - grow)
            hi = min(m, hi + grow)
        return lo, hi

    def _batch_targets(self, lo: int, hi: int, count: int) -> list[int]:
        """Slot targets for a merged batch layout; subclasses override."""
        return self.even_targets(lo, hi, count)

    def _after_batch_merge(self, lo: int, hi: int) -> None:
        """Hook called after a merged batch rewrite of ``[lo, hi)``."""

    def _layout_window(
        self,
        contents: list[Hashable],
        targets: list[int],
        fresh: Sequence[int],
    ) -> None:
        """Rewrite so ``contents[i]`` ends up at ``targets[i]`` in one pass.

        ``contents`` lists the final window contents in rank order and
        ``targets`` the (increasing) destination slots.  The indices in
        ``fresh`` mark brand-new elements; all other entries must currently
        be stored, in the same relative order.  Existing elements move in
        two monotone passes (left-movers left-to-right, right-movers
        right-to-left) so the array stays sorted after every individual
        move; the new elements are placed into their — by then free —
        targets at the end.
        """
        if len(contents) != len(targets):
            raise ValueError("contents and targets must have equal length")
        fresh_set = set(fresh)
        plan = [
            (self._position[item], target)
            for index, (item, target) in enumerate(zip(contents, targets))
            if index not in fresh_set
        ]
        for src, dst in plan:
            if dst < src:
                self._move(src, dst)
        for src, dst in reversed(plan):
            if dst > src:
                self._move(src, dst)
        for index in fresh:
            self._place(targets[index], contents[index])

    # ------------------------------------------------------------------
    # Serialization (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Exact physical state: slot assignments plus algorithm extras.

        Unlike the ``"elements"`` fallback of the interface, the ``"dense"``
        format records the slot of every element, so a restore reproduces
        the physical array bit-for-bit.  Subclasses contribute whatever
        hidden state influences future behaviour (RNG state, pending
        rebalance tasks, hotspot counters) through :meth:`_snapshot_extra`,
        which is what makes snapshot + WAL-tail replay land in the same
        state as the uninterrupted run.
        """
        return {
            "format": "dense",
            "size": self._size,
            "num_slots": self._num_slots,
            "capacity": self._capacity,
            "layout": [
                [index, element]
                for index, element in enumerate(self._slots)
                if element is not None
            ],
            "extra": self._snapshot_extra(),
        }

    def restore(self, state: dict) -> None:
        if state.get("format") != "dense":
            super().restore(state)
            return
        if self._size:
            raise RuntimeError("restore requires an empty structure")
        if state["num_slots"] != self._num_slots or state["capacity"] != self._capacity:
            raise ValueError(
                f"snapshot geometry (capacity {state['capacity']}, "
                f"{state['num_slots']} slots) does not match this instance "
                f"(capacity {self._capacity}, {self._num_slots} slots)"
            )
        for index, element in state["layout"]:
            if self._slots[index] is not None:
                raise ValueError(f"snapshot assigns slot {index} twice")
            self._slots[index] = element
            self._occupancy.set(index, 1)
            self._position[element] = index
        self._size = len(state["layout"])
        if self._size != state["size"]:
            raise ValueError("snapshot layout does not match its recorded size")
        self._restore_extra(state.get("extra") or {})

    def _snapshot_extra(self) -> dict:
        """Algorithm-specific hidden state; subclasses extend the dict."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Reinstall what :meth:`_snapshot_extra` recorded."""

    def bulk_load(self, elements) -> int:
        """Load sorted ``elements`` into an empty array with even spacing.

        Costs one placement per element (the minimum possible) and leaves the
        structure in the evenly-spread state a freshly rebalanced array would
        have — the natural starting point for the embedding's R-shell.
        """
        elements = list(elements)
        if self.size:
            raise RuntimeError("bulk_load requires an empty structure")
        if len(elements) > self.capacity:
            raise ValueError("bulk_load exceeds the structure's capacity")
        targets = self._bulk_targets(len(elements))
        for element, target in zip(elements, targets):
            self._slots[target] = element
            self._occupancy.set(target, 1)
            self._position[element] = target
        self._size = len(elements)
        return len(elements)

    def _bulk_targets(self, count: int) -> list[int]:
        """Slot targets of a bulk load; must match the subclass's layout
        invariant (left-packed subclasses override with a packed prefix)."""
        return self.even_targets(0, self.num_slots, count)

    @staticmethod
    def even_targets(lo: int, hi: int, count: int) -> list[int]:
        """Evenly spaced target slots for ``count`` elements in ``[lo, hi)``."""
        width = hi - lo
        if count > width:
            raise ValueError("cannot place more elements than slots")
        if count == 0:
            return []
        return [lo + (i * width) // count for i in range(count)]
