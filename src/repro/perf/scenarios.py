"""Deterministic, seeded throughput scenarios for the benchmark baselines.

Each scenario is a pure function ``run(n, seed) -> dict`` returning a flat
metric dict.  Two invariants every scenario keeps:

* **move counts are bit-deterministic** — the same ``(n, seed)`` produces
  the same ``moves`` / ``total_moves`` / split/merge counts in any process
  (this is what the determinism regression test and the CI comparator rely
  on);
* **wall-clock metrics are labelled as such** — ``elapsed_seconds``,
  ``*_elapsed_seconds``, ``speedup`` and ``ops_per_second`` are the only
  fields allowed to differ between runs, and the comparator only warns on
  them.

The core scenarios replay one recorded physical trace on every available
physical backend (seed reference, slab, and — when numpy is importable —
the vector backend), so their ``speedup`` columns are apples-to-apples
measurements of the physical layer on identical work, and
``vector_matches_slab`` asserts bit-identical move logs across backends.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.operations import MoveRecorder, move_triples
from repro.core.physical import BUFFER, F_SLOT, PhysicalArray, ReferencePhysicalArray
from repro.core.physical_backends import vector_available
from repro.perf.trace import (
    PhysicalTrace,
    TracingPhysicalArray,
    record_insert_heavy_trace,
    replay_trace,
)

#: Repeat count for the replay timings (best-of to damp scheduler noise).
_TIMING_REPEATS = 2


@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario plus the sizes it runs at.

    The committed baselines store results at both ``quick_n`` and
    ``full_n``; quick regenerations (CI) only rerun ``quick_n`` and the
    comparator diffs the intersection.
    """

    name: str
    quick_n: int
    full_n: int
    run: Callable[[int, int], dict]


# ---------------------------------------------------------------------------
# Core suite: physical-layer replays (slab vs reference)
# ---------------------------------------------------------------------------
def _timed_replays(trace: PhysicalTrace, num_slots: int) -> dict:
    """Replay ``trace`` on every physical backend; time and cross-check.

    The reference and slab backends always run; the vector backend rides
    along whenever numpy is importable, adding its own ``vector_*``
    wall-clock columns plus the hard-fail ``vector_matches_slab`` move-log
    equality flag (all three backends must produce identical
    ``(element, source, destination)`` logs).
    """
    reference_elapsed = None
    for _ in range(_TIMING_REPEATS):
        array = ReferencePhysicalArray(num_slots)
        sink: list = []
        array.move_sink = sink
        started = time.perf_counter()
        replay_trace(trace, array)
        elapsed = time.perf_counter() - started
        array.move_sink = None
        if reference_elapsed is None or elapsed < reference_elapsed:
            reference_elapsed = elapsed

    slab_elapsed = None
    for _ in range(_TIMING_REPEATS):
        array = PhysicalArray(num_slots)
        recorder = MoveRecorder()
        array.move_sink = recorder
        started = time.perf_counter()
        replay_trace(trace, array)
        elapsed = time.perf_counter() - started
        array.move_sink = None
        if slab_elapsed is None or elapsed < slab_elapsed:
            slab_elapsed = elapsed

    reference_cost = sum(move.cost for move in sink)
    ops = len(trace)
    metrics = {
        "trace_ops": ops,
        "num_slots": num_slots,
        "moves": recorder.total_cost,
        "reference_moves": reference_cost,
        "moves_match": move_triples(sink) == recorder.triples(),
        "elapsed_seconds": slab_elapsed,
        "reference_elapsed_seconds": reference_elapsed,
        "speedup": reference_elapsed / slab_elapsed if slab_elapsed else 0.0,
        "ops_per_second": ops / slab_elapsed if slab_elapsed else 0.0,
        "reference_ops_per_second": (
            ops / reference_elapsed if reference_elapsed else 0.0
        ),
    }

    if vector_available():
        from repro.core.physical_vector import VectorPhysicalArray

        vector_elapsed = None
        for _ in range(_TIMING_REPEATS):
            array = VectorPhysicalArray(num_slots)
            vector_recorder = MoveRecorder()
            array.move_sink = vector_recorder
            started = time.perf_counter()
            replay_trace(trace, array)
            elapsed = time.perf_counter() - started
            array.move_sink = None
            if vector_elapsed is None or elapsed < vector_elapsed:
                vector_elapsed = elapsed
        metrics.update(
            {
                "vector_moves": vector_recorder.total_cost,
                "vector_matches_slab": (
                    vector_recorder.triples() == recorder.triples()
                ),
                "vector_elapsed_seconds": vector_elapsed,
                "vector_ops_per_second": (
                    ops / vector_elapsed if vector_elapsed else 0.0
                ),
                "vector_speedup": (
                    reference_elapsed / vector_elapsed if vector_elapsed else 0.0
                ),
                "vector_vs_slab_speedup": (
                    slab_elapsed / vector_elapsed if vector_elapsed else 0.0
                ),
            }
        )
    return metrics


def run_insert_heavy(n: int, seed: int) -> dict:
    """Singleton insert-heavy embedding traffic at uniformly random ranks.

    The trace of an ``Embedding(adaptive ⊳ classical)`` run — the paper's
    flagship composition — replayed on both physical backends.
    """
    trace, num_slots = record_insert_heavy_trace(n, seed)
    metrics = {"operations": n}
    metrics.update(_timed_replays(trace, num_slots))
    return metrics


def run_mixed_churn(n: int, seed: int) -> dict:
    """Insert/delete churn (30% deletes) through the same embedding."""
    trace, num_slots = record_insert_heavy_trace(n, seed, delete_fraction=0.3)
    metrics = {"operations": n}
    metrics.update(_timed_replays(trace, num_slots))
    return metrics


def _record_chain_sparse_trace(n: int, seed: int) -> tuple[PhysicalTrace, int, int]:
    """A sparse array whose chain moves span almost the whole slot range.

    Two token clusters at the array ends, a vast R-empty middle, and one
    pivot element ping-ponging between far-apart F-labels (plus a few
    buffered elements that ride along as deadweight).  The seed's
    ``chain_positions`` scans the full ``O(m)`` span on every chain move;
    the slab backend walks only the tokens it finds.
    """
    num_slots = 32 * n
    cluster = 32
    trace: PhysicalTrace = []
    array = TracingPhysicalArray(num_slots, trace)
    kinds = []
    for offset in range(cluster):
        kind = F_SLOT if offset % 2 == 0 else BUFFER
        kinds.append((offset, kind))
        kinds.append((num_slots - cluster + offset, kind))
    array.initialize_kinds(kinds)
    array.put_element(0, "pivot")
    for position in (1, 3, 5):  # deadweight riders on left-cluster buffers
        array.put_element(position, f"rider-{position}")
    rng = random.Random(seed)
    f_total = array.f_slot_count
    rounds = max(8, n // 64)
    for step in range(rounds):
        source = array.position_of("pivot")
        if step % 2 == 0:
            target = f_total - 1 - rng.randrange(4)
        else:
            target = rng.randrange(4)
        array.chain_move(source, target)
    return trace, num_slots, rounds


def run_chain_sparse(n: int, seed: int) -> dict:
    """Chain moves across a sparse array (the select-walk showcase)."""
    trace, num_slots, rounds = _record_chain_sparse_trace(n, seed)
    metrics = {"operations": rounds}
    metrics.update(_timed_replays(trace, num_slots))
    return metrics


#: Rank lookups per build operation and ranks per batch for the core
#: point-lookup scenario below.
_LOOKUPS_PER_OP = 8
_LOOKUP_BATCH = 256


def run_point_lookup_core(n: int, seed: int) -> dict:
    """Batched rank lookups on the physical layer, per backend.

    The physical-layer twin of the query suite's ``point_lookup_heavy``
    (whose ClassicalPMA shards never touch a physical array): each backend
    replays the same recorded insert-heavy embedding trace to an identical
    populated state, then answers the same seeded stream of ``8·n``
    rank→element lookups in batches of 256 through ``elements_at_ranks``.
    The reference and slab backends pay one interpreted Fenwick select per
    rank; the vector backend answers a whole batch with one masked
    ``flatnonzero`` and one fancy-indexed gather.  Every backend's answer
    stream — and the move log of the state-building replay — must be
    identical: ``reads_match`` (slab vs reference) and
    ``vector_matches_slab`` (vector vs slab) are hard-fail flags covering
    both.
    """
    trace, num_slots = record_insert_heavy_trace(n, seed)
    backends: list[tuple[str, Callable[[int], object]]] = [
        ("reference", ReferencePhysicalArray),
        ("slab", PhysicalArray),
    ]
    if vector_available():
        from repro.core.physical_vector import VectorPhysicalArray

        backends.append(("vector", VectorPhysicalArray))

    lookups = _LOOKUPS_PER_OP * n
    batches: list[list[int]] | None = None
    element_count = None
    answers: dict[str, list] = {}
    timings: dict[str, float] = {}
    move_logs: dict[str, tuple] = {}
    move_counts: dict[str, int] = {}
    for label, factory in backends:
        array = factory(num_slots)
        recorder = MoveRecorder()
        array.move_sink = recorder
        replay_trace(trace, array)
        array.move_sink = None
        move_logs[label] = tuple(recorder.triples())
        move_counts[label] = len(move_logs[label])
        if batches is None:
            element_count = array.element_count
            rng = random.Random(seed * 7919 + 11)
            batches = [
                [
                    rng.randrange(1, element_count + 1)
                    for _ in range(min(_LOOKUP_BATCH, lookups - start))
                ]
                for start in range(0, lookups, _LOOKUP_BATCH)
            ]
        best = None
        for _ in range(_TIMING_REPEATS):
            started = time.perf_counter()
            result = [array.elements_at_ranks(ranks) for ranks in batches]
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        answers[label] = result
        timings[label] = best

    slab_elapsed = timings["slab"]
    reference_elapsed = timings["reference"]
    metrics = {
        "operations": lookups,
        "trace_ops": len(trace),
        "num_slots": num_slots,
        "element_count": element_count,
        "moves": move_counts["slab"],
        "reference_moves": move_counts["reference"],
        "reads_match": (
            answers["slab"] == answers["reference"]
            and move_logs["slab"] == move_logs["reference"]
        ),
        "elapsed_seconds": slab_elapsed,
        "reference_elapsed_seconds": reference_elapsed,
        "speedup": reference_elapsed / slab_elapsed if slab_elapsed else 0.0,
        "ops_per_second": lookups / slab_elapsed if slab_elapsed else 0.0,
        "reference_ops_per_second": (
            lookups / reference_elapsed if reference_elapsed else 0.0
        ),
    }
    if "vector" in answers:
        vector_elapsed = timings["vector"]
        metrics.update(
            {
                "vector_moves": move_counts["vector"],
                "vector_matches_slab": (
                    answers["vector"] == answers["slab"]
                    and move_logs["vector"] == move_logs["slab"]
                ),
                "vector_elapsed_seconds": vector_elapsed,
                "vector_ops_per_second": (
                    lookups / vector_elapsed if vector_elapsed else 0.0
                ),
                "vector_speedup": (
                    reference_elapsed / vector_elapsed if vector_elapsed else 0.0
                ),
                "vector_vs_slab_speedup": (
                    slab_elapsed / vector_elapsed if vector_elapsed else 0.0
                ),
            }
        )
    return metrics


# ---------------------------------------------------------------------------
# Sharded suite: whole-structure throughput through the runner
# ---------------------------------------------------------------------------
def _sharded_labeler(shard_capacity: int = 128):
    from repro.algorithms import ClassicalPMA
    from repro.core.sharded import ShardedLabeler

    return ShardedLabeler(
        lambda capacity: ClassicalPMA(capacity), shard_capacity=shard_capacity
    )


def _run_result_metrics(result, labeler) -> dict:
    tracker = result.tracker
    operations = tracker.operations
    elapsed = result.elapsed_seconds
    metrics = {
        "operations": operations,
        "total_moves": tracker.total_cost,
        "amortized": round(tracker.amortized, 6),
        "worst_event": tracker.worst_case,
        "shards": labeler.shard_count,
        "splits": labeler.splits,
        "merges": labeler.merges,
        "borrows": labeler.borrows,
        "rewrites": labeler.rewrites,
        "restructure_moves": labeler.restructure_moves,
        "elapsed_seconds": elapsed,
        "ops_per_second": operations / elapsed if elapsed else 0.0,
    }
    return metrics


def run_sharded_mixed(n: int, seed: int) -> dict:
    """Uniform random mixed traffic (30% deletes) on sharded classical PMAs."""
    from repro.analysis.runner import run_workload
    from repro.workloads.random_uniform import RandomWorkload

    labeler = _sharded_labeler()
    workload = RandomWorkload(n, capacity=n, delete_fraction=0.3, seed=seed)
    result = run_workload(labeler, workload)
    return _run_result_metrics(result, labeler)


def run_sharded_bulk_batched(n: int, seed: int) -> dict:
    """Sorted-run bulk ingestion through the batch engine (batch size 64)."""
    from repro.analysis.runner import run_workload
    from repro.workloads.bulk import BulkLoadWorkload

    labeler = _sharded_labeler()
    workload = BulkLoadWorkload(n, batch_size=64, seed=seed)
    result = run_workload(labeler, workload, batch_size=64)
    metrics = _run_result_metrics(result, labeler)
    metrics["batches"] = result.tracker.batches
    return metrics


def run_zipfian_hammer(n: int, seed: int) -> dict:
    """Zipf-skewed insertions hammering a small part of the key space."""
    from repro.analysis.runner import run_workload
    from repro.workloads.zipfian import ZipfianWorkload

    labeler = _sharded_labeler()
    workload = ZipfianWorkload(n, skew=1.2, seed=seed)
    result = run_workload(labeler, workload)
    return _run_result_metrics(result, labeler)


# ---------------------------------------------------------------------------
# Query suite: read-heavy serving mixes through the runner
# ---------------------------------------------------------------------------
def _query_run_metrics(result, labeler) -> dict:
    """Metrics of a read-heavy run: write moves + per-kind query counts.

    Every query the runner executes is verified inline against the
    reference model (a divergence raises, so the scenario would never
    return) — ``reads_match`` records that the whole verified run
    completed.  All counts are seed-deterministic; only the wall-clock
    fields vary between machines.
    """
    tracker = result.tracker
    metrics = {
        "operations": tracker.operations + tracker.queries,
        "writes": tracker.operations,
        "total_moves": tracker.total_cost,
        "queries": tracker.queries,
        "query_items": tracker.query_items,
        "reads_match": True,
        "shards": labeler.shard_count,
        "splits": labeler.splits,
        "merges": labeler.merges,
        "elapsed_seconds": result.elapsed_seconds,
        "ops_per_second": result.ops_per_second,
    }
    for key, value in tracker.query_statistics().items():
        if key != "queries":
            metrics[key] = int(value)
    return metrics


def run_point_lookup_heavy(n: int, seed: int) -> dict:
    """95% point reads (LOOKUP/SELECT only) at uniform ranks, 5% writes."""
    from repro.analysis.runner import run_workload
    from repro.workloads.mixed import MixedReadWriteWorkload

    labeler = _sharded_labeler()
    workload = MixedReadWriteWorkload(
        n,
        read_fraction=0.95,
        key_choice="uniform",
        scan_fraction=0.0,
        count_fraction=0.0,
        seed=seed,
    )
    result = run_workload(labeler, workload)
    return _query_run_metrics(result, labeler)


def run_ycsb_b_mixed(n: int, seed: int) -> dict:
    """The YCSB-B profile: 95/5 read/write over zipfian-skewed targets,
    with a small share of range scans and interval counts."""
    from repro.analysis.runner import run_workload
    from repro.workloads.mixed import MixedReadWriteWorkload

    labeler = _sharded_labeler()
    workload = MixedReadWriteWorkload(
        n,
        read_fraction=0.95,
        key_choice="zipfian",
        skew=1.1,
        scan_fraction=0.05,
        count_fraction=0.02,
        scan_length=16,
        delete_fraction=0.2,
        seed=seed,
    )
    result = run_workload(labeler, workload)
    return _query_run_metrics(result, labeler)


def run_range_scan_heavy(n: int, seed: int) -> dict:
    """Load half the stream, then stream 64-rank cursor scans."""
    from repro.analysis.runner import run_workload
    from repro.workloads.mixed import RangeScanWorkload

    labeler = _sharded_labeler()
    workload = RangeScanWorkload(n, scan_length=64, load_fraction=0.5, seed=seed)
    result = run_workload(labeler, workload)
    return _query_run_metrics(result, labeler)


# ---------------------------------------------------------------------------
# Store suite: durable traffic and recovery replays
# ---------------------------------------------------------------------------
def _drive_store(store, n: int, seed: int) -> None:
    """Seeded mixed traffic: the crash-injection harness's op mix.

    One op script definition serves the whole durability layer (the
    differential tests, the factory sweep and these scenarios) — see
    :func:`repro.store.harness.make_ops`.  A checkpoint is written halfway
    through (without WAL truncation), so the recovery measurements can
    compare snapshot + tail replay against a full from-empty replay of
    the same log.
    """
    from repro.store.harness import apply_to_store, make_ops

    for index, op in enumerate(make_ops(n, seed), start=1):
        apply_to_store(store, op)
        if index == n // 2:
            store.snapshot()


def run_durable_mixed(n: int, seed: int) -> dict:
    """Durable mixed traffic, then both recovery paths timed and counted.

    ``replayed_tail`` (snapshot + WAL tail) versus ``replayed_full``
    (from-empty WAL replay) is the payoff of checkpointing: the tail must
    replay strictly fewer frames — asserted by ``benchmarks/bench_store.py``.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.store.snapshot import SNAPSHOT_DIR_NAME
    from repro.store.store import DurableStore

    root = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        started = time.perf_counter()
        store = DurableStore(
            root / "store",
            algorithm="classical",
            shard_capacity=128,
            sync_policy="never",
        )
        _drive_store(store, n, seed)
        elapsed = time.perf_counter() - started
        keys = len(store)
        total_moves = store.map.costs.total_cost
        wal_frames = store.last_lsn
        shards = store.labeler.shard_count
        expected_items = list(store.items())
        store.close()

        # Tail recovery: newest snapshot + WAL frames past it.
        tail_started = time.perf_counter()
        recovered = DurableStore(root / "store", sync_policy="never")
        tail_elapsed = time.perf_counter() - tail_started
        replayed_tail = recovered.recovery.frames_replayed
        recovered_ok = list(recovered.items()) == expected_items
        recovered.close()

        # Full recovery: same WAL, snapshots removed.
        full_dir = root / "full"
        shutil.copytree(root / "store", full_dir)
        shutil.rmtree(full_dir / SNAPSHOT_DIR_NAME, ignore_errors=True)
        full_started = time.perf_counter()
        full = DurableStore(full_dir, sync_policy="never")
        full_elapsed = time.perf_counter() - full_started
        replayed_full = full.recovery.frames_replayed
        recovered_ok = recovered_ok and list(full.items()) == expected_items
        full.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "operations": n,
        "keys": keys,
        "total_moves": total_moves,
        "wal_frames": wal_frames,
        "shards": shards,
        "replayed_tail": replayed_tail,
        "replayed_full": replayed_full,
        "recovered_match": recovered_ok,
        "elapsed_seconds": elapsed,
        "ops_per_second": n / elapsed if elapsed else 0.0,
        "recovery_elapsed_seconds": tail_elapsed,
        "full_recovery_elapsed_seconds": full_elapsed,
    }


def run_durable_bulk_ingest(n: int, seed: int) -> dict:
    """Sorted bulk ingest through atomic ``put_many`` frames.

    One WAL frame per batch of 64 keys: frames ≪ operations, and
    recovery replays batches through the same merged-rebalance path the
    live ingest used.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.store.store import DurableStore

    root = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        rng = random.Random(seed)
        keys = rng.sample(range(10**7), n)
        started = time.perf_counter()
        store = DurableStore(
            root / "store",
            algorithm="classical",
            shard_capacity=128,
            sync_policy="never",
        )
        for start in range(0, n, 64):
            chunk = sorted(keys[start : start + 64])
            store.put_many([(key, start) for key in chunk])
        elapsed = time.perf_counter() - started
        total_moves = store.map.costs.total_cost
        wal_frames = store.last_lsn
        shards = store.labeler.shard_count
        expected_items = list(store.items())
        store.close()

        recovery_started = time.perf_counter()
        recovered = DurableStore(root / "store", sync_policy="never")
        recovery_elapsed = time.perf_counter() - recovery_started
        replayed = recovered.recovery.frames_replayed
        recovered_ok = list(recovered.items()) == expected_items
        recovered.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "operations": n,
        "keys": n,
        "total_moves": total_moves,
        "wal_frames": wal_frames,
        "shards": shards,
        "replayed_full": replayed,
        "recovered_match": recovered_ok,
        "elapsed_seconds": elapsed,
        "ops_per_second": n / elapsed if elapsed else 0.0,
        "recovery_elapsed_seconds": recovery_elapsed,
    }


# ---------------------------------------------------------------------------
# Latency suite: tail percentiles under adversarial workloads
# ---------------------------------------------------------------------------
def _tail_metrics(tracker) -> dict:
    """Per-operation move-cost percentiles plus the wall-clock latency view.

    The move percentiles are bit-deterministic per seed (the comparator
    warns on drift); every ``latency_*`` key is wall-clock and warn-only.
    """
    metrics = {
        "p50": round(tracker.percentile(0.50), 6),
        "p99": round(tracker.percentile(0.99), 6),
        "p999": round(tracker.percentile(0.999), 6),
    }
    metrics.update(tracker.latency_summary())
    return metrics


def run_cliff_chaser(n: int, seed: int) -> dict:
    """Classical vs deamortized PMA under the rebalance-cliff chaser.

    The acceptance row of the latency suite: per-algorithm amortized moves
    and p999 per-operation move cost under the feedback-driven densest-
    window chaser, plus the ``tail_inversion`` correctness flag — the
    paper's story that the deamortized structure buys its worst-case bound
    (lower p999) at a small amortized premium, so classical wins the
    average while deamortized wins the tail.  All move numbers are
    bit-deterministic per seed; ``latency_*`` keys are wall-clock.
    """
    from repro.algorithms import ClassicalPMA, DeamortizedPMA
    from repro.analysis.runner import run_workload
    from repro.workloads.adversarial import RebalanceCliffWorkload

    metrics: dict = {"operations": 2 * n}
    total_moves = 0
    summaries: dict[str, dict[str, float]] = {}
    for label, factory in (
        ("classical", ClassicalPMA),
        ("deamortized", DeamortizedPMA),
    ):
        result = run_workload(factory(n), RebalanceCliffWorkload(n, seed=seed))
        tracker = result.tracker
        summaries[label] = {
            "amortized": tracker.amortized,
            "p999": tracker.percentile(0.999),
        }
        total_moves += tracker.total_cost
        metrics[f"{label}_amortized"] = round(tracker.amortized, 6)
        metrics[f"{label}_p50"] = round(tracker.percentile(0.50), 6)
        metrics[f"{label}_p99"] = round(tracker.percentile(0.99), 6)
        metrics[f"{label}_p999"] = round(tracker.percentile(0.999), 6)
        metrics[f"{label}_worst_case"] = tracker.worst_case
        metrics[f"{label}_latency_p50"] = tracker.latency_percentile(0.50)
        metrics[f"{label}_latency_p999"] = tracker.latency_percentile(0.999)
    metrics["total_moves"] = total_moves
    classical_wins_amortized = (
        summaries["classical"]["amortized"] < summaries["deamortized"]["amortized"]
    )
    deamortized_wins_p999 = (
        summaries["deamortized"]["p999"] < summaries["classical"]["p999"]
    )
    metrics["tail_inversion"] = bool(
        classical_wins_amortized and deamortized_wins_p999
    )
    return metrics


def _run_adversarial_sharded(workload) -> dict:
    from repro.analysis.runner import run_workload

    labeler = _sharded_labeler()
    result = run_workload(labeler, workload)
    metrics = _run_result_metrics(result, labeler)
    metrics.update(_tail_metrics(result.tracker))
    return metrics


def run_flash_crowd(n: int, seed: int) -> dict:
    """Sorted-ingest bursts into random regions on sharded classical PMAs."""
    from repro.workloads.adversarial import FlashCrowdWorkload

    return _run_adversarial_sharded(FlashCrowdWorkload(n, seed=seed))


def run_compaction_storm(n: int, seed: int) -> dict:
    """Clustered delete storms alternating with refills (shard-merge driver)."""
    from repro.workloads.adversarial import CompactionStormWorkload

    return _run_adversarial_sharded(CompactionStormWorkload(n, seed=seed))


def run_drifting_zipf(n: int, seed: int) -> dict:
    """Time-varying zipf skew: drifting hotspot with a skew ramp."""
    from repro.workloads.adversarial import DriftingZipfWorkload

    return _run_adversarial_sharded(DriftingZipfWorkload(n, seed=seed))


# ---------------------------------------------------------------------------
# Server suite: networked serving and WAL-shipping replication
# ---------------------------------------------------------------------------
#: Concurrent clients driven against the served store (the issue's floor).
_SERVER_CLIENTS = 4


def _client_script(client: int, per_client: int, seed: int) -> list[tuple]:
    """A seeded per-client op script over a disjoint key range.

    Client ``i`` owns keys in ``[i * 10**7, (i + 1) * 10**7)``, so any
    interleaving of the clients' mutations commutes: the merged final
    state — and therefore ``keys`` and ``wal_frames`` — is
    seed-deterministic even though the wire-level schedule is not.
    """
    base = client * 10**7
    rng = random.Random(seed * 1_000_003 + client)
    live: list[int] = []
    script: list[tuple] = []
    for step in range(per_client):
        roll = rng.random()
        if live and roll < 0.15:
            key = live.pop(rng.randrange(len(live)))
            script.append(("del", key))
        elif live and roll < 0.45:
            script.append(("get", live[rng.randrange(len(live))]))
        elif live and roll < 0.55:
            low = base + rng.randrange(10**6)
            script.append(("range", low, low + 10**4))
        else:
            key = base + rng.randrange(10**6)
            if key not in live:
                live.append(key)
            script.append(("put", key, step))
    return script


def _expected_after(scripts: list[list[tuple]]) -> dict:
    """The merged final state the disjoint-range scripts must produce."""
    model: dict = {}
    for script in scripts:
        for op in script:
            if op[0] == "put":
                model[op[1]] = op[2]
            elif op[0] == "del":
                model.pop(op[1], None)
    return model


def run_server_mixed(n: int, seed: int) -> dict:
    """≥4 concurrent clients hammering one served store over real sockets.

    Disjoint per-client key ranges make the merged final state
    seed-deterministic regardless of scheduling, so ``keys``,
    ``wal_frames`` and ``reads_match`` are exact while the throughput
    numbers stay wall-clock (warn-only).
    """
    import shutil
    import tempfile
    import threading
    from pathlib import Path

    from repro.store.client import StoreClient
    from repro.store.server import ServerThread
    from repro.store.service import StoreService
    from repro.store.store import DurableStore

    per_client = max(1, n // _SERVER_CLIENTS)
    scripts = [
        _client_script(index, per_client, seed)
        for index in range(_SERVER_CLIENTS)
    ]
    root = Path(tempfile.mkdtemp(prefix="repro-bench-server-"))
    try:
        store = DurableStore(
            root / "primary",
            algorithm="classical",
            shard_capacity=128,
            sync_policy="never",
        )
        service = StoreService(store, stripes=8, track_latency=True)
        failures: list[BaseException] = []

        def drive(script: list[tuple], host: str, port: int) -> None:
            try:
                with StoreClient(host, port) as client:
                    for op in script:
                        if op[0] == "put":
                            client.put(op[1], op[2])
                        elif op[0] == "del":
                            client.delete(op[1])
                        elif op[0] == "get":
                            client.get(op[1], default=None)
                        else:
                            client.range_scan(op[1], op[2], limit=32)
            except BaseException as error:  # surfaced after join
                failures.append(error)

        with ServerThread(service) as server:
            host, port = server.address
            threads = [
                threading.Thread(target=drive, args=(script, host, port))
                for script in scripts
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
        if failures:
            raise failures[0]

        expected = _expected_after(scripts)
        reads_match = list(store.items()) == sorted(expected.items())
        metrics = {
            "operations": per_client * _SERVER_CLIENTS,
            "clients": _SERVER_CLIENTS,
            "keys": len(expected),
            "wal_frames": store.last_lsn,
            "reads_match": reads_match,
            "elapsed_seconds": elapsed,
            "ops_per_second": (
                per_client * _SERVER_CLIENTS / elapsed if elapsed else 0.0
            ),
        }
        for name, value in service.latency_statistics().items():
            if "latency_" in name:
                metrics[name] = value
        service.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return metrics


def run_replica_catchup(n: int, seed: int) -> dict:
    """Replica bootstrap, backlog catch-up and live streaming lag.

    Half the seeded workload runs before the replica exists (bootstrap +
    backlog catch-up), half streams live.  The deterministic numbers —
    frames shipped, applied LSN, bootstrap count, final lag — are exact;
    every catch-up timing carries a ``latency_`` segment, so the
    comparator treats machine speed as warn-only.  ``replicas_match`` is
    the byte-identical-state claim (same fingerprint digest on both
    sides) and hard-fails the comparator when false.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.store.harness import apply_to_store, make_ops, state_digest
    from repro.store.replica import Replica
    from repro.store.server import ServerThread
    from repro.store.service import StoreService
    from repro.store.store import DurableStore

    ops = make_ops(n, seed)
    backlog = ops[: n // 2]
    live = ops[n // 2 :]
    root = Path(tempfile.mkdtemp(prefix="repro-bench-replica-"))
    try:
        store = DurableStore(
            root / "primary",
            algorithm="classical",
            shard_capacity=128,
            sync_policy="never",
        )
        service = StoreService(store, stripes=8)
        with ServerThread(service) as server:
            started = time.perf_counter()
            for op in backlog:
                apply_to_store(service, op)
            backlog_elapsed = time.perf_counter() - started

            replica = Replica(
                root / "replica", server.address, sync_policy="never"
            )
            catchup_started = time.perf_counter()
            replica.start()
            replica.wait_ready(timeout=60.0)
            replica.wait_caught_up(store.last_lsn, timeout=60.0)
            catchup_elapsed = time.perf_counter() - catchup_started

            live_started = time.perf_counter()
            for op in live:
                apply_to_store(service, op)
            replica.wait_caught_up(store.last_lsn, timeout=60.0)
            live_elapsed = time.perf_counter() - live_started

            final_lag = store.last_lsn - replica.last_applied_lsn
            replicas_match = state_digest(store.map) == state_digest(
                replica.service.store.map
            )
            applied = replica.last_applied_lsn
            bootstraps = replica.bootstrap_count
            replica.stop()
        keys = len(store)
        frames = store.last_lsn
        service.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "operations": n,
        "keys": keys,
        "wal_frames": frames,
        "frames_applied": applied,
        "bootstraps": bootstraps,
        "replica_lag_final": final_lag,
        "replicas_match": replicas_match,
        "elapsed_seconds": backlog_elapsed,
        "ops_per_second": len(backlog) / backlog_elapsed if backlog_elapsed else 0.0,
        "latency_catchup_seconds": catchup_elapsed,
        "latency_live_drain_seconds": live_elapsed,
    }


# ---------------------------------------------------------------------------
# Parallel suite: thread-pool shard dispatch vs the serial paths
# ---------------------------------------------------------------------------
def run_parallel_batch_ingest(n: int, seed: int) -> dict:
    """Pooled per-shard batch dispatch vs the per-op singleton loop.

    Three runs of the same zipfian ingest (a hotspot plus a long tail, so
    every batch splits into several per-shard groups) on sharded
    classical PMAs: the singleton loop (one ``insert`` per op — the
    serial foil), the batched path on one worker (the determinism
    reference), and the batched path fanned across an 8-worker shard
    pool.  ``speedup`` is pooled-batch over singleton — merged per-shard
    rebalances are most of the win on one core, the pool adds core-count
    scaling on real hardware; ``parallel_matches_serial`` hard-fails
    unless the 1-worker and 8-worker batched runs produced bit-identical
    states *and* move logs.
    """
    from repro.analysis.runner import run_workload
    from repro.store.harness import record_move_log
    from repro.workloads.zipfian import ZipfianWorkload

    batch = 128

    def one_run(batch_size: int, max_workers: int):
        labeler = _sharded_labeler()
        log = record_move_log(labeler)
        workload = ZipfianWorkload(n, seed=seed)
        result = run_workload(
            labeler, workload, batch_size=batch_size, max_workers=max_workers
        )
        return labeler, log, result

    singleton, _, singleton_result = one_run(1, 1)
    serial, serial_log, serial_result = one_run(batch, 1)
    pooled, pooled_log, pooled_result = one_run(batch, 8)

    matches = (
        serial_log == pooled_log
        and serial.labels() == pooled.labels()
        and [tuple(s.slots()) for s in serial.shards]
        == [tuple(s.slots()) for s in pooled.shards]
        and singleton.elements() == pooled.elements()
    )
    pooled_ops = pooled_result.ops_per_second
    singleton_ops = singleton_result.ops_per_second
    metrics = _run_result_metrics(pooled_result, pooled)
    metrics.update(
        {
            "batch_size": batch,
            "parallel_matches_serial": matches,
            "singleton_ops_per_second": singleton_ops,
            "serial_ops_per_second": serial_result.ops_per_second,
            "parallel_ops_per_second": pooled_ops,
            "speedup": pooled_ops / singleton_ops if singleton_ops else 0.0,
        }
    )
    return metrics


def run_parallel_scan_fanout(n: int, seed: int) -> dict:
    """Pooled wide-scan reads vs the single-threaded cursor drain.

    Builds one sharded structure of ``n`` keys, then answers a fixed set
    of wide rank windows twice: draining the cross-shard cursor
    (``iter_from``) on one thread, and through ``range_ranks`` /
    ``count_ranges`` with an 8-worker pool attached.  The two answers
    must be identical (``parallel_matches_serial``, ``reads_match``);
    throughput is scanned elements per second on each path.
    """
    from itertools import islice

    from repro.core.parallel import ShardPool

    labeler = _sharded_labeler()
    labeler.bulk_load(list(range(1, n + 1)))
    rng = random.Random(seed)
    width = max(2, n // 4)
    windows = []
    for _ in range(24):
        lo = rng.randrange(1, max(2, n - width))
        windows.append((lo, lo + width - 1))
    slot_windows = [
        (labeler.slot_of_rank(lo), labeler.slot_of_rank(hi) + 1)
        for lo, hi in windows
    ]

    # Wall-clock on a read-only path is noisy (GC, scheduler): time each
    # path best-of-3 — the answers are identical across passes, so only
    # the steadiest timing is kept.
    serial_elapsed = None
    for _ in range(3):
        started = time.perf_counter()
        cursor_answers = [
            list(islice(labeler.iter_from(lo), hi - lo + 1))
            for lo, hi in windows
        ]
        serial_counts = [labeler.count_range(lo, hi) for lo, hi in slot_windows]
        elapsed = time.perf_counter() - started
        if serial_elapsed is None or elapsed < serial_elapsed:
            serial_elapsed = elapsed

    pooled_elapsed = None
    with ShardPool(8) as pool:
        labeler.set_parallel(pool)
        for _ in range(3):
            started = time.perf_counter()
            pooled_answers = [labeler.range_ranks(lo, hi) for lo, hi in windows]
            pooled_counts = labeler.count_ranges(slot_windows)
            elapsed = time.perf_counter() - started
            if pooled_elapsed is None or elapsed < pooled_elapsed:
                pooled_elapsed = elapsed
        labeler.set_parallel(None)

    scanned = sum(len(answer) for answer in cursor_answers)
    matches = pooled_answers == cursor_answers and pooled_counts == serial_counts
    return {
        "operations": len(windows),
        "keys": n,
        "shards": labeler.shard_count,
        "scanned_elements": scanned,
        "count_total": sum(serial_counts),
        "parallel_matches_serial": matches,
        "reads_match": matches,
        "elapsed_seconds": pooled_elapsed,
        "serial_ops_per_second": scanned / serial_elapsed if serial_elapsed else 0.0,
        "parallel_ops_per_second": scanned / pooled_elapsed if pooled_elapsed else 0.0,
        "speedup": serial_elapsed / pooled_elapsed if pooled_elapsed else 0.0,
    }


# ---------------------------------------------------------------------------
# Obs suite: instrumentation overhead (bare vs live-registry runs)
# ---------------------------------------------------------------------------
#: Best-of repeats per variant; the min damps scheduler/GC noise enough
#: for a single-digit-percent overhead bound to be measurable.
_OBS_TIMING_REPEATS = 3


def _obs_lookup_run(n: int, seed: int, registry):
    """One point-lookup-heavy run; returns (move-log digest, elapsed)."""
    from repro.analysis.runner import run_workload
    from repro.store.harness import move_log_digest, record_move_log
    from repro.workloads.mixed import MixedReadWriteWorkload

    labeler = _sharded_labeler()
    if registry is not None:
        labeler.set_registry(registry)
    log = record_move_log(labeler)
    workload = MixedReadWriteWorkload(
        n,
        read_fraction=0.95,
        key_choice="uniform",
        scan_fraction=0.0,
        count_fraction=0.0,
        seed=seed,
    )
    result = run_workload(labeler, workload)
    return move_log_digest(log), result, labeler


def _obs_ingest_run(n: int, seed: int, registry):
    """One pooled batched zipfian ingest; instrumented when given a registry."""
    from repro.analysis.runner import run_workload
    from repro.core.parallel import ShardPool
    from repro.store.harness import move_log_digest, record_move_log
    from repro.workloads.zipfian import ZipfianWorkload

    labeler = _sharded_labeler()
    if registry is not None:
        labeler.set_registry(registry)
    log = record_move_log(labeler)
    workload = ZipfianWorkload(n, seed=seed)
    if registry is None:
        result = run_workload(labeler, workload, batch_size=128, max_workers=8)
    else:
        with ShardPool(8, registry=registry) as pool:
            result = run_workload(labeler, workload, batch_size=128, parallel=pool)
    return move_log_digest(log), result, labeler


def _obs_overhead_metrics(n: int, seed: int, one_run) -> dict:
    """Bare vs live-registry timings of the same seeded workload.

    ``obs_matches_bare`` is the hard-fail correctness claim: a live
    registry must not change a single structural decision, proven by
    move-log digest equality between the bare and instrumented runs.
    ``overhead_fraction`` (instrumented/bare - 1, best-of timings) is the
    wall-clock claim the obs benchmark gates at <5%.
    """
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    bare_digest = None
    bare_elapsed = None
    instrumented_digest = None
    instrumented_elapsed = None
    labeler = None
    tracker = None
    # Interleave the variants (bare, instrumented, bare, …): thermal and
    # GC drift over the measurement then hits both sides equally instead
    # of biasing whichever variant runs last.
    for _ in range(_OBS_TIMING_REPEATS):
        digest, result, _ = one_run(n, seed, None)
        bare_digest = digest
        if bare_elapsed is None or result.elapsed_seconds < bare_elapsed:
            bare_elapsed = result.elapsed_seconds
        digest, result, labeler = one_run(n, seed, registry)
        instrumented_digest = digest
        tracker = result.tracker
        if (
            instrumented_elapsed is None
            or result.elapsed_seconds < instrumented_elapsed
        ):
            instrumented_elapsed = result.elapsed_seconds

    snapshot = registry.snapshot()
    return {
        "operations": n,
        "obs_matches_bare": instrumented_digest == bare_digest,
        "total_moves": tracker.total_cost,
        "shards": labeler.shard_count,
        "metric_families": sum(len(category) for category in snapshot.values()),
        "bare_elapsed_seconds": bare_elapsed,
        "instrumented_elapsed_seconds": instrumented_elapsed,
        "elapsed_seconds": instrumented_elapsed,
        "overhead_fraction": (
            instrumented_elapsed / bare_elapsed - 1.0 if bare_elapsed else 0.0
        ),
    }


def run_obs_point_lookup_overhead(n: int, seed: int) -> dict:
    """The point_lookup_heavy shape, bare vs under a live registry.

    Reads never touch an instrument (only restructures do), so this
    bounds the cost of carrying a live registry through the read path.
    """
    return _obs_overhead_metrics(n, seed, _obs_lookup_run)


def run_obs_parallel_ingest_overhead(n: int, seed: int) -> dict:
    """The parallel_batch_ingest shape, bare vs fully instrumented.

    The instrumented run carries a live registry on both the sharded
    labeler (restructure counters, density sweeps) and the 8-worker pool
    (queue depth, wait/run timers) — the worst case for per-task
    instrument traffic — and must still produce the identical move log.
    """
    return _obs_overhead_metrics(n, seed, _obs_ingest_run)


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------
CORE_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec("insert_heavy", quick_n=512, full_n=4096, run=run_insert_heavy),
        ScenarioSpec("mixed_churn", quick_n=512, full_n=2048, run=run_mixed_churn),
        ScenarioSpec("chain_sparse", quick_n=256, full_n=2048, run=run_chain_sparse),
        ScenarioSpec(
            "point_lookup_heavy",
            quick_n=512,
            full_n=4096,
            run=run_point_lookup_core,
        ),
    )
}

SHARDED_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec("sharded_mixed", quick_n=2048, full_n=16384, run=run_sharded_mixed),
        ScenarioSpec(
            "sharded_bulk_batched",
            quick_n=4096,
            full_n=32768,
            run=run_sharded_bulk_batched,
        ),
        ScenarioSpec(
            "zipfian_hammer", quick_n=1024, full_n=8192, run=run_zipfian_hammer
        ),
    )
}

QUERY_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "point_lookup_heavy",
            quick_n=2048,
            full_n=16384,
            run=run_point_lookup_heavy,
        ),
        ScenarioSpec(
            "ycsb_b_mixed", quick_n=2048, full_n=16384, run=run_ycsb_b_mixed
        ),
        ScenarioSpec(
            "range_scan_heavy",
            quick_n=1024,
            full_n=8192,
            run=run_range_scan_heavy,
        ),
    )
}

STORE_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "durable_mixed", quick_n=512, full_n=4096, run=run_durable_mixed
        ),
        ScenarioSpec(
            "durable_bulk_ingest",
            quick_n=1024,
            full_n=8192,
            run=run_durable_bulk_ingest,
        ),
    )
}

LATENCY_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "cliff_chaser", quick_n=256, full_n=512, run=run_cliff_chaser
        ),
        ScenarioSpec(
            "flash_crowd", quick_n=1024, full_n=4096, run=run_flash_crowd
        ),
        ScenarioSpec(
            "compaction_storm",
            quick_n=1024,
            full_n=4096,
            run=run_compaction_storm,
        ),
        ScenarioSpec(
            "drifting_zipf", quick_n=1024, full_n=4096, run=run_drifting_zipf
        ),
    )
}

SERVER_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "server_mixed", quick_n=256, full_n=2048, run=run_server_mixed
        ),
        ScenarioSpec(
            "replica_catchup",
            quick_n=256,
            full_n=2048,
            run=run_replica_catchup,
        ),
    )
}

PARALLEL_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "parallel_batch_ingest",
            quick_n=1024,
            full_n=16384,
            run=run_parallel_batch_ingest,
        ),
        ScenarioSpec(
            "parallel_scan_fanout",
            quick_n=2048,
            full_n=65536,
            run=run_parallel_scan_fanout,
        ),
    )
}

OBS_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "obs_point_lookup_overhead",
            quick_n=2048,
            full_n=16384,
            run=run_obs_point_lookup_overhead,
        ),
        ScenarioSpec(
            "obs_parallel_ingest_overhead",
            quick_n=1024,
            full_n=8192,
            run=run_obs_parallel_ingest_overhead,
        ),
    )
}
