"""Command-line entry point: ``python -m repro.perf <generate|compare|show>``.

* ``generate [--quick] [--suite core|sharded|all] [--out DIR] [--seed N]``
  runs the scenarios and (re)writes ``BENCH_<suite>.json``.  Refreshing the
  committed baselines is a full run in the repository root::

      PYTHONPATH=src python -m repro.perf generate

* ``compare [--quick] [--suite ...] [--baseline-dir DIR] [--tolerance F]
  [--dump-dir DIR] [--no-trajectory]`` regenerates the suites in memory
  and diffs them against the committed files.  Exits ``1`` on any failure
  — a move-count regression beyond the tolerance (default 25%) or a
  slab/reference move-log divergence.  ``--dump-dir`` also writes the
  fresh documents to disk (before comparing, so a failing run still
  leaves an inspectable artifact).  This is what the CI ``bench-baseline``
  job runs (with ``--quick --dump-dir bench-fresh``).

* **Trajectory.**  Both commands append a history record — the run's
  deterministic cost metrics, plus the pass/fail outcome for compares —
  to the ``trajectory`` list inside ``BENCH_<suite>.json`` (``compare``
  updates the committed file in place; ``generate`` carries the existing
  history forward into the refreshed file).  The baselines therefore
  accumulate the measured cost trajectory across PRs instead of only
  holding the latest run; ``--no-trajectory`` opts out.

* ``show FILE...`` renders committed baseline files as tables (and the
  tail of their trajectory).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.report import format_scenario_table, format_table
from repro.perf.baseline import (
    DEFAULT_MOVE_TOLERANCE,
    DEFAULT_SEED,
    SUITES,
    append_trajectory,
    baseline_filename,
    compare_baselines,
    generate_suite,
    load_baseline,
    record_comparison_trajectory,
    trajectory_entry,
    write_baseline,
)


def _suites(option: str) -> list[str]:
    return sorted(SUITES) if option == "all" else [option]


def _cmd_generate(args: argparse.Namespace) -> int:
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for suite in _suites(args.suite):
        document = generate_suite(suite, quick=args.quick, seed=args.seed)
        path = out_dir / baseline_filename(suite)
        if path.exists() and not args.no_trajectory:
            # A refresh replaces the numbers but keeps the measured
            # history, extended with this run.
            document["trajectory"] = load_baseline(path).get("trajectory", [])
            append_trajectory(document, trajectory_entry(document, event="generate"))
        path = write_baseline(path, document)
        print(f"wrote {path}")
        print(format_scenario_table(document))
        print()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline_dir = Path(args.baseline_dir)
    exit_code = 0
    for suite in _suites(args.suite):
        path = baseline_dir / baseline_filename(suite)
        if not path.exists():
            print(f"FAIL [{suite}]: no committed baseline at {path} — run "
                  f"`python -m repro.perf generate` and commit it")
            exit_code = 1
            continue
        baseline = load_baseline(path)
        fresh = generate_suite(
            suite, quick=args.quick, seed=baseline.get("seed", DEFAULT_SEED)
        )
        if args.dump_dir:
            dump_dir = Path(args.dump_dir)
            dump_dir.mkdir(parents=True, exist_ok=True)
            dumped = write_baseline(dump_dir / baseline_filename(suite), fresh)
            print(f"wrote {dumped}")
        comparison = compare_baselines(
            baseline, fresh, move_tolerance=args.tolerance
        )
        if not args.no_trajectory:
            record_comparison_trajectory(path, fresh, comparison)
        interesting = [row for row in comparison.rows if row["status"] != "ok"]
        if interesting:
            print(format_table(interesting, title=f"[{suite}] drift vs {path.name}"))
        for note in comparison.notes:
            print(f"note [{suite}]: {note}")
        for warning in comparison.warnings:
            print(f"WARN [{suite}]: {warning}")
        for failure in comparison.failures:
            print(f"FAIL [{suite}]: {failure}")
        if comparison.ok:
            compared = sum(1 for row in comparison.rows if row["status"] == "ok")
            print(f"ok [{suite}]: {compared} metrics within tolerance "
                  f"({len(comparison.warnings)} warning(s))")
        else:
            exit_code = 1
    return exit_code


def _cmd_show(args: argparse.Namespace) -> int:
    for name in args.files:
        document = load_baseline(name)
        print(format_scenario_table(document, title=str(name)))
        history = document.get("trajectory", [])
        if history:
            print(f"trajectory: {len(history)} recorded run(s); last 5:")
            for entry in history[-5:]:
                outcome = ""
                if "ok" in entry:
                    outcome = " ok" if entry["ok"] else (
                        f" FAIL({entry.get('failures', '?')})"
                    )
                print(
                    f"  {entry.get('date', '?')} {entry.get('event', '?')} "
                    f"seed={entry.get('seed')} quick={entry.get('quick')}"
                    f"{outcome}"
                )
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.perf")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="run scenarios, write BENCH_*.json")
    generate.add_argument("--quick", action="store_true", help="quick sizes only")
    generate.add_argument("--suite", choices=[*sorted(SUITES), "all"], default="all")
    generate.add_argument("--out", default=".", help="output directory")
    generate.add_argument("--seed", type=int, default=DEFAULT_SEED)
    generate.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not carry/extend the baseline's trajectory history",
    )
    generate.set_defaults(func=_cmd_generate)

    compare = sub.add_parser("compare", help="diff a fresh run vs committed baselines")
    compare.add_argument("--quick", action="store_true", help="quick sizes only")
    compare.add_argument("--suite", choices=[*sorted(SUITES), "all"], default="all")
    compare.add_argument("--baseline-dir", default=".", help="directory of BENCH files")
    compare.add_argument("--tolerance", type=float, default=DEFAULT_MOVE_TOLERANCE)
    compare.add_argument(
        "--dump-dir",
        default=None,
        help="also write the fresh run's BENCH files here (CI artifact)",
    )
    compare.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append this run to the baseline's trajectory history",
    )
    compare.set_defaults(func=_cmd_compare)

    show = sub.add_parser("show", help="render baseline files as tables")
    show.add_argument("files", nargs="+")
    show.set_defaults(func=_cmd_show)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
