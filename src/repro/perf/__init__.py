"""The performance subsystem: recorded traces, scenarios, and baselines.

``repro.perf`` makes performance a *tracked artifact* instead of an
anecdote.  It has three layers:

* :mod:`repro.perf.trace` — record the physical-array operation sequence an
  embedding run produces (:class:`TracingPhysicalArray`) and replay it
  verbatim on any physical-array implementation.  Replays are what the
  differential suite compares move-for-move and what the core benchmarks
  time: the *same* operation sequence is executed on the slab-backed
  :class:`repro.core.physical.PhysicalArray` and on the seed's
  :class:`repro.core.physical_reference.ReferencePhysicalArray`.
* :mod:`repro.perf.scenarios` — deterministic, seeded throughput scenarios
  (singleton insert-heavy, sparse chain moves, batched bulk load, sharded
  mixed traffic, zipfian hammer).  Every scenario returns a flat metric
  dict whose move counts are bit-deterministic for a given seed; only the
  wall-clock fields vary between runs.
* :mod:`repro.perf.baseline` — schema-versioned ``BENCH_core.json`` /
  ``BENCH_sharded.json`` files at the repository root, plus the comparator
  that diffs a fresh run against the committed baseline (move-count
  regressions fail, wall-clock drift warns).

Refresh the committed baselines with ``python -m repro.perf generate`` and
check a working tree against them with ``python -m repro.perf compare
--quick`` (what CI's ``bench-baseline`` job runs).
"""

from repro.perf.baseline import (
    BaselineComparison,
    SCHEMA_VERSION,
    baseline_filename,
    compare_baselines,
    generate_suite,
    load_baseline,
    strip_wall_clock,
    write_baseline,
)
from repro.perf.scenarios import CORE_SCENARIOS, SHARDED_SCENARIOS, ScenarioSpec
from repro.perf.trace import (
    PhysicalTrace,
    TracingPhysicalArray,
    record_insert_heavy_trace,
    replay_trace,
)

__all__ = [
    "BaselineComparison",
    "CORE_SCENARIOS",
    "PhysicalTrace",
    "SCHEMA_VERSION",
    "SHARDED_SCENARIOS",
    "ScenarioSpec",
    "TracingPhysicalArray",
    "baseline_filename",
    "compare_baselines",
    "generate_suite",
    "load_baseline",
    "record_insert_heavy_trace",
    "replay_trace",
    "strip_wall_clock",
    "write_baseline",
]
