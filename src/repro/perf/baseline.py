"""Schema-versioned benchmark baselines and the regression comparator.

The committed artifacts are ``BENCH_core.json``, ``BENCH_sharded.json``,
``BENCH_store.json``, ``BENCH_query.json``, ``BENCH_latency.json`` and
``BENCH_server.json`` at the repository root:

.. code-block:: json

    {
      "schema_version": 2,
      "suite": "core",
      "seed": 20260730,
      "quick": false,
      "scenarios": {
        "insert_heavy": {
          "sizes": {
            "512":  {"operations": 512, "moves": 5613, "...": "..."},
            "4096": {"operations": 4096, "moves": 46687, "...": "..."}
          }
        }
      }
    }

Full generation records every scenario at its quick *and* full size; a
``--quick`` regeneration (what CI does on every push) reruns only the quick
sizes and :func:`compare_baselines` diffs the intersection:

* move-count metrics (``moves``, ``total_moves``, ``reference_moves``,
  ``restructure_moves``) regressing by more than the tolerance (default
  25%) are **failures** — the comparator exits nonzero;
* a false correctness flag — ``moves_match`` (slab/reference move-log
  divergence) or ``recovered_match`` (a store recovery that did not
  reproduce the pre-crash state) — is always a failure;
* wall-clock metrics (``elapsed_seconds``, ``reference_elapsed_seconds``,
  ``speedup``, ``ops_per_second``, and every metric carrying a
  ``latency_`` segment — see :func:`is_wall_clock_metric`) only ever
  **warn** — timings are machine-dependent, move counts are not.  The
  check is direction-aware: elapsed times and latencies warn when the
  fresh run is *slower* by the warn factor, ``speedup``/``ops_per_second``
  warn when the fresh value *collapses* by it;
* any other metric drift warns, since for a fixed seed every non-wall-clock
  number is expected to be bit-identical.

**Schema versions.**  Version 2 (current) added the latency suite and the
``p999`` / ``latency_*`` summary fields; the change is purely additive, so
the comparator accepts any baseline whose version is in
:data:`COMPATIBLE_SCHEMA_VERSIONS` — the committed version-1 documents
keep validating without regeneration.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.perf.scenarios import (
    CORE_SCENARIOS,
    LATENCY_SCENARIOS,
    OBS_SCENARIOS,
    PARALLEL_SCENARIOS,
    QUERY_SCENARIOS,
    SERVER_SCENARIOS,
    SHARDED_SCENARIOS,
    STORE_SCENARIOS,
    ScenarioSpec,
)

SCHEMA_VERSION = 2

#: Baseline document versions the comparator still reads.  Version 2 only
#: *added* fields (latency suite, ``p999``/``latency_*``), so version-1
#: documents committed before the bump stay comparable as-is.
COMPATIBLE_SCHEMA_VERSIONS = frozenset({1, 2})

#: Seed baked into the committed baselines.
DEFAULT_SEED = 20260730

#: Default failure threshold for move-count regressions (+25%).
DEFAULT_MOVE_TOLERANCE = 0.25

#: Wall-clock warn threshold (fresh slower than baseline by this factor).
WALL_CLOCK_WARN_FACTOR = 1.5

SUITES: dict[str, dict[str, ScenarioSpec]] = {
    "core": CORE_SCENARIOS,
    "sharded": SHARDED_SCENARIOS,
    "store": STORE_SCENARIOS,
    "query": QUERY_SCENARIOS,
    "latency": LATENCY_SCENARIOS,
    "server": SERVER_SCENARIOS,
    "parallel": PARALLEL_SCENARIOS,
    "obs": OBS_SCENARIOS,
}

#: Entries kept in a baseline file's ``trajectory`` history list.
TRAJECTORY_LIMIT = 200

#: Metrics measured in element moves — the paper's cost model, and the only
#: numbers the comparator treats as hard regressions.
MOVE_METRICS = frozenset(
    {"moves", "reference_moves", "vector_moves", "total_moves", "restructure_moves"}
)

#: Machine-dependent metrics: never compared strictly, stripped by the
#: determinism tests, and only warned about by the comparator.
WALL_CLOCK_METRICS = frozenset(
    {
        "elapsed_seconds",
        "reference_elapsed_seconds",
        "vector_elapsed_seconds",
        "recovery_elapsed_seconds",
        "full_recovery_elapsed_seconds",
        "speedup",
        "vector_speedup",
        "vector_vs_slab_speedup",
        "ops_per_second",
        "reference_ops_per_second",
        "vector_ops_per_second",
        "singleton_ops_per_second",
        "serial_ops_per_second",
        "parallel_ops_per_second",
        "bare_elapsed_seconds",
        "instrumented_elapsed_seconds",
        "overhead_fraction",
    }
)

#: Wall-clock metrics where a *drop* (not a rise) signals degradation.
_HIGHER_IS_BETTER = frozenset(
    {
        "speedup",
        "vector_speedup",
        "vector_vs_slab_speedup",
        "ops_per_second",
        "reference_ops_per_second",
        "vector_ops_per_second",
    }
)

#: Boolean correctness flags: anything but ``True`` in a fresh run is a
#: hard failure, never a drift warning.
_CORRECTNESS_FLAGS = {
    "moves_match": "slab and reference move logs diverged",
    "vector_matches_slab": (
        "vector backend diverged from the slab oracle (move logs or lookup "
        "answers no longer bit-identical)"
    ),
    "recovered_match": "recovered store diverged from the pre-crash state",
    "reads_match": "a verified read diverged from the reference model",
    "tail_inversion": (
        "deamortized no longer beats classical on p999 move cost while "
        "classical wins amortized (the latency suite's paper-story check)"
    ),
    "replicas_match": (
        "replica state digest diverged from the primary (WAL shipping no "
        "longer reproduces byte-identical state)"
    ),
    "parallel_matches_serial": (
        "pooled shard execution diverged from the serial path (state "
        "digest or move log mismatch across worker counts)"
    ),
    "obs_matches_bare": (
        "a live metrics registry changed a structural decision (move log "
        "digest diverged between the bare and instrumented runs)"
    ),
}


def is_wall_clock_metric(name: str) -> bool:
    """Whether ``name`` is machine-dependent (warn-only, stripped for
    determinism checks).

    Beyond the fixed :data:`WALL_CLOCK_METRICS` names, every metric whose
    name carries a ``latency_`` segment (``latency_p999``,
    ``classical_latency_p50``, …) is wall-clock: latencies come from a real
    clock, so noisy CI boxes must never hard-fail the comparator on them.
    """
    return name in WALL_CLOCK_METRICS or "latency_" in name


def baseline_filename(suite: str) -> str:
    """The committed artifact name of a suite (``BENCH_<suite>.json``)."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r} (have {sorted(SUITES)})")
    return f"BENCH_{suite}.json"


def generate_suite(suite: str, *, quick: bool = False, seed: int = DEFAULT_SEED) -> dict:
    """Run every scenario of ``suite`` and return the baseline document.

    Full mode runs each scenario at its quick and full sizes (so the
    committed file contains the entries a quick CI regeneration can be
    diffed against); quick mode runs the quick sizes only.
    """
    scenarios = SUITES.get(suite)
    if scenarios is None:
        raise ValueError(f"unknown suite {suite!r} (have {sorted(SUITES)})")
    document: dict = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "seed": seed,
        "quick": quick,
        "scenarios": {},
    }
    for name, spec in scenarios.items():
        sizes = [spec.quick_n] if quick else sorted({spec.quick_n, spec.full_n})
        document["scenarios"][name] = {
            "sizes": {str(n): spec.run(n, seed) for n in sizes}
        }
    return document


def write_baseline(path: str | Path, document: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# Trajectory: per-run history inside the committed baseline files
# ---------------------------------------------------------------------------
def trajectory_entry(
    fresh: dict, *, event: str, comparison: "BaselineComparison | None" = None
) -> dict:
    """One history record summarizing a run of the suite.

    Captures the deterministic cost metrics (moves and operation counts)
    of every scenario/size the run produced, plus — for ``compare`` runs —
    the comparison outcome.  Wall-clock values are deliberately excluded:
    the history tracks the cost model across PRs, not machine speed.
    """
    metrics: dict[str, float] = {}
    for name, entry in fresh.get("scenarios", {}).items():
        for size, values in entry.get("sizes", {}).items():
            for metric, value in values.items():
                if metric in MOVE_METRICS or metric == "operations":
                    metrics[f"{name}@{size}.{metric}"] = value
    record: dict = {
        "event": event,
        "date": _today(),
        "seed": fresh.get("seed"),
        "quick": fresh.get("quick"),
        "metrics": metrics,
    }
    if comparison is not None:
        record["ok"] = comparison.ok
        record["failures"] = len(comparison.failures)
        record["warnings"] = len(comparison.warnings)
    return record


def _today() -> str:
    import datetime

    return datetime.date.today().isoformat()


def append_trajectory(document: dict, entry: dict) -> None:
    """Append ``entry`` to a baseline document's history (bounded length)."""
    history = document.setdefault("trajectory", [])
    history.append(entry)
    del history[: max(0, len(history) - TRAJECTORY_LIMIT)]


def record_comparison_trajectory(
    path: str | Path, fresh: dict, comparison: "BaselineComparison"
) -> None:
    """Persist a ``compare`` run into the committed baseline's history.

    This is what keeps the perf trajectory across PRs non-empty: every
    ``python -m repro.perf compare`` leaves its deterministic cost numbers
    (and pass/fail outcome) inside ``BENCH_<suite>.json``, so the file
    carries the whole measured history, not just the latest refresh.
    """
    path = Path(path)
    document = load_baseline(path)
    append_trajectory(
        document, trajectory_entry(fresh, event="compare", comparison=comparison)
    )
    write_baseline(path, document)


def strip_wall_clock(document: dict) -> dict:
    """A copy of a baseline document without its machine-dependent fields.

    Two runs with the same seed must produce *identical* stripped documents
    — the determinism regression test asserts exactly that across fresh
    processes.
    """
    stripped = {
        key: value for key, value in document.items() if key != "scenarios"
    }
    stripped["scenarios"] = {
        name: {
            "sizes": {
                size: {
                    metric: value
                    for metric, value in metrics.items()
                    if not is_wall_clock_metric(metric)
                }
                for size, metrics in entry["sizes"].items()
            }
        }
        for name, entry in document["scenarios"].items()
    }
    return stripped


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------
@dataclass
class BaselineComparison:
    """The outcome of diffing a fresh run against a committed baseline."""

    suite: str
    rows: list[dict] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def _row(self, scenario: str, size: str, metric: str, baseline, fresh, status: str) -> None:
        delta = ""
        if (
            isinstance(baseline, (int, float))
            and isinstance(fresh, (int, float))
            and not isinstance(baseline, bool)
            and baseline
        ):
            delta = f"{(fresh - baseline) / baseline * 100.0:+.1f}%"
        self.rows.append(
            {
                "scenario": scenario,
                "n": size,
                "metric": metric,
                "baseline": baseline,
                "fresh": fresh,
                "delta": delta,
                "status": status,
            }
        )


def compare_baselines(
    baseline: dict,
    fresh: dict,
    *,
    move_tolerance: float = DEFAULT_MOVE_TOLERANCE,
) -> BaselineComparison:
    """Diff ``fresh`` (a regenerated run) against ``baseline`` (committed).

    Only the scenario/size intersection is compared, so a quick fresh run
    diffs cleanly against a full committed baseline.  See the module
    docstring for the failure/warning policy.
    """
    suite = baseline.get("suite", "?")
    comparison = BaselineComparison(suite=suite)
    # Compatible versions (not just equal ones) diff cleanly: schema bumps
    # are additive, so a version-1 committed baseline validates against a
    # version-2 fresh run on their metric intersection.
    for side, document in (("baseline", baseline), ("fresh", fresh)):
        if document.get("schema_version") not in COMPATIBLE_SCHEMA_VERSIONS:
            comparison.failures.append(
                f"unsupported {side} schema version "
                f"{document.get('schema_version')!r} (supported: "
                f"{sorted(COMPATIBLE_SCHEMA_VERSIONS)}) — regenerate the "
                f"baseline"
            )
    if comparison.failures:
        return comparison
    if baseline.get("seed") != fresh.get("seed"):
        comparison.failures.append(
            f"seed mismatch: baseline {baseline.get('seed')!r} vs fresh "
            f"{fresh.get('seed')!r} — move counts are not comparable"
        )
        return comparison

    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})
    for name in sorted(set(base_scenarios) | set(fresh_scenarios)):
        if name not in fresh_scenarios:
            comparison.notes.append(f"{name}: not rerun (baseline-only)")
            continue
        if name not in base_scenarios:
            comparison.warnings.append(
                f"{name}: no committed baseline — run `python -m repro.perf "
                f"generate` and commit the refreshed BENCH files"
            )
            continue
        base_sizes = base_scenarios[name].get("sizes", {})
        fresh_sizes = fresh_scenarios[name].get("sizes", {})
        for size in sorted(set(base_sizes) & set(fresh_sizes), key=int):
            _compare_metrics(
                comparison,
                name,
                size,
                base_sizes[size],
                fresh_sizes[size],
                move_tolerance,
            )
        for size in sorted(set(fresh_sizes) - set(base_sizes), key=int):
            comparison.warnings.append(
                f"{name}@{size}: size missing from the committed baseline"
            )
    return comparison


def _compare_metrics(
    comparison: BaselineComparison,
    scenario: str,
    size: str,
    base_metrics: dict,
    fresh_metrics: dict,
    move_tolerance: float,
) -> None:
    for metric in sorted(set(base_metrics) | set(fresh_metrics)):
        base_value = base_metrics.get(metric)
        fresh_value = fresh_metrics.get(metric)
        label = f"{scenario}@{size}.{metric}"
        if base_value is None or fresh_value is None:
            comparison.warnings.append(f"{label}: present on one side only")
            continue
        if metric in _CORRECTNESS_FLAGS:
            if fresh_value is not True:
                comparison.failures.append(
                    f"{label}: " + _CORRECTNESS_FLAGS[metric]
                )
                comparison._row(scenario, size, metric, base_value, fresh_value, "FAIL")
            continue
        if is_wall_clock_metric(metric):
            status = "ok"
            if isinstance(base_value, (int, float)) and base_value > 0:
                # Direction-aware: speedup/ops_per_second are higher-is-
                # better (warn on collapse), elapsed times and latencies
                # are lower-is-better (warn on slowdown).
                if metric in _HIGHER_IS_BETTER:
                    degraded = fresh_value * WALL_CLOCK_WARN_FACTOR < base_value
                else:
                    degraded = fresh_value > base_value * WALL_CLOCK_WARN_FACTOR
                if degraded:
                    status = "WARN"
                    comparison.warnings.append(
                        f"{label}: wall-clock {fresh_value:.4f} vs baseline "
                        f"{base_value:.4f} (machine-dependent; not a failure)"
                    )
            comparison._row(scenario, size, metric, base_value, fresh_value, status)
            continue
        if metric in MOVE_METRICS:
            if base_value > 0:
                relative = (fresh_value - base_value) / base_value
            else:
                relative = 0.0 if fresh_value == base_value else math.inf
            if relative > move_tolerance:
                comparison.failures.append(
                    f"{label}: move count regressed {relative * 100.0:+.1f}% "
                    f"({base_value} → {fresh_value}, tolerance "
                    f"{move_tolerance * 100.0:.0f}%)"
                )
                status = "FAIL"
            elif fresh_value != base_value:
                comparison.warnings.append(
                    f"{label}: move count drifted ({base_value} → {fresh_value}) "
                    f"— seeded runs should be identical; regenerate the "
                    f"baseline if this change is intended"
                )
                status = "WARN"
            else:
                status = "ok"
            comparison._row(scenario, size, metric, base_value, fresh_value, status)
            continue
        if base_value != fresh_value:
            comparison.warnings.append(
                f"{label}: {base_value!r} → {fresh_value!r} (deterministic "
                f"metric drifted)"
            )
            comparison._row(scenario, size, metric, base_value, fresh_value, "WARN")
