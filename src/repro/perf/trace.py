"""Physical-array operation traces: record once, replay anywhere.

A *trace* is the sequence of top-level mutating calls an embedding (or a
synthetic driver) issued against its physical array: slot-kind
initialization, puts/takes/moves, chain moves, and R-shell replays.  Traces
are recorded by :class:`TracingPhysicalArray` — a :class:`PhysicalArray`
whose public mutators log themselves before delegating — and replayed with
:func:`replay_trace` on **any** physical-array implementation, which is what
makes them the common currency of

* the differential suite (replay on slab and reference, assert move-log
  equality), and
* the core benchmarks (replay on both, compare wall-clock for identical
  work).

Only top-level calls are recorded: a ``chain_move`` performs internal
``move_element`` calls, but re-entrant recording is suppressed so a replay
re-derives them — exercising the *implementation* under test rather than a
flattened move list.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Callable, Hashable

from repro.core.operations import Move
from repro.core.physical import PhysicalArray

#: One trace entry: an opcode plus its (hashable, picklable) arguments.
TraceOp = tuple[str, tuple]
#: A recorded run: the op list plus the array geometry it applies to.
PhysicalTrace = list[TraceOp]


class TracingPhysicalArray(PhysicalArray):
    """A :class:`PhysicalArray` that records its top-level mutating calls."""

    def __init__(self, num_slots: int, trace: PhysicalTrace | None = None) -> None:
        super().__init__(num_slots)
        #: The recorded op list (shared with the caller when provided).
        self.trace: PhysicalTrace = trace if trace is not None else []
        self._trace_depth = 0

    def _note(self, op: str, args: tuple) -> None:
        if self._trace_depth == 0:
            self.trace.append((op, args))

    # -- traced mutators -------------------------------------------------
    def initialize_kinds(self, positions_and_kinds) -> None:
        positions_and_kinds = tuple(positions_and_kinds)
        self._note("init", (positions_and_kinds,))
        self._trace_depth += 1
        try:
            super().initialize_kinds(positions_and_kinds)
        finally:
            self._trace_depth -= 1

    def set_kind(self, position: int, kind: int) -> None:
        self._note("kind", (position, kind))
        super().set_kind(position, kind)

    def put_element(self, position: int, element: Hashable, *, deadweight: bool = False) -> None:
        self._note("put", (position, element, deadweight))
        super().put_element(position, element, deadweight=deadweight)

    def take_element(self, position: int) -> Hashable:
        self._note("take", (position,))
        return super().take_element(position)

    def move_element(self, src: int, dst: int, *, deadweight: bool = False) -> None:
        self._note("move", (src, dst, deadweight))
        super().move_element(src, dst, deadweight=deadweight)

    def chain_move(self, source: int, target_f_index: int) -> int:
        self._note("chain", (source, target_f_index))
        self._trace_depth += 1
        try:
            return super().chain_move(source, target_f_index)
        finally:
            self._trace_depth -= 1

    def apply_shell_moves(self, moves) -> int:
        triples = tuple(
            (move.element, move.source, move.destination) for move in moves
        )
        self._note("shell", (triples,))
        self._trace_depth += 1
        try:
            return super().apply_shell_moves(
                Move(element, source, destination)
                for element, source, destination in triples
            )
        finally:
            self._trace_depth -= 1


def replay_trace(trace: PhysicalTrace, array) -> None:
    """Apply a recorded trace to ``array`` (any physical-array implementation).

    The caller owns ``array.move_sink`` — set it before replaying to collect
    the move log the replay produces.
    """
    put = array.put_element
    take = array.take_element
    move = array.move_element
    chain = array.chain_move
    set_kind = array.set_kind
    shell = array.apply_shell_moves
    for op, args in trace:
        if op == "put":
            put(args[0], args[1], deadweight=args[2])
        elif op == "move":
            move(args[0], args[1], deadweight=args[2])
        elif op == "chain":
            chain(args[0], args[1])
        elif op == "take":
            take(args[0])
        elif op == "shell":
            shell(
                Move(element, source, destination)
                for element, source, destination in args[0]
            )
        elif op == "kind":
            set_kind(args[0], args[1])
        elif op == "init":
            array.initialize_kinds(args[0])
        else:
            raise ValueError(f"unknown trace opcode {op!r}")


def _midpoint_key(reference: list, rank: int) -> Fraction:
    """An exact key strictly between the rank neighbours (driver helper)."""
    lower = reference[rank - 2] if rank >= 2 else None
    upper = reference[rank - 1] if rank - 1 < len(reference) else None
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        return upper - 1
    if upper is None:
        return lower + 1
    return (lower + upper) / 2


def record_insert_heavy_trace(
    n: int,
    seed: int,
    *,
    delete_fraction: float = 0.0,
    fast_factory: Callable | None = None,
    reliable_factory: Callable | None = None,
    **embedding_kwargs,
) -> tuple[PhysicalTrace, int]:
    """Record the physical trace of a seeded embedding run.

    Drives an :class:`repro.core.embedding.Embedding` (adaptive fast side,
    classical reliable side by default) through ``n`` operations at uniformly
    random ranks — insert-only unless ``delete_fraction`` is set — and
    returns ``(trace, num_slots)``.  Everything is derived from ``seed``, so
    the trace (and therefore every move count downstream) is reproducible
    across processes.
    """
    from repro.algorithms import AdaptivePMA, ClassicalPMA
    from repro.core.embedding import Embedding

    if fast_factory is None:
        fast_factory = lambda cap, slots: AdaptivePMA(cap, slots)
    if reliable_factory is None:
        reliable_factory = lambda cap, slots: ClassicalPMA(cap, slots)
    trace: PhysicalTrace = []
    embedding = Embedding(
        n,
        fast_factory=fast_factory,
        reliable_factory=reliable_factory,
        physical_factory=lambda num_slots: TracingPhysicalArray(num_slots, trace),
        **embedding_kwargs,
    )
    rng = random.Random(seed)
    reference: list[Fraction] = []
    for _ in range(n):
        size = len(reference)
        if size and delete_fraction and rng.random() < delete_fraction:
            rank = rng.randint(1, size)
            embedding.delete(rank)
            reference.pop(rank - 1)
            continue
        rank = rng.randint(1, size + 1)
        key = _midpoint_key(reference, rank)
        embedding.insert(rank, key)
        reference.insert(rank - 1, key)
    return trace, embedding.num_slots
