"""Order maintenance on top of list labeling.

The order-maintenance problem (Dietz [23]; Bender et al. [5, 6]) asks for a
data structure over opaque items supporting ``insert_after(x, y)``,
``insert_before(x, y)``, ``delete(x)`` and ``precedes(x, y)`` — the classic
substrate for persistence, fully-dynamic graph algorithms and MVCC version
ordering.  The textbook solution is exactly a list-labeling structure: each
item's *label* is its array slot, and ``precedes`` compares labels in O(1).

Any :class:`repro.core.interface.ListLabeler` works as the backend; with the
layered structure of Corollary 11 the order-maintenance operations inherit
its worst-case, expected and adaptive move bounds.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator

from repro.core.cost import CostTracker
from repro.core.interface import ListLabeler
from repro.core.layered import make_corollary11_labeler


class OrderMaintenance:
    """Maintain a total order over opaque items under insertions/deletions."""

    def __init__(
        self,
        capacity: int,
        labeler_factory: Callable[[int], ListLabeler] | None = None,
    ) -> None:
        if labeler_factory is None:
            labeler_factory = lambda cap: make_corollary11_labeler(cap)
        self._labeler = labeler_factory(capacity)
        #: Items in their current order; mirrors the labeler's contents.
        self._order: list[Hashable] = []
        self._present: set[Hashable] = set()
        self.costs = CostTracker()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._present

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labeler.elements())

    # ------------------------------------------------------------------
    def _insert_at(self, position: int, item: Hashable) -> None:
        if item in self._present:
            raise ValueError(f"item {item!r} is already in the order")
        result = self._labeler.insert(position + 1, item)
        self.costs.record(result.cost)
        self._order.insert(position, item)
        self._present.add(item)

    def insert_first(self, item: Hashable) -> None:
        """Insert ``item`` as the first element of the order."""
        self._insert_at(0, item)

    def insert_last(self, item: Hashable) -> None:
        """Insert ``item`` as the last element of the order."""
        self._insert_at(len(self._order), item)

    def insert_after(self, anchor: Hashable, item: Hashable) -> None:
        """Insert ``item`` immediately after ``anchor``."""
        self._insert_at(self._position(anchor) + 1, item)

    def insert_before(self, anchor: Hashable, item: Hashable) -> None:
        """Insert ``item`` immediately before ``anchor``."""
        self._insert_at(self._position(anchor), item)

    def delete(self, item: Hashable) -> None:
        """Remove ``item`` from the order."""
        position = self._position(item)
        result = self._labeler.delete(position + 1)
        self.costs.record(result.cost)
        self._order.pop(position)
        self._present.remove(item)

    # ------------------------------------------------------------------
    def precedes(self, first: Hashable, second: Hashable) -> bool:
        """Whether ``first`` comes before ``second`` — an O(1) label compare."""
        return self.label_of(first) < self.label_of(second)

    def label_of(self, item: Hashable) -> int:
        """The item's current label (its slot in the labeling array)."""
        if item not in self._present:
            raise KeyError(f"item {item!r} is not in the order")
        return self._labeler.slot_of(item)

    def _position(self, item: Hashable) -> int:
        if item not in self._present:
            raise KeyError(f"item {item!r} is not in the order")
        # The labeler's occupancy index answers rank queries in O(log m);
        # the mirror list is kept only for validation in :meth:`check`.
        return self._labeler.rank_of(item) - 1

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Validate that labels are consistent with the logical order."""
        if list(self._labeler.elements()) != self._order:
            raise AssertionError("labeler order diverged from the logical order")
        labels = [self.label_of(item) for item in self._order]
        if labels != sorted(labels):
            raise AssertionError("labels are not monotone in the logical order")
