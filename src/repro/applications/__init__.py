"""Application layers built on top of list labeling.

The paper's introduction motivates list labeling through its database uses:
packed-memory arrays as clustered index layouts, and order maintenance for
ordered collections.  This subpackage provides the two classic application
wrappers so downstream users can adopt the layered structure without dealing
in ranks directly:

* :class:`~repro.applications.ordered_map.PackedMemoryMap` — a sorted
  key→value map (insert / get / delete / predecessor / range scan) whose
  physical layout is any :class:`repro.core.interface.ListLabeler`;
* :class:`~repro.applications.order_maintenance.OrderMaintenance` — the
  Dietz–Sleator order-maintenance interface (``insert_after``,
  ``insert_before``, ``precedes``) implemented with list-labeling labels;
* :class:`~repro.applications.ordered_map.DurableMap` — the clustered
  index made crash-safe: a :class:`PackedMemoryMap` served through the
  durable store (:mod:`repro.store`), with write-ahead logging, exact
  layout checkpoints, and recovery on open.
"""

from repro.applications.ordered_map import DurableMap, PackedMemoryMap
from repro.applications.order_maintenance import OrderMaintenance

__all__ = ["DurableMap", "OrderMaintenance", "PackedMemoryMap"]
