"""A sorted key→value map laid out by a list-labeling algorithm.

This is the "packed-memory array as a clustered database index" use of list
labeling: keys are kept physically sorted in an array with gaps, so range
scans are sequential reads, while the underlying list-labeling algorithm
bounds how much data movement each update causes.  Any
:class:`repro.core.interface.ListLabeler` can supply the layout — including
the layered structure of Corollary 11, which gives the map bounded update
latency, good expected throughput, and adaptivity to skewed key patterns all
at once.

The labeler *is* the sorted key index: the map keeps no shadow key list
beside it.  Rank searches binary-search the labeler's ``select`` (``O(log n
· log m)``), :meth:`PackedMemoryMap.range` streams through a labeler cursor
(:meth:`~repro.core.interface.ListLabeler.iter_from` — one seek, then a
lazy slot walk, never a whole-map materialization), and
:meth:`PackedMemoryMap.count_range` counts a key interval without touching
the elements in between.  ``range`` supports pagination (``limit`` +
``after``), which is what lets the durable store's service scan in pages
without pinning writers out for a whole-store pass.

With ``capacity=None`` the map is **unbounded**: the layout is managed by a
:class:`repro.core.sharded.ShardedLabeler` over fixed-capacity shards, so
the map keeps absorbing keys indefinitely while every update stays local to
one shard.  Bulk ingestion goes through :meth:`PackedMemoryMap.update_many`,
which forwards one pre-batch-rank ``insert_batch`` to the labeler — the
batch engine's merged rebalances make sorted loads far cheaper than
key-at-a-time insertion.

:class:`DurableMap` is the same clustered index made crash-safe: it
delegates to a :class:`repro.store.store.DurableStore`, so every update is
write-ahead logged before it is applied, checkpoints capture the exact
per-shard physical layout, and reopening the map recovers the state of the
last durable operation (see :mod:`repro.store`).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

from repro.core.cost import CostTracker
from repro.core.interface import ListLabeler
from repro.core.layered import make_corollary11_labeler
from repro.core.sharded import ShardedLabeler


class PackedMemoryMap:
    """Sorted mapping with list-labeling-managed physical layout.

    Parameters
    ----------
    capacity:
        Maximum number of keys, or ``None`` for an unbounded map backed by
        the sharding engine.
    labeler_factory:
        Builds the underlying list labeler.  For a bounded map it receives
        ``capacity`` and defaults to the Corollary 11 layered structure;
        for an unbounded map it receives the *shard* capacity and serves as
        the shard factory (default: the Corollary 11 structure per shard).
    shard_capacity:
        Shard size of the unbounded map (ignored when ``capacity`` is set).
    """

    def __init__(
        self,
        capacity: int | None = None,
        labeler_factory: Callable[[int], ListLabeler] | None = None,
        *,
        shard_capacity: int = 128,
    ) -> None:
        if labeler_factory is None:
            labeler_factory = lambda cap: make_corollary11_labeler(cap)
        if capacity is None:
            self._labeler: ListLabeler = ShardedLabeler(
                labeler_factory, shard_capacity=shard_capacity
            )
        else:
            self._labeler = labeler_factory(capacity)
        self._values: dict = {}
        #: Element-move cost of every update, in the paper's cost model.
        self.costs = CostTracker()

    # ------------------------------------------------------------------
    # Rank search: binary search over the labeler's select
    # ------------------------------------------------------------------
    def _count_below(self, key, *, strict: bool, floor: int = 0) -> int:
        """Number of stored keys ``< key`` (strict) or ``<= key``.

        A binary search over ranks probing ``labeler.select`` — ``O(log n)``
        probes of ``O(log m)`` each.  This replaces the bisect over the
        shadow key list the map used to carry beside the labeler.
        ``floor`` is a known lower bound on the answer (sorted batch loops
        warm-start each search at the previous key's count).
        """
        labeler = self._labeler
        lo, hi = floor, len(self._values)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            probe = labeler.select(mid)
            if probe < key if strict else probe <= key:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _count_less(self, key, floor: int = 0) -> int:
        return self._count_below(key, strict=True, floor=floor)

    def _count_le(self, key) -> int:
        return self._count_below(key, strict=False)

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key) -> bool:
        return key in self._values

    def __getitem__(self, key):
        return self._values[key]

    def get(self, key, default=None):
        return self._values.get(key, default)

    def __setitem__(self, key, value) -> None:
        if key in self._values:
            self._values[key] = value
            return
        rank = self._count_less(key) + 1
        result = self._labeler.insert(rank, key)
        self.costs.record(result.cost)
        self._values[key] = value

    def update_many(self, items: Iterable[tuple[Hashable, object]]) -> int:
        """Bulk upsert: one batched labeler call for all new keys.

        Existing keys only have their values replaced (no layout change).
        New keys are inserted through ``insert_batch`` with pre-batch ranks
        computed against the current key sequence, so a sorted ingest run
        costs one merged rebalance per shard instead of one cascade per
        key.  The batch keeps ``insert_batch``'s all-or-nothing contract:
        a rejected batch (e.g. over a bounded map's capacity) leaves the
        map untouched, overwrites included.  Returns the number of newly
        inserted keys.
        """
        overwrites: dict = {}
        fresh: dict = {}
        for key, value in items:
            if key in self._values:
                overwrites[key] = value
            else:
                fresh[key] = value
        if fresh:
            new_keys = sorted(fresh)
            batch = []
            below = 0
            for key in new_keys:  # ascending keys: counts are monotone
                below = self._count_less(key, below)
                batch.append((below + 1, key))
            result = self._labeler.insert_batch(batch)
            self.costs.record_batch(result.cost, result.count)
            self._values.update(fresh)
        self._values.update(overwrites)
        return len(fresh)

    def __delitem__(self, key) -> None:
        if key not in self._values:
            raise KeyError(key)
        rank = self._labeler.rank_of(key)
        result = self._labeler.delete(rank)
        self.costs.record(result.cost)
        del self._values[key]

    def delete_many(self, keys: Iterable[Hashable]) -> int:
        """Bulk delete: one batched labeler call for all named keys.

        All-or-nothing like :meth:`update_many`: every key must be present
        (``KeyError`` raised before any mutation otherwise).  Duplicate
        keys in the iterable are collapsed.  Returns the number of deleted
        keys.
        """
        targets = sorted(set(keys))
        for key in targets:
            if key not in self._values:
                raise KeyError(key)
        if not targets:
            return 0
        ranks = [self._labeler.rank_of(key) for key in targets]
        result = self._labeler.delete_batch(ranks)
        self.costs.record_batch(result.cost, result.count)
        for key in targets:
            del self._values[key]
        return len(targets)

    # ------------------------------------------------------------------
    # Ordered queries (served through the labeler's read protocol)
    # ------------------------------------------------------------------
    def keys(self) -> list:
        """All keys in sorted order (read off the physical array)."""
        return list(self._labeler.elements())

    def items(self) -> Iterator[tuple]:
        """All items in key order, streamed through a labeler cursor."""
        for key in self._labeler.iter_from(1):
            yield key, self._values[key]

    def select(self, rank: int):
        """The ``rank``-th smallest key (1-based)."""
        return self._labeler.select(rank)

    def rank_of(self, key) -> int:
        """1-based rank of a stored key (``KeyError`` when absent)."""
        if key not in self._values:
            raise KeyError(key)
        return self._labeler.rank_of(key)

    def predecessor(self, key):
        """The largest stored key strictly smaller than ``key`` (or ``None``)."""
        below = self._count_less(key)
        return self._labeler.select(below) if below > 0 else None

    def successor(self, key):
        """The smallest stored key strictly larger than ``key`` (or ``None``)."""
        at_or_below = self._count_le(key)
        if at_or_below < len(self._values):
            return self._labeler.select(at_or_below + 1)
        return None

    def range(self, low=None, high=None, *, limit=None, after=None) -> Iterator[tuple]:
        """Items with ``low <= key <= high`` in key order, streamed lazily.

        One rank search finds the start, then a labeler cursor walks the
        physical array — elements past the consumed prefix are never
        touched, so ``next(map.range(...))`` is ``O(log)`` regardless of
        the interval's width.  ``low``/``high`` of ``None`` leave that end
        unbounded.  ``limit`` caps the number of items; ``after`` starts
        strictly past the given key (the pagination cursor: pass the last
        key of the previous page to resume).
        """
        if after is not None and (low is None or after >= low):
            start_rank = self._count_le(after) + 1
        elif low is not None:
            start_rank = self._count_less(low) + 1
        else:
            start_rank = 1
        emitted = 0
        if limit is not None and limit <= 0:
            return
        for key in self._labeler.iter_from(start_rank):
            if high is not None and key > high:
                return
            yield key, self._values[key]
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def count_range(self, low, high) -> int:
        """Number of stored keys with ``low <= key <= high``.

        Two rank searches — the interval's width never matters, unlike the
        pre-cursor implementation that scanned the shadow key list.
        """
        return max(0, self._count_le(high) - self._count_less(low))

    # ------------------------------------------------------------------
    # Layout inspection
    # ------------------------------------------------------------------
    @property
    def labeler(self) -> ListLabeler:
        return self._labeler

    def label_of(self, key) -> int:
        """The physical slot (label) currently assigned to ``key``."""
        return self._labeler.slot_of(key)

    def check(self) -> None:
        """Validate that the physical layout matches the logical contents."""
        laid_out = list(self._labeler.elements())
        if len(laid_out) != len(self._values) or set(laid_out) != set(self._values):
            raise AssertionError("physical layout diverged from the key set")
        for left, right in zip(laid_out, laid_out[1:]):
            if not left < right:
                raise AssertionError(
                    f"physical key order violated: {left!r} !< {right!r}"
                )

    # ------------------------------------------------------------------
    # Serialization (the durable store's checkpoint unit)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Labeler snapshot plus the ``[key, value]`` entries in key order."""
        return {
            "labeler": self._labeler.snapshot(),
            "entries": [
                [key, self._values[key]] for key in self._labeler.elements()
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot_state` document into this empty map.

        Empty-state round-trips are first-class: restoring the snapshot of
        an empty map yields a map whose iteration paths (:meth:`keys`,
        :meth:`items`, :meth:`range`) and consistency checks all work, and
        which accepts insertions immediately.
        """
        if self._values:
            raise RuntimeError("restore_state requires an empty map")
        self._labeler.restore(state["labeler"])
        entries = state["entries"]
        self._values = {key: value for key, value in entries}
        if list(self._labeler.elements()) != [key for key, _ in entries]:
            raise RuntimeError(
                "restored labeler layout does not match the snapshot's keys"
            )


class DurableMap:
    """A crash-safe :class:`PackedMemoryMap`: the clustered index, persisted.

    Same sorted-mapping interface, but every update is write-ahead logged
    and the physical layout is checkpointed, so reopening the same
    directory recovers the exact map (keys, values, labels, per-shard
    layout) of the last durable operation::

        with DurableMap("/tmp/index") as index:
            index["alice"] = 1
            index.update_many([("bob", 2), ("carol", 3)])
            index.checkpoint()            # snapshot + WAL truncation

        reopened = DurableMap("/tmp/index")   # runs recovery
        assert reopened.keys() == ["alice", "bob", "carol"]

    Constructor keywords are forwarded to
    :class:`repro.store.store.DurableStore` (``algorithm``,
    ``shard_capacity``, ``sync_policy``, ``compact_every``, …).
    """

    def __init__(self, directory, **store_kwargs) -> None:
        # Imported lazily: repro.store builds on this module's
        # PackedMemoryMap, so a top-level import would be circular.
        from repro.store.store import DurableStore

        self._store = DurableStore(directory, **store_kwargs)

    # -- mapping interface ---------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key) -> bool:
        return key in self._store

    def __getitem__(self, key):
        return self._store[key]

    def get(self, key, default=None):
        return self._store.get(key, default)

    def __setitem__(self, key, value) -> None:
        self._store.put(key, value)

    def __delitem__(self, key) -> None:
        self._store.delete(key)

    def update_many(self, items: Iterable[tuple[Hashable, object]]) -> int:
        return self._store.put_many(items)

    def delete_many(self, keys: Iterable[Hashable]) -> int:
        return self._store.delete_many(keys)

    # -- ordered queries (delegated to the in-memory map) --------------
    def keys(self) -> list:
        return self._store.keys()

    def items(self) -> Iterator[tuple]:
        return self._store.items()

    def range(self, low=None, high=None, *, limit=None, after=None) -> Iterator[tuple]:
        return self._store.range(low, high, limit=limit, after=after)

    def count_range(self, low, high) -> int:
        return self._store.count_range(low, high)

    def select(self, rank: int):
        return self._store.map.select(rank)

    def rank_of(self, key) -> int:
        return self._store.map.rank_of(key)

    def predecessor(self, key):
        return self._store.map.predecessor(key)

    def successor(self, key):
        return self._store.map.successor(key)

    def label_of(self, key) -> int:
        return self._store.map.label_of(key)

    # -- durability ----------------------------------------------------
    @property
    def store(self):
        return self._store

    @property
    def recovery(self):
        """The :class:`~repro.store.store.RecoveryReport` of this open."""
        return self._store.recovery

    def checkpoint(self) -> int:
        """Snapshot the exact layout and truncate the WAL behind it."""
        return self._store.compact()

    def check(self) -> None:
        self._store.verify()

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "DurableMap":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
