"""A sorted key→value map laid out by a list-labeling algorithm.

This is the "packed-memory array as a clustered database index" use of list
labeling: keys are kept physically sorted in an array with gaps, so range
scans are sequential reads, while the underlying list-labeling algorithm
bounds how much data movement each update causes.  Any
:class:`repro.core.interface.ListLabeler` can supply the layout — including
the layered structure of Corollary 11, which gives the map bounded update
latency, good expected throughput, and adaptivity to skewed key patterns all
at once.

With ``capacity=None`` the map is **unbounded**: the layout is managed by a
:class:`repro.core.sharded.ShardedLabeler` over fixed-capacity shards, so
the map keeps absorbing keys indefinitely while every update stays local to
one shard.  Bulk ingestion goes through :meth:`PackedMemoryMap.update_many`,
which forwards one pre-batch-rank ``insert_batch`` to the labeler — the
batch engine's merged rebalances make sorted loads far cheaper than
key-at-a-time insertion.

:class:`DurableMap` is the same clustered index made crash-safe: it
delegates to a :class:`repro.store.store.DurableStore`, so every update is
write-ahead logged before it is applied, checkpoints capture the exact
per-shard physical layout, and reopening the map recovers the state of the
last durable operation (see :mod:`repro.store`).
"""

from __future__ import annotations

import bisect
import heapq
from typing import Callable, Hashable, Iterable, Iterator

from repro.core.cost import CostTracker
from repro.core.interface import ListLabeler
from repro.core.layered import make_corollary11_labeler
from repro.core.sharded import ShardedLabeler


class PackedMemoryMap:
    """Sorted mapping with list-labeling-managed physical layout.

    Parameters
    ----------
    capacity:
        Maximum number of keys, or ``None`` for an unbounded map backed by
        the sharding engine.
    labeler_factory:
        Builds the underlying list labeler.  For a bounded map it receives
        ``capacity`` and defaults to the Corollary 11 layered structure;
        for an unbounded map it receives the *shard* capacity and serves as
        the shard factory (default: the Corollary 11 structure per shard).
    shard_capacity:
        Shard size of the unbounded map (ignored when ``capacity`` is set).
    """

    def __init__(
        self,
        capacity: int | None = None,
        labeler_factory: Callable[[int], ListLabeler] | None = None,
        *,
        shard_capacity: int = 128,
    ) -> None:
        if labeler_factory is None:
            labeler_factory = lambda cap: make_corollary11_labeler(cap)
        if capacity is None:
            self._labeler: ListLabeler = ShardedLabeler(
                labeler_factory, shard_capacity=shard_capacity
            )
        else:
            self._labeler = labeler_factory(capacity)
        self._keys: list = []
        self._values: dict = {}
        #: Element-move cost of every update, in the paper's cost model.
        self.costs = CostTracker()

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._values

    def __getitem__(self, key):
        return self._values[key]

    def get(self, key, default=None):
        return self._values.get(key, default)

    def __setitem__(self, key, value) -> None:
        if key in self._values:
            self._values[key] = value
            return
        rank = bisect.bisect_left(self._keys, key) + 1
        result = self._labeler.insert(rank, key)
        self.costs.record(result.cost)
        self._keys.insert(rank - 1, key)
        self._values[key] = value

    def update_many(self, items: Iterable[tuple[Hashable, object]]) -> int:
        """Bulk upsert: one batched labeler call for all new keys.

        Existing keys only have their values replaced (no layout change).
        New keys are inserted through ``insert_batch`` with pre-batch ranks
        computed against the current key sequence, so a sorted ingest run
        costs one merged rebalance per shard instead of one cascade per
        key.  The batch keeps ``insert_batch``'s all-or-nothing contract:
        a rejected batch (e.g. over a bounded map's capacity) leaves the
        map untouched, overwrites included.  Returns the number of newly
        inserted keys.
        """
        overwrites: dict = {}
        fresh: dict = {}
        for key, value in items:
            if key in self._values:
                overwrites[key] = value
            else:
                fresh[key] = value
        if fresh:
            new_keys = sorted(fresh)
            batch = [
                (bisect.bisect_left(self._keys, key) + 1, key) for key in new_keys
            ]
            result = self._labeler.insert_batch(batch)
            self.costs.record_batch(result.cost, result.count)
            self._keys = list(heapq.merge(self._keys, new_keys))
            self._values.update(fresh)
        self._values.update(overwrites)
        return len(fresh)

    def __delitem__(self, key) -> None:
        if key not in self._values:
            raise KeyError(key)
        rank = bisect.bisect_left(self._keys, key) + 1
        result = self._labeler.delete(rank)
        self.costs.record(result.cost)
        self._keys.pop(rank - 1)
        del self._values[key]

    def delete_many(self, keys: Iterable[Hashable]) -> int:
        """Bulk delete: one batched labeler call for all named keys.

        All-or-nothing like :meth:`update_many`: every key must be present
        (``KeyError`` raised before any mutation otherwise).  Duplicate
        keys in the iterable are collapsed.  Returns the number of deleted
        keys.
        """
        targets = sorted(set(keys))
        for key in targets:
            if key not in self._values:
                raise KeyError(key)
        if not targets:
            return 0
        ranks = [bisect.bisect_left(self._keys, key) + 1 for key in targets]
        result = self._labeler.delete_batch(ranks)
        self.costs.record_batch(result.cost, result.count)
        for rank in reversed(ranks):
            self._keys.pop(rank - 1)
        for key in targets:
            del self._values[key]
        return len(targets)

    # ------------------------------------------------------------------
    # Ordered queries
    # ------------------------------------------------------------------
    def keys(self) -> list:
        """All keys in sorted order (read off the physical array)."""
        return list(self._labeler.elements())

    def items(self) -> Iterator[tuple]:
        for key in self._labeler.elements():
            yield key, self._values[key]

    def predecessor(self, key):
        """The largest stored key strictly smaller than ``key`` (or ``None``)."""
        index = bisect.bisect_left(self._keys, key)
        return self._keys[index - 1] if index > 0 else None

    def successor(self, key):
        """The smallest stored key strictly larger than ``key`` (or ``None``)."""
        index = bisect.bisect_right(self._keys, key)
        return self._keys[index] if index < len(self._keys) else None

    def range(self, low, high) -> Iterator[tuple]:
        """Items with ``low <= key <= high`` in key order (a sequential scan)."""
        start = bisect.bisect_left(self._keys, low)
        for key in self._keys[start:]:
            if key > high:
                return
            yield key, self._values[key]

    # ------------------------------------------------------------------
    # Layout inspection
    # ------------------------------------------------------------------
    @property
    def labeler(self) -> ListLabeler:
        return self._labeler

    def label_of(self, key) -> int:
        """The physical slot (label) currently assigned to ``key``."""
        return self._labeler.slot_of(key)

    def check(self) -> None:
        """Validate that the physical layout matches the logical contents."""
        if list(self._labeler.elements()) != self._keys:
            raise AssertionError("physical layout diverged from the key set")

    # ------------------------------------------------------------------
    # Serialization (the durable store's checkpoint unit)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Labeler snapshot plus the ``[key, value]`` entries in key order."""
        return {
            "labeler": self._labeler.snapshot(),
            "entries": [[key, self._values[key]] for key in self._keys],
        }

    def restore_state(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot_state` document into this empty map.

        Empty-state round-trips are first-class: restoring the snapshot of
        an empty map yields a map whose iteration paths (:meth:`keys`,
        :meth:`items`, :meth:`range`) and consistency checks all work, and
        which accepts insertions immediately.
        """
        if self._keys:
            raise RuntimeError("restore_state requires an empty map")
        self._labeler.restore(state["labeler"])
        entries = state["entries"]
        self._keys = [key for key, _ in entries]
        self._values = {key: value for key, value in entries}
        if list(self._labeler.elements()) != self._keys:
            raise RuntimeError(
                "restored labeler layout does not match the snapshot's keys"
            )


class DurableMap:
    """A crash-safe :class:`PackedMemoryMap`: the clustered index, persisted.

    Same sorted-mapping interface, but every update is write-ahead logged
    and the physical layout is checkpointed, so reopening the same
    directory recovers the exact map (keys, values, labels, per-shard
    layout) of the last durable operation::

        with DurableMap("/tmp/index") as index:
            index["alice"] = 1
            index.update_many([("bob", 2), ("carol", 3)])
            index.checkpoint()            # snapshot + WAL truncation

        reopened = DurableMap("/tmp/index")   # runs recovery
        assert reopened.keys() == ["alice", "bob", "carol"]

    Constructor keywords are forwarded to
    :class:`repro.store.store.DurableStore` (``algorithm``,
    ``shard_capacity``, ``sync_policy``, ``compact_every``, …).
    """

    def __init__(self, directory, **store_kwargs) -> None:
        # Imported lazily: repro.store builds on this module's
        # PackedMemoryMap, so a top-level import would be circular.
        from repro.store.store import DurableStore

        self._store = DurableStore(directory, **store_kwargs)

    # -- mapping interface ---------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key) -> bool:
        return key in self._store

    def __getitem__(self, key):
        return self._store[key]

    def get(self, key, default=None):
        return self._store.get(key, default)

    def __setitem__(self, key, value) -> None:
        self._store.put(key, value)

    def __delitem__(self, key) -> None:
        self._store.delete(key)

    def update_many(self, items: Iterable[tuple[Hashable, object]]) -> int:
        return self._store.put_many(items)

    def delete_many(self, keys: Iterable[Hashable]) -> int:
        return self._store.delete_many(keys)

    # -- ordered queries (delegated to the in-memory map) --------------
    def keys(self) -> list:
        return self._store.keys()

    def items(self) -> Iterator[tuple]:
        return self._store.items()

    def range(self, low, high) -> Iterator[tuple]:
        return self._store.range(low, high)

    def predecessor(self, key):
        return self._store.map.predecessor(key)

    def successor(self, key):
        return self._store.map.successor(key)

    def label_of(self, key) -> int:
        return self._store.map.label_of(key)

    # -- durability ----------------------------------------------------
    @property
    def store(self):
        return self._store

    @property
    def recovery(self):
        """The :class:`~repro.store.store.RecoveryReport` of this open."""
        return self._store.recovery

    def checkpoint(self) -> int:
        """Snapshot the exact layout and truncate the WAL behind it."""
        return self._store.compact()

    def check(self) -> None:
        self._store.verify()

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "DurableMap":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
