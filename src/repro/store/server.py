"""Asyncio front-end serving a :class:`~repro.store.service.StoreService`.

:class:`StoreServer` listens on a TCP socket and speaks the
length-prefixed JSON protocol of :mod:`repro.store.protocol`.  Every
request dispatches the matching ``StoreService`` call on a worker thread
(``asyncio.to_thread``), so the event loop never blocks on the service's
locks and concurrent connections genuinely overlap on the striped
read-write locking the service already provides — the server adds
networking, not a new concurrency model.

**Replication.**  A ``REPLICATE`` request flips the connection into a
push stream.  The server decides how the replica starts:

* ``after >= durable_horizon`` — the log still holds everything the
  replica is missing: stream WAL frames with ``lsn > after``, verbatim;
* ``after < durable_horizon`` — compaction already dropped that tail:
  send the newest **snapshot** (manifest + shard files, checksums and
  all), then stream frames past its LSN.

Frames are shipped as the exact bytes the primary's WAL holds (validated
through the same ``_parse_frame`` recovery uses, so nothing a recovery
would reject is ever shipped), which is what makes a replica's state
byte-identical by construction.  Live tails push immediately — a WAL
commit listener wakes every replica feeder — and idle connections get
heartbeats carrying the primary's last LSN, which is how replicas measure
their lag.  Replicas acknowledge applied LSNs upstream; the smallest
acknowledged LSN across connected replicas becomes the service's
**compaction retention floor**, so a live replica's catch-up stream never
loses its tail to a concurrent compaction (a *disconnected* replica holds
nothing hostage — it re-bootstraps from a snapshot).

:class:`ServerThread` runs the whole event loop on a daemon thread for
synchronous callers (tests, benchmarks, the CLI smoke command).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable

from repro import obs
from repro.store.protocol import (
    OversizedFrameError,
    ProtocolError,
    read_message,
    write_message,
)
from repro.store.service import StoreService

#: Frames per ``frames`` push message (bounds message size on big tails).
SHIP_CHUNK = 256

#: Idle heartbeat cadence for replication streams, seconds.
HEARTBEAT_SECONDS = 0.2

#: Largest page a single RANGE / SCAN_PAGES request may ask for.
PAGE_SIZE_LIMIT = 4096

_MISSING = object()


class StoreServer:
    """Serve one :class:`StoreService` over TCP.

    ``read_only=True`` (a replica serving read traffic) rejects every
    mutating command with the ``read_only`` error code; flipping the
    attribute to ``False`` is how a promotion opens the write path.
    """

    def __init__(
        self,
        service: StoreService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_only: bool = False,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self.read_only = read_only
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Per-replica-connection state: {id: {"event", "acked"}}.
        self._replicas: dict[int, dict] = {}
        self._next_replica_id = 0
        self._commit_listener: Callable[[int], None] | None = None
        self._registry = service.registry
        self._obs_connections = self._registry.counter("server.connections")
        self._obs_requests = self._registry.counter("server.requests")
        self._obs_errors: dict[str, object] = {}

    # ------------------------------------------------------------------
    @property
    def service(self) -> StoreService:
        return self._service

    @property
    def registry(self):
        """The metrics registry this server records into."""
        return self._registry

    def _count_error(self, family: str):
        """Bump (and cache) the counter for one error family."""
        counter = self._obs_errors.get(family)
        if counter is None:
            counter = self._registry.counter(f"server.errors.{family}")
            self._obs_errors[family] = counter
        counter.inc()
        return counter

    def error_counts(self) -> dict[str, int]:
        """Per-family error counts observed so far (all zero when obs is off)."""
        return {
            family: counter.value
            for family, counter in sorted(self._obs_errors.items())
        }

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def replica_count(self) -> int:
        """Connected replication streams."""
        return len(self._replicas)

    def replication_floor(self) -> int | None:
        """Smallest LSN acknowledged by every connected replica."""
        acks = [entry["acked"] for entry in self._replicas.values()]
        return min(acks) if acks else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        loop = self._loop

        def on_commit(lsn: int) -> None:
            # Runs on whatever thread appended the frame; hop into the
            # loop to wake every replica feeder.
            loop.call_soon_threadsafe(self._wake_replicas)

        self._commit_listener = on_commit
        self._service.add_commit_listener(on_commit)
        self._service.set_compaction_retainer(self.replication_floor)

    async def stop(self) -> None:
        if self._server is None:
            return
        if self._commit_listener is not None:
            self._service.remove_commit_listener(self._commit_listener)
            self._commit_listener = None
        self._service.set_compaction_retainer(None)
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        self._wake_replicas()

    def _wake_replicas(self) -> None:
        for entry in self._replicas.values():
            entry["event"].set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._obs_connections.inc()
        try:
            while True:
                try:
                    request = await read_message(reader)
                except OversizedFrameError:
                    self._count_error("oversized_frame")
                    break
                except ProtocolError:
                    self._count_error("protocol")
                    break
                if request is None:
                    break
                cmd = request.get("cmd")
                if cmd == "REPLICATE":
                    await self._serve_replication(request, reader, writer)
                    break
                response = await self._dispatch(cmd, request)
                await write_message(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Loop shutdown cancels handler tasks mid-wait_closed; the
                # connection is already closed, so ending normally keeps
                # asyncio's stream callbacks from logging the cancellation.
                pass

    async def _dispatch(self, cmd, request: dict) -> dict:
        self._obs_requests.inc()
        server_handler = _SERVER_HANDLERS.get(cmd)
        if server_handler is not None:
            try:
                return await asyncio.to_thread(server_handler, self, request)
            except Exception as error:
                self._count_error("server_error")
                return _error("server_error", f"{type(error).__name__}: {error}")
        handler = _HANDLERS.get(cmd)
        if handler is None:
            self._count_error("bad_command")
            return _error("bad_request", f"unknown command {cmd!r}")
        if cmd in _MUTATING and self.read_only:
            self._count_error("read_only")
            return _error(
                "read_only", "this server is a replica; writes go to the primary"
            )
        try:
            return await asyncio.to_thread(handler, self._service, request)
        except KeyError as error:
            self._count_error("not_found")
            return _error("not_found", f"key not found: {error.args[0]!r}")
        except (TypeError, ValueError) as error:
            self._count_error("bad_request")
            return _error("bad_request", str(error))
        except Exception as error:  # the store's own integrity errors
            self._count_error("server_error")
            return _error("server_error", f"{type(error).__name__}: {error}")

    # ------------------------------------------------------------------
    # Replication stream
    # ------------------------------------------------------------------
    async def _serve_replication(self, request, reader, writer) -> None:
        store = self._service.store
        after = int(request.get("after", -1))
        if after > store.last_lsn:
            await write_message(
                writer,
                _error(
                    "bad_request",
                    f"replica is ahead of this primary "
                    f"(after={after} > last_lsn={store.last_lsn})",
                ),
            )
            return

        replica_id = self._next_replica_id
        self._next_replica_id += 1
        entry = {"event": asyncio.Event(), "acked": max(after, 0)}
        # Registered before any horizon decision: from here on compaction
        # retains frames past the replica's cursor.
        self._replicas[replica_id] = entry
        try:
            horizon = await asyncio.to_thread(
                lambda: self._service.durable_horizon
            )
            bootstrap = None
            if after < horizon or after < 0:
                # The log alone cannot (or, for a brand-new replica with
                # no config, should not) carry the replica to the present:
                # bootstrap from the newest checkpoint.
                lsn, files = await asyncio.to_thread(
                    self._service.snapshot_archive
                )
                bootstrap = {"kind": "snapshot", "lsn": lsn, "files": files}
                start = max(after, lsn)
            else:
                start = after
            entry["acked"] = max(entry["acked"], start)
            await write_message(
                writer,
                {
                    "ok": True,
                    "mode": "snapshot" if bootstrap is not None else "frames",
                    "algorithm": store.algorithm,
                    "shard_capacity": store.shard_capacity,
                    "start_lsn": start,
                    "primary_lsn": store.last_lsn,
                },
            )
            if bootstrap is not None:
                await write_message(writer, bootstrap)
                start = bootstrap["lsn"]

            # The ACK reader doubles as the disconnect detector: the
            # moment the replica's socket EOFs, the race completes and
            # the feeder is cancelled — so a dead replica stops pinning
            # the compaction retention floor immediately, not at the
            # next failed heartbeat write.
            ack_task = asyncio.create_task(self._consume_acks(reader, entry))
            feed_task = asyncio.create_task(
                self._feed_frames(writer, entry, start)
            )
            await asyncio.wait(
                {ack_task, feed_task}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in (ack_task, feed_task):
                task.cancel()
            # Retrieve both outcomes (gather, not result(), so a failure
            # in one never leaves the other's exception unretrieved).
            outcomes = await asyncio.gather(
                ack_task, feed_task, return_exceptions=True
            )
            for outcome in outcomes:
                if isinstance(outcome, BaseException) and not isinstance(
                    outcome, asyncio.CancelledError
                ):
                    raise outcome
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            self._replicas.pop(replica_id, None)

    async def _consume_acks(self, reader, entry: dict) -> None:
        while True:
            message = await read_message(reader)
            if message is None:
                return
            if message.get("cmd") == "ACK":
                entry["acked"] = max(entry["acked"], int(message["lsn"]))

    async def _feed_frames(self, writer, entry: dict, start: int) -> None:
        service = self._service
        cursor = start
        offset = 0
        epoch: int | None = None
        while self._server is not None:
            frames, offset, epoch = await asyncio.to_thread(
                service.ship_frames, cursor, offset=offset, epoch=epoch
            )
            if frames and frames[0][0] != cursor + 1:
                # Compaction won a race and dropped the replica's tail
                # (possible only in the window before its first ACK):
                # tell it to reconnect — the handshake will send a
                # snapshot covering the gap.
                await write_message(writer, {"kind": "restart"})
                return
            if frames:
                for index in range(0, len(frames), SHIP_CHUNK):
                    chunk = frames[index : index + SHIP_CHUNK]
                    await write_message(
                        writer,
                        {
                            "kind": "frames",
                            "frames": [line for _, line in chunk],
                            "primary_lsn": service.store.last_lsn,
                        },
                    )
                cursor = frames[-1][0]
                continue
            entry["event"].clear()
            try:
                await asyncio.wait_for(
                    entry["event"].wait(), timeout=HEARTBEAT_SECONDS
                )
            except asyncio.TimeoutError:
                await write_message(
                    writer,
                    {
                        "kind": "heartbeat",
                        "primary_lsn": service.store.last_lsn,
                    },
                )


# ---------------------------------------------------------------------------
# Request handlers (run on worker threads via asyncio.to_thread)
# ---------------------------------------------------------------------------
def _error(code: str, message: str) -> dict:
    return {"ok": False, "code": code, "error": message}


def _page_size(request: dict, key: str, default: int | None = None) -> int | None:
    value = request.get(key, default)
    if value is None:
        return None
    value = int(value)
    if value < 1 or value > PAGE_SIZE_LIMIT:
        raise ValueError(
            f"{key} must be between 1 and {PAGE_SIZE_LIMIT}, got {value}"
        )
    return value


def _handle_ping(service: StoreService, request: dict) -> dict:
    return {"ok": True, "last_lsn": service.store.last_lsn}


def _handle_get(service: StoreService, request: dict) -> dict:
    value = service.get(request["key"], _MISSING)
    if value is _MISSING:
        return {"ok": True, "found": False, "value": None}
    return {"ok": True, "found": True, "value": value}


def _handle_contains(service: StoreService, request: dict) -> dict:
    return {"ok": True, "contains": service.contains(request["key"])}


def _handle_put(service: StoreService, request: dict) -> dict:
    service.put(request["key"], request.get("value"))
    return {"ok": True}


def _handle_delete(service: StoreService, request: dict) -> dict:
    service.delete(request["key"])
    return {"ok": True}


def _handle_put_many(service: StoreService, request: dict) -> dict:
    items = [(key, value) for key, value in request.get("items", [])]
    return {"ok": True, "applied": service.put_many(items)}


def _handle_delete_many(service: StoreService, request: dict) -> dict:
    return {"ok": True, "applied": service.delete_many(request.get("keys", []))}


def _handle_range(service: StoreService, request: dict) -> dict:
    items = service.range_scan(
        request.get("low"),
        request.get("high"),
        limit=_page_size(request, "limit"),
        after=request.get("after"),
    )
    return {"ok": True, "items": [[key, value] for key, value in items]}


def _handle_count_range(service: StoreService, request: dict) -> dict:
    return {
        "ok": True,
        "count": service.count_range(request.get("low"), request.get("high")),
    }


def _handle_scan_pages(service: StoreService, request: dict) -> dict:
    """One page per request; the returned cursor resumes the scan.

    The page materializes under the service's structure lock exactly like
    :meth:`StoreService.scan_pages` holds it — per page — so a slow
    client paging a huge interval never pins writers out between its
    requests.
    """
    page_size = _page_size(request, "page_size", 256)
    page = service.range_scan(
        request.get("low"),
        request.get("high"),
        limit=page_size,
        after=request.get("after"),
    )
    cursor = page[-1][0] if len(page) == page_size else None
    return {
        "ok": True,
        "page": [[key, value] for key, value in page],
        "after": cursor,
    }


def _handle_size(service: StoreService, request: dict) -> dict:
    return {"ok": True, "size": service.size()}


def _handle_verify(service: StoreService, request: dict) -> dict:
    return {"ok": True, "report": service.verify()}


def _handle_stats(server: "StoreServer", request: dict) -> dict:
    """Enriched STATS: durability, compactor health, replication, shards.

    Runs as a *server* handler (not a service handler) so it can read the
    replica ack table and error counters only the server holds.
    """
    service = server.service
    store = service.store
    error = service.last_compactor_error
    acks = sorted(entry["acked"] for entry in server._replicas.values())
    return {
        "ok": True,
        "last_lsn": store.last_lsn,
        "durable_horizon": store.durable_horizon,
        "wal_frames_since_snapshot": store.wal_frames_since_snapshot,
        "latency": service.latency_statistics(),
        "compactor_alive": service.compactor_alive,
        "last_compactor_error": (
            f"{type(error).__name__}: {error}" if error is not None else None
        ),
        "replica_count": server.replica_count,
        "replica_acks": acks,
        "replication_floor": server.replication_floor(),
        "shard_statistics": service.shard_statistics(),
        "physical_backend": service.physical_backend,
        "error_counts": server.error_counts(),
    }


def _handle_metrics(server: "StoreServer", request: dict) -> dict:
    """Whole-process metrics: snapshot, Prometheus text, slow-op traces."""
    registry = server.registry
    snapshot = registry.snapshot()
    return {
        "ok": True,
        "enabled": registry.enabled,
        "metrics": snapshot,
        "exposition": obs.render_prometheus(snapshot),
        "slow_ops": obs.get_tracer().slow_ops(),
    }


_HANDLERS: dict[str, Callable[[StoreService, dict], dict]] = {
    "PING": _handle_ping,
    "GET": _handle_get,
    "CONTAINS": _handle_contains,
    "PUT": _handle_put,
    "DELETE": _handle_delete,
    "PUT_MANY": _handle_put_many,
    "DELETE_MANY": _handle_delete_many,
    "RANGE": _handle_range,
    "COUNT_RANGE": _handle_count_range,
    "SCAN_PAGES": _handle_scan_pages,
    "SIZE": _handle_size,
    "VERIFY": _handle_verify,
}

#: Handlers that need the *server* (replica acks, error counters, the
#: registry) rather than just the service; checked before ``_HANDLERS``.
_SERVER_HANDLERS: dict[str, Callable[["StoreServer", dict], dict]] = {
    "STATS": _handle_stats,
    "METRICS": _handle_metrics,
}

_MUTATING = frozenset({"PUT", "DELETE", "PUT_MANY", "DELETE_MANY"})


# ---------------------------------------------------------------------------
# Synchronous wrapper: the event loop on a daemon thread
# ---------------------------------------------------------------------------
class ServerThread:
    """Run a :class:`StoreServer` on a background event-loop thread.

    The synchronous entry point tests, benchmarks and the CLI use::

        with ServerThread(service) as server:
            client = StoreClient(*server.address)
            ...

    ``address`` blocks until the socket is bound; exiting the context
    stops the server and joins the thread.
    """

    def __init__(
        self,
        service: StoreService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_only: bool = False,
    ) -> None:
        self.server = StoreServer(service, host, port, read_only=read_only)
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-store-server", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as error:
                self._failure = error
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.server.stop()

        asyncio.run(main())

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise self._failure
        return self

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def replica_count(self) -> int:
        return self.server.replica_count

    @property
    def read_only(self) -> bool:
        return self.server.read_only

    @read_only.setter
    def read_only(self, value: bool) -> None:
        self.server.read_only = value

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
