"""Blocking client for the networked store.

:class:`StoreClient` speaks the length-prefixed protocol of
:mod:`repro.store.protocol` over one TCP connection and mirrors the
:class:`~repro.store.service.StoreService` API: ``get`` / ``put`` /
``delete`` / ``put_many`` / ``delete_many`` / ``range_scan`` /
``count_range`` / ``scan_pages`` / ``size`` / ``contains`` / ``verify`` /
``stats`` / ``metrics``.  Errors come back typed — a missing key raises ``KeyError``
like the local store, a write against a replica raises
:class:`ReadOnlyError` — so code written against the service runs against
the wire unchanged.

One client is one connection and is **not** thread-safe; concurrent
benchmark workers each open their own (that is the point of the
multi-client benchmark — the server interleaves them on its striped
locks, not the client).
"""

from __future__ import annotations

import socket
from typing import Hashable, Iterable, Iterator

from repro.store.protocol import ProtocolError, recv_message, send_message

_MISSING = object()


class StoreClientError(RuntimeError):
    """A request the server rejected; ``code`` carries the error class."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ReadOnlyError(StoreClientError):
    """A mutation sent to a replica (writes go to the primary)."""


class StoreClient:
    """One blocking connection to a :class:`~repro.store.server.StoreServer`."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)

    # ------------------------------------------------------------------
    def _call(self, cmd: str, **fields) -> dict:
        request = {"cmd": cmd, **fields}
        send_message(self._sock, request)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if not response.get("ok"):
            code = response.get("code", "server_error")
            message = response.get("error", "request failed")
            if code == "read_only":
                raise ReadOnlyError(code, message)
            if code == "not_found":
                raise KeyError(message)
            raise StoreClientError(code, message)
        return response

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def ping(self) -> int:
        """Round-trip; returns the server's last durable LSN."""
        return self._call("PING")["last_lsn"]

    def get(self, key, default=_MISSING):
        response = self._call("GET", key=key)
        if not response["found"]:
            if default is _MISSING:
                raise KeyError(key)
            return default
        return response["value"]

    def contains(self, key) -> bool:
        return self._call("CONTAINS", key=key)["contains"]

    __contains__ = contains

    def put(self, key, value) -> None:
        self._call("PUT", key=key, value=value)

    __setitem__ = put

    def delete(self, key) -> None:
        self._call("DELETE", key=key)

    __delitem__ = delete

    def put_many(self, items: Iterable[tuple[Hashable, object]]) -> int:
        payload = [[key, value] for key, value in items]
        return self._call("PUT_MANY", items=payload)["applied"]

    def delete_many(self, keys: Iterable[Hashable]) -> int:
        return self._call("DELETE_MANY", keys=list(keys))["applied"]

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def range_scan(self, low=None, high=None, *, limit=None, after=None) -> list[tuple]:
        response = self._call(
            "RANGE", low=low, high=high, limit=limit, after=after
        )
        return [(key, value) for key, value in response["items"]]

    def count_range(self, low, high) -> int:
        return self._call("COUNT_RANGE", low=low, high=high)["count"]

    def scan_pages(
        self, low=None, high=None, *, page_size: int = 256
    ) -> Iterator[list[tuple]]:
        """Page the interval; one request per page, cursor-resumed —
        the same contract as :meth:`StoreService.scan_pages` (writers on
        other connections interleave between pages)."""
        after = None
        while True:
            response = self._call(
                "SCAN_PAGES",
                low=low,
                high=high,
                page_size=page_size,
                after=after,
            )
            page = [(key, value) for key, value in response["page"]]
            if page:
                yield page
            after = response["after"]
            if after is None:
                return

    def size(self) -> int:
        return self._call("SIZE")["size"]

    __len__ = size

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def verify(self) -> dict:
        """Run the server-side integrity check; returns its report."""
        return self._call("VERIFY")["report"]

    def stats(self) -> dict:
        """Durability, compactor, replication and shard statistics."""
        return self._call("STATS")

    def metrics(self) -> dict:
        """The server's metrics snapshot.

        Returns the METRICS response: ``enabled`` (whether a live
        registry is installed), ``metrics`` (the structured snapshot),
        ``exposition`` (Prometheus text format) and ``slow_ops`` (the
        captured slow-operation span trees)."""
        return self._call("METRICS")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "StoreClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
