"""Tagged JSON codec for store keys, values and labeler snapshots.

Everything the durable store persists — WAL frames, snapshot manifests,
per-shard labeler states — is JSON on disk, but the in-memory objects are
richer than JSON: keys are often :class:`fractions.Fraction` (the exact
rationals the test drivers synthesize), labeler snapshots contain tuples
(RNG states, task queues) and integer-keyed dicts.  The codec walks a value
recursively and wraps every non-JSON leaf in a single-key tag object:

==========================  ==========================================
in-memory value             encoded form
==========================  ==========================================
``str/int/bool/None``       itself
``float``                   itself (``repr`` round-trips exactly)
``Fraction(n, d)``          ``{"$frac": [str(n), str(d)]}``
``tuple(...)``              ``{"$tuple": [...]}``
``bytes``                   ``{"$bytes": "<hex>"}``
``dict`` (str keys)         ``{...}`` (keys starting with ``$`` escaped
                            as ``$$``)
``dict`` (other keys)       ``{"$dict": [[k, v], ...]}``
``list``                    ``[...]``
==========================  ==========================================

The encoding is self-describing, so :func:`decode` needs no schema, and it
is canonical (``sort_keys`` + fixed separators in :func:`dumps`), so the
CRC the WAL stamps over a frame is stable across processes.
"""

from __future__ import annotations

import json
import zlib
from fractions import Fraction


def encode(value):
    """Encode ``value`` into a JSON-representable structure."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if isinstance(value, Fraction):
        return {"$frac": [str(value.numerator), str(value.denominator)]}
    if isinstance(value, tuple):
        return {"$tuple": [encode(item) for item in value]}
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            return {
                ("$$" + key[1:] if key.startswith("$") else key): encode(item)
                for key, item in value.items()
            }
        return {"$dict": [[encode(key), encode(item)] for key, item in value.items()]}
    raise TypeError(f"cannot encode {type(value).__name__} value {value!r}")


def decode(value):
    """Invert :func:`encode`."""
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            tag, payload = next(iter(value.items()))
            if tag == "$frac":
                return Fraction(int(payload[0]), int(payload[1]))
            if tag == "$tuple":
                return tuple(decode(item) for item in payload)
            if tag == "$bytes":
                return bytes.fromhex(payload)
            if tag == "$dict":
                return {decode(key): decode(item) for key, item in payload}
        return {
            (key[1:] if key.startswith("$$") else key): decode(item)
            for key, item in value.items()
        }
    return value


def dumps(value) -> str:
    """Canonical one-line JSON of an encoded value (stable across runs)."""
    return json.dumps(encode(value), sort_keys=True, separators=(",", ":"))


def loads(text: str):
    return decode(json.loads(text))


def checksum(text: str) -> int:
    """CRC32 stamped over WAL frames and snapshot files."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
