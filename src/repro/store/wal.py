"""Append-only write-ahead log with torn-tail recovery.

The WAL is a JSONL file: one *frame* per line, written before the in-memory
structure is mutated.  A frame is a tagged-codec JSON object::

    {"v": 1, "lsn": 17, "op": "put", "key": ..., "value": ..., "crc": 912...}

* ``v`` — the WAL schema version; a version the reader does not understand
  aborts the open (no silent misinterpretation of old logs).
* ``lsn`` — log sequence number, strictly ``previous + 1``.  A gap or
  repeat marks the frame (and everything after it) as untrusted.
* ``crc`` — CRC32 over the frame's canonical JSON with the ``crc`` field
  removed.  A mismatch means the line was half-written or bit-rotted.

**Batch atomicity.**  A batched mutation (``put_many`` / ``delete_many``)
is one frame, so recovery applies it entirely or — when the crash landed
mid-write — not at all.  There is no partially-applied batch state on disk.

**Fsync barriers.**  ``sync_policy`` controls durability: ``"always"``
fsyncs after every append (every acknowledged op survives a power cut),
``"batch"`` fsyncs only on explicit :meth:`sync` / :meth:`close` (group
commit), ``"never"`` leaves flushing to the OS (tests, benchmarks).

**Torn-tail detection.**  :meth:`WriteAheadLog.open` scans the file frame
by frame; at the first unparsable / checksum-failing / out-of-sequence
line it truncates the file back to the last good frame boundary and
reports how many bytes were dropped.  This is the standard ARIES-style
contract: the log prefix up to the tear is exactly the set of recoverable
operations.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.store import codec

#: Version stamped into every frame; bumped on incompatible layout changes.
WAL_SCHEMA_VERSION = 1


class WALError(RuntimeError):
    """Raised for unrecoverable log conditions (e.g. an unknown version)."""


@dataclass
class WALTruncateReport:
    """What :meth:`WriteAheadLog.truncate_through` kept and dropped.

    ``suspect_frames``/``suspect_bytes`` count retained-range lines that
    *failed* re-validation (corrupt, wrong version, out of sequence) and
    were therefore discarded along with everything after them;
    ``suspect_reason`` says why.  A clean compaction has
    ``suspect_reason is None``.
    """

    retained_frames: int = 0
    suspect_frames: int = 0
    suspect_bytes: int = 0
    suspect_reason: str | None = None


@dataclass
class WALOpenReport:
    """What :meth:`WriteAheadLog.open` found on disk."""

    frames: list[dict] = field(default_factory=list)
    #: Bytes dropped from the tail (0 when the log was clean).
    truncated_bytes: int = 0
    #: Human-readable reason for the truncation, when one happened.
    truncation_reason: str | None = None

    @property
    def last_lsn(self) -> int:
        return self.frames[-1]["lsn"] if self.frames else 0


class WriteAheadLog:
    """One append-only JSONL log file plus its durability policy."""

    # Inert class-level defaults: instances built without __init__ (crash
    # tests hand-assembling a WAL via __new__) fall back to no-op
    # instruments instead of AttributeError-ing on the hot path.
    _obs_frames = _obs_bytes = _obs_fsyncs = obs.NULL_REGISTRY.counter("null")
    _obs_truncations = _obs_torn_bytes = _obs_rollbacks = _obs_frames

    def __init__(
        self, path: str | Path, *, sync_policy: str = "always", registry=None
    ) -> None:
        if sync_policy not in ("always", "batch", "never"):
            raise ValueError(f"unknown sync policy {sync_policy!r}")
        self.path = Path(path)
        self.sync_policy = sync_policy
        self._file = None
        self._next_lsn = 1
        self._listeners: list = []
        self._truncate_epoch = 0
        reg = obs.resolve(registry)
        self._obs_frames = reg.counter("wal.frames_appended")
        self._obs_bytes = reg.counter("wal.bytes_appended")
        # Fsyncs keyed by the policy that caused them, so an exposition
        # shows at a glance which durability mode the process is paying for.
        self._obs_fsyncs = reg.counter(f"wal.fsyncs.{sync_policy}")
        self._obs_truncations = reg.counter("wal.truncations")
        self._obs_torn_bytes = reg.counter("wal.torn_tail_bytes")
        self._obs_rollbacks = reg.counter("wal.rollbacks")

    # ------------------------------------------------------------------
    # Opening and torn-tail recovery
    # ------------------------------------------------------------------
    def open(self) -> WALOpenReport:
        """Scan the log, truncate any torn tail, and position for appends."""
        report = WALOpenReport()
        if self.path.exists():
            report = self._scan_and_truncate()
        self._file = open(self.path, "a", encoding="utf-8")
        self._next_lsn = report.last_lsn + 1
        return report

    def _scan_and_truncate(self) -> WALOpenReport:
        report = WALOpenReport()
        raw = self.path.read_bytes()
        good_end = 0
        # Compaction drops a prefix, so the first frame anchors the
        # sequence; every later frame must follow it without gaps.
        expected_lsn: int | None = None
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                report.truncation_reason = "unterminated final frame"
                break
            line = raw[offset : newline + 1]
            frame = self._parse_frame(line, expected_lsn, report)
            if frame is None:
                break
            report.frames.append(frame)
            good_end = newline + 1
            offset = newline + 1
            expected_lsn = frame["lsn"] + 1
        else:
            good_end = len(raw)
        if good_end < len(raw):
            report.truncated_bytes = len(raw) - good_end
            self._obs_torn_bytes.inc(report.truncated_bytes)
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return report

    def _parse_frame(
        self, line: bytes, expected_lsn: int | None, report: WALOpenReport
    ) -> dict | None:
        position = f"lsn {expected_lsn}" if expected_lsn is not None else "log head"
        try:
            document = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            report.truncation_reason = f"unparsable frame at {position}"
            return None
        if not isinstance(document, dict) or "crc" not in document:
            report.truncation_reason = f"malformed frame at {position}"
            return None
        crc = document.pop("crc")
        payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
        if crc != codec.checksum(payload):
            report.truncation_reason = f"checksum mismatch at {position}"
            return None
        if document.get("v") != WAL_SCHEMA_VERSION:
            # An unknown version is not a torn tail: refuse loudly instead
            # of silently dropping a log written by a newer build.
            raise WALError(
                f"WAL frame at {position} has schema version "
                f"{document.get('v')!r}; this build reads {WAL_SCHEMA_VERSION}"
            )
        lsn = document.get("lsn")
        if not isinstance(lsn, int) or lsn < 1 or (
            expected_lsn is not None and lsn != expected_lsn
        ):
            report.truncation_reason = (
                f"sequence break: expected {position}, found lsn {lsn!r}"
            )
            return None
        return codec.decode(document)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append(self, op: str, payload: dict) -> int:
        """Write one frame; returns its LSN.  Fsyncs per the sync policy."""
        if self._file is None:
            raise WALError("log is not open")
        with obs.span("wal.append"):
            frame = {"v": WAL_SCHEMA_VERSION, "lsn": self._next_lsn, "op": op}
            frame.update(codec.encode(payload))
            body = json.dumps(frame, sort_keys=True, separators=(",", ":"))
            frame["crc"] = codec.checksum(body)
            line = json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
            self._file.write(line)
            self._file.flush()
            if self.sync_policy == "always":
                os.fsync(self._file.fileno())
                self._obs_fsyncs.inc()
            self._obs_frames.inc()
            self._obs_bytes.inc(len(line))
            lsn = self._next_lsn
            self._next_lsn += 1
            self._notify(lsn)
        return lsn

    def append_frame_line(self, line: str) -> dict:
        """Append one *already-framed* line verbatim (replica apply path).

        The line is what a primary's :meth:`append` wrote — CRC, version
        and LSN included — shipped over the replication stream.  It is
        re-validated exactly like recovery would validate it (checksum,
        schema version, ``lsn == next_lsn``) before a single byte lands in
        the file, so a corrupt or out-of-sequence shipped frame raises
        instead of poisoning the replica's own log; because the accepted
        bytes are written untouched, the replica's WAL stays byte-identical
        to the primary's frame stream by construction.

        Returns the decoded frame.
        """
        if self._file is None:
            raise WALError("log is not open")
        if not line.endswith("\n"):
            line = line + "\n"
        probe = WALOpenReport()
        frame = self._parse_frame(line.encode("utf-8"), self._next_lsn, probe)
        if frame is None:
            raise WALError(
                f"rejected shipped frame: {probe.truncation_reason}"
            )
        self._file.write(line)
        self._file.flush()
        if self.sync_policy == "always":
            os.fsync(self._file.fileno())
            self._obs_fsyncs.inc()
        self._obs_frames.inc()
        self._obs_bytes.inc(len(line))
        lsn = self._next_lsn
        self._next_lsn += 1
        self._notify(lsn)
        return frame

    # ------------------------------------------------------------------
    # Live frame stream (replication shipping)
    # ------------------------------------------------------------------
    @property
    def truncate_epoch(self) -> int:
        """Bumped on every :meth:`truncate_through` rewrite.

        Byte offsets handed out by :meth:`read_frames` are only valid
        within one epoch — compaction rewrites the file, so a reader that
        cached an offset must restart from 0 when the epoch moved.
        """
        return self._truncate_epoch

    def add_listener(self, listener) -> None:
        """Call ``listener(lsn)`` after every durable append (live tail
        notification for replication feeders)."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, lsn: int) -> None:
        for listener in list(self._listeners):
            listener(lsn)

    def read_frames(
        self, after_lsn: int, *, offset: int = 0, epoch: int | None = None
    ) -> tuple[list[tuple[int, str]], int, int]:
        """Validated raw frame lines with ``frame.lsn > after_lsn``.

        The shipping read used by primary→replica WAL streaming: returns
        ``(frames, end_offset, epoch)`` where ``frames`` is a list of
        ``(lsn, line)`` pairs ready to send verbatim, ``end_offset`` is
        the byte position after the last validated frame (pass it back as
        ``offset`` on the next call to resume without rescanning), and
        ``epoch`` is the :attr:`truncate_epoch` the offset belongs to.
        A stale ``epoch`` resets the scan to the start of the (rewritten)
        file.  Every line goes through :meth:`_parse_frame` — only frames
        a recovery would accept are ever shipped; the scan stops at the
        first invalid line.
        """
        if epoch is not None and epoch != self._truncate_epoch:
            offset = 0
        raw = self.path.read_bytes() if self.path.exists() else b""
        frames: list[tuple[int, str]] = []
        expected_lsn: int | None = None
        position = min(offset, len(raw))
        probe = WALOpenReport()
        while position < len(raw):
            newline = raw.find(b"\n", position)
            if newline < 0:
                break
            line = raw[position : newline + 1]
            frame = self._parse_frame(line, expected_lsn, probe)
            if frame is None:
                break
            if frame["lsn"] > after_lsn:
                frames.append((frame["lsn"], line.decode("utf-8")))
            position = newline + 1
            expected_lsn = frame["lsn"] + 1
        return frames, position, self._truncate_epoch

    def tell(self) -> int:
        """Current end-of-log byte offset (a frame boundary)."""
        if self._file is None:
            raise WALError("log is not open")
        return self._file.tell()

    def rollback_last(self, offset: int, lsn: int) -> None:
        """Physically retract the frame appended at ``offset``/``lsn``.

        Used when the in-memory apply of a just-logged frame fails: the
        frame would otherwise poison every future recovery (replay would
        deterministically fail on it).  Only valid for the most recent
        append.
        """
        if self._file is None:
            raise WALError("log is not open")
        if lsn != self._next_lsn - 1:
            raise WALError("rollback_last may only retract the latest frame")
        self._file.truncate(offset)
        # O_APPEND writes always land at EOF, but tell() would keep
        # reporting the pre-truncation position — resync it so the next
        # frame's recorded offset is the real boundary.
        self._file.seek(0, os.SEEK_END)
        self._file.flush()
        if self.sync_policy != "never":
            os.fsync(self._file.fileno())
            self._obs_fsyncs.inc()
        self._obs_rollbacks.inc()
        self._next_lsn = lsn
        # Cached read_frames offsets may point past (or into) the retracted
        # bytes; invalidate them like a compaction rewrite would.
        self._truncate_epoch += 1

    def ensure_next_lsn(self, minimum: int) -> None:
        """Advance the append position (after a compacted log reopens empty,
        the snapshot — not the log — carries the durable horizon)."""
        if self._next_lsn < minimum:
            self._next_lsn = minimum

    def sync(self) -> None:
        """Explicit fsync barrier (group commit for ``"batch"`` policy)."""
        if self._file is not None and self.sync_policy != "never":
            self._file.flush()
            os.fsync(self._file.fileno())
            self._obs_fsyncs.inc()

    # ------------------------------------------------------------------
    # Compaction support
    # ------------------------------------------------------------------
    def truncate_through(self, lsn: int) -> WALTruncateReport:
        """Drop every frame with ``frame.lsn <= lsn`` (atomic rewrite).

        Called by compaction after a snapshot has made the prefix
        redundant.  The rewrite goes through a temp file + ``os.replace``
        + directory fsync, so a crash mid-compaction leaves either the
        old or the new log, never a mix.

        Every line of the file is **re-validated** through
        :meth:`_parse_frame` (CRC, schema version, LSN contiguity), not
        just re-parsed as JSON: a frame that bit-rotted *after* the log
        was opened must not be rewritten into the retained tail, where it
        would survive compaction and poison every later recovery (and
        every replica catch-up reading the shipped stream).  The retained
        tail is cut at the first bad frame; the returned
        :class:`WALTruncateReport` says what was kept and what was
        discarded as suspect.
        """
        self.close()
        report = WALTruncateReport()
        retained: list[bytes] = []
        raw = self.path.read_bytes() if self.path.exists() else b""
        expected_lsn: int | None = None
        offset = 0
        scan = WALOpenReport()  # collects _parse_frame's failure reason
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                scan.truncation_reason = "unterminated final frame"
                break
            line = raw[offset : newline + 1]
            frame = self._parse_frame(line, expected_lsn, scan)
            if frame is None:
                break
            if frame["lsn"] > lsn:
                retained.append(line)
            offset = newline + 1
            expected_lsn = frame["lsn"] + 1
        if offset < len(raw):
            # Everything from the first bad frame on is untrusted — the
            # sequence anchor is gone, so later "good-looking" frames
            # cannot be re-validated either.
            suspect = raw[offset:]
            report.suspect_reason = scan.truncation_reason
            report.suspect_bytes = len(suspect)
            report.suspect_frames = suspect.count(b"\n") + (
                0 if suspect.endswith(b"\n") else 1
            )
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.writelines(retained)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_directory(self.path.parent)
        self._file = open(self.path, "a", encoding="utf-8")
        self._truncate_epoch += 1
        self._obs_truncations.inc()
        report.retained_frames = len(retained)
        return report

    def close(self) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to disk (no-op on platforms without dir fds)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
