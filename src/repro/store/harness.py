"""Crash-injection harness: seeded op scripts, kill points, fingerprints.

Shared by the differential test wall (``tests/test_store.py``) and the
recovery benchmark (``benchmarks/bench_store.py``).  The pieces:

* :func:`make_ops` — a seeded, always-valid mixed op script (singleton
  puts/deletes plus atomic batches), one entry per WAL frame;
* :class:`ReferenceStore` — the *uninterrupted* twin: the same
  :class:`~repro.applications.ordered_map.PackedMemoryMap` the store
  wraps, driven without any WAL or snapshots;
* :func:`fingerprint` — everything recovery must reproduce byte-for-byte
  (key order, ``items()``, composed labels, per-shard physical layout);
* :class:`RecordedRun` — records a workload through a real
  :class:`~repro.store.store.DurableStore` (checkpointing on a schedule)
  and knows the byte offset of every WAL frame boundary;
* :meth:`RecordedRun.recover_at` / :func:`crash_copy` — materialize the
  exact on-disk state a crash after frame ``k`` would leave (WAL cut at
  the boundary — or mid-frame, for the torn-tail path — and only the
  checkpoints that existed by then), then run real recovery on it.
"""

from __future__ import annotations

import os
import random
import shutil
from pathlib import Path

from repro.applications.ordered_map import PackedMemoryMap
from repro.store.factories import resolve_factory
from repro.store.snapshot import SNAPSHOT_DIR_NAME, list_snapshots
from repro.store.store import (
    CONFIG_FILENAME,
    HORIZON_FILENAME,
    WAL_FILENAME,
    DurableStore,
)


def make_ops(frames: int, seed: int, *, key_space: int = 10**6) -> list[tuple]:
    """A seeded mixed op script: one entry per WAL frame.

    Singleton puts and deletes, plus atomic ``put_many`` / ``delete_many``
    batches — always valid against the evolving state, so the script can
    be replayed against any conforming target.
    """
    rng = random.Random(seed)
    model: dict = {}
    live: list[int] = []
    ops: list[tuple] = []
    for step in range(frames):
        roll = rng.random()
        if live and roll < 0.22:
            key = live.pop(rng.randrange(len(live)))
            del model[key]
            ops.append(("del", key))
            continue
        if live and roll < 0.30:
            count = min(len(live), rng.randint(2, 10))
            picked = [live.pop(rng.randrange(len(live))) for _ in range(count)]
            for key in picked:
                del model[key]
            ops.append(("del_many", sorted(picked)))
            continue
        if roll < 0.45:
            batch: dict = {}
            for _ in range(rng.randint(2, 12)):
                key = rng.randrange(key_space)
                if key not in model:
                    batch[key] = step
            if batch:
                for key, value in batch.items():
                    model[key] = value
                    live.append(key)
                ops.append(("put_many", sorted(batch.items())))
                continue
        key = rng.randrange(key_space)
        if key not in model:
            live.append(key)
        model[key] = step
        ops.append(("put", key, step))
    return ops


def logical_operations(ops: list[tuple]) -> int:
    """Number of logical key operations the script performs."""
    total = 0
    for op in ops:
        if op[0] in ("put", "del"):
            total += 1
        else:
            total += len(op[1])
    return total


class ReferenceStore:
    """Uninterrupted in-memory twin: the same map, no WAL, no snapshots."""

    def __init__(self, algorithm: str, shard_capacity: int) -> None:
        self.map = PackedMemoryMap(
            capacity=None,
            labeler_factory=resolve_factory(algorithm),
            shard_capacity=shard_capacity,
        )

    def apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "put":
            self.map[op[1]] = op[2]
        elif kind == "del":
            del self.map[op[1]]
        elif kind == "put_many":
            self.map.update_many(op[1])
        elif kind == "del_many":
            self.map.delete_many(op[1])
        else:
            raise ValueError(kind)


def apply_to_store(store: DurableStore, op: tuple) -> None:
    kind = op[0]
    if kind == "put":
        store.put(op[1], op[2])
    elif kind == "del":
        store.delete(op[1])
    elif kind == "put_many":
        store.put_many(op[1])
    elif kind == "del_many":
        store.delete_many(op[1])
    else:
        raise ValueError(kind)


def fingerprint(pmm: PackedMemoryMap) -> dict:
    """Everything recovery must reproduce byte-for-byte."""
    labeler = pmm.labeler
    state = {
        "keys": list(pmm.keys()),
        "items": list(pmm.items()),
        "labels": labeler.labels(),
    }
    shards = getattr(labeler, "shards", None)
    if shards is not None:
        state["shard_layout"] = [tuple(shard.slots()) for shard in shards]
    return state


def state_digest(pmm: PackedMemoryMap) -> str:
    """Stable hex digest of :func:`fingerprint` (replication convergence).

    Two stores with equal digests hold the same keys, the same items, the
    same composed labels and the same per-shard physical layout — the
    byte-identical-state claim the replica-smoke CI job asserts without
    shipping whole fingerprints across process boundaries.
    """
    import hashlib

    from repro.store import codec

    return hashlib.sha256(
        codec.dumps(fingerprint(pmm)).encode("utf-8")
    ).hexdigest()


def record_move_log(labeler) -> list[tuple]:
    """Instrument ``labeler`` to journal every mutation's move triples.

    Wraps the four mutating entry points on the *instance* (the map layer
    resolves them through attribute lookup) and appends one
    ``(operation_kind, move_triples)`` entry per applied operation to the
    returned list — the bit-level execution trace the parallel-vs-serial
    determinism suite compares across worker counts.
    """
    from repro.core.operations import move_triples

    log: list[tuple] = []
    for name in ("insert", "delete", "insert_batch", "delete_batch"):
        original = getattr(labeler, name)

        def wrapped(*args, _original=original, **kwargs):
            result = _original(*args, **kwargs)
            for item in getattr(result, "results", [result]):
                log.append((item.operation.kind, move_triples(item.moves)))
            return result

        setattr(labeler, name, wrapped)
    return log


def move_log_digest(log: list[tuple]) -> str:
    """Stable hex digest of a :func:`record_move_log` trace."""
    import hashlib

    from repro.store import codec

    return hashlib.sha256(codec.dumps(log).encode("utf-8")).hexdigest()


def parallel_replay(
    ops: list[tuple],
    *,
    algorithm: str = "classical",
    shard_capacity: int = 64,
    max_workers: int = 1,
) -> tuple[str, str]:
    """Replay an op script on a pool-attached map; digest state and moves.

    Drives :func:`make_ops`-style operations through a fresh
    :class:`ReferenceStore` whose sharded labeler executes per-shard
    sub-batches on a ``max_workers``-wide shard pool (``1`` = the serial
    reference path), and returns ``(state_digest, move_log_digest)`` —
    equal digests across worker counts is the parallel determinism
    contract.
    """
    from repro.core.parallel import ShardPool

    reference = ReferenceStore(algorithm, shard_capacity)
    log = record_move_log(reference.map.labeler)
    pool = ShardPool(max_workers) if max_workers > 1 else None
    if pool is not None:
        reference.map.labeler.set_parallel(pool)
    try:
        for op in ops:
            reference.apply(op)
    finally:
        if pool is not None:
            reference.map.labeler.set_parallel(None)
            pool.close()
    return state_digest(reference.map), move_log_digest(log)


def crash_copy(
    source: Path,
    destination: Path,
    *,
    wal_bytes: bytes,
    max_snapshot_lsn: int,
    newest_only: bool = False,
) -> Path:
    """Materialize the on-disk state a crash at this point would leave.

    The WAL is cut to ``wal_bytes`` and only checkpoints that existed by
    then (``lsn <= max_snapshot_lsn``) are present — a snapshot can never
    cover frames the log had not durably written.  ``newest_only`` copies
    just the newest eligible checkpoint: recovery never reads the older
    ones (they exist only as corruption fallbacks), and skipping them
    keeps exhaustive every-boundary sweeps tractable.
    """
    destination.mkdir(parents=True)
    shutil.copy(source / CONFIG_FILENAME, destination / CONFIG_FILENAME)
    horizon = source / HORIZON_FILENAME
    if horizon.exists():
        shutil.copy(horizon, destination / HORIZON_FILENAME)
    (destination / WAL_FILENAME).write_bytes(wal_bytes)
    eligible = [
        info for info in list_snapshots(source) if info.lsn <= max_snapshot_lsn
    ]
    if newest_only and eligible:
        eligible = eligible[-1:]
    for info in eligible:
        target = destination / SNAPSHOT_DIR_NAME / info.path.name
        try:
            # Snapshot files are immutable once renamed into place, so the
            # crash replica can share them via hardlinks (recovery only
            # reads them); fall back to real copies where links fail.
            shutil.copytree(info.path, target, copy_function=os.link)
        except OSError:
            shutil.rmtree(target, ignore_errors=True)
            shutil.copytree(info.path, target)
    return destination


class RecordedRun:
    """One recorded workload: the store directory plus its frame geometry."""

    def __init__(
        self,
        tmp_path: Path,
        algorithm: str,
        ops: list[tuple],
        *,
        shard_capacity: int,
        snapshot_every: int | None,
    ) -> None:
        self.directory = Path(tmp_path) / f"recorded-{algorithm}"
        self.algorithm = algorithm
        self.shard_capacity = shard_capacity
        self.ops = ops
        store = DurableStore(
            self.directory,
            algorithm=algorithm,
            shard_capacity=shard_capacity,
            sync_policy="never",
            snapshot_keep=10**6,
        )
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if snapshot_every and index % snapshot_every == 0:
                store.snapshot()
        self.final_fingerprint = fingerprint(store.map)
        store.close()
        raw = (self.directory / WAL_FILENAME).read_bytes()
        lines = raw.splitlines(keepends=True)
        assert len(lines) == len(ops)
        #: boundaries[k] = byte length of the first k frames.
        self.boundaries = [0]
        for line in lines:
            self.boundaries.append(self.boundaries[-1] + len(line))
        self.wal_bytes = raw
        self.frames = len(ops)

    def recover_at(
        self, tmp_path: Path, k: int, *, extra_bytes: bytes = b""
    ) -> DurableStore:
        """Open a store recovered from a crash after frame ``k`` (plus an
        optional torn partial frame)."""
        workdir = Path(tmp_path) / f"kill-{self.algorithm}-{k}-{len(extra_bytes)}"
        crash_copy(
            self.directory,
            workdir,
            wal_bytes=self.wal_bytes[: self.boundaries[k]] + extra_bytes,
            max_snapshot_lsn=k,
            newest_only=True,
        )
        store = DurableStore(workdir, sync_policy="never")
        store.close()  # recovery is done; release the append handle
        shutil.rmtree(workdir, ignore_errors=True)
        return store
