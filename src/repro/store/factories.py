"""Named shard-factory registry for reopenable stores.

A durable store must be *reopenable*: recovery rebuilds shards through the
same factory that built them, so the factory has to be resolvable from the
store's on-disk config — a name, not a closure.  This registry maps the
names the test-suite's ``ALGORITHM_FACTORIES`` uses to ``factory(capacity)``
callables; every entry is deterministic (fixed seeds, salt-hashed
predictors), which is what makes crash recovery reproduce the uninterrupted
run bit-for-bit.

Custom factories still work: pass ``shard_factory=`` to
:class:`repro.store.store.DurableStore` together with ``algorithm=`` naming
it; reopening then requires passing the same callable again (the config
records the name so a mismatch is caught, not silently mis-recovered).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from repro.algorithms import (
    AdaptivePMA,
    ClassicalPMA,
    DeamortizedPMA,
    LearnedLabeler,
    NaiveLabeler,
    NoisyPredictor,
    RandomizedPMA,
    SparseNaiveLabeler,
)
from repro.core.interface import ListLabeler
from repro.core.layered import make_corollary11_labeler


def _learned(capacity: int) -> LearnedLabeler:
    keys = [Fraction(i) for i in range(1, capacity + 1)]
    return LearnedLabeler(
        capacity,
        predictor=NoisyPredictor(keys, eta=max(1, capacity // 64)),
    )


def _corollary11(capacity: int, physical_backend: str | None = None) -> ListLabeler:
    return make_corollary11_labeler(
        capacity, seed=7, physical_backend=physical_backend
    )


#: name -> deterministic ``factory(capacity)`` usable as a store shard.
SHARD_FACTORIES: dict[str, Callable[[int], ListLabeler]] = {
    "naive": lambda capacity: NaiveLabeler(capacity),
    "sparse-naive": lambda capacity: SparseNaiveLabeler(capacity),
    "classical": lambda capacity: ClassicalPMA(capacity),
    "deamortized": lambda capacity: DeamortizedPMA(capacity),
    "randomized": lambda capacity: RandomizedPMA(capacity, seed=1234),
    "adaptive": lambda capacity: AdaptivePMA(capacity),
    "learned": _learned,
    "corollary11": _corollary11,
}

#: Algorithms with a physical-array layer, i.e. the ones a
#: ``physical_backend=`` selection applies to.
PHYSICAL_BACKEND_ALGORITHMS = frozenset({"corollary11"})

#: The production default: classical PMA shards (O(log² n) amortized,
#: cheap snapshots, exact restore).
DEFAULT_ALGORITHM = "classical"

#: Factories whose structures restore through the ``elements`` fallback
#: (bulk_load) rather than an exact physical-layout snapshot.
ELEMENTS_FALLBACK_ALGORITHMS = frozenset({"corollary11"})

#: Every algorithm with an exact snapshot format — the universe of the
#: crash-injection differential (tests and benchmark derive from this, and
#: the test-suite's ALGORITHM_FACTORIES is built from it, so the name sets
#: can never drift apart).
EXACT_SNAPSHOT_ALGORITHMS = tuple(
    sorted(set(SHARD_FACTORIES) - ELEMENTS_FALLBACK_ALGORITHMS)
)


def resolve_factory(
    name: str, *, physical_backend: str | None = None
) -> Callable[[int], ListLabeler]:
    try:
        factory = SHARD_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown shard algorithm {name!r} (registered: "
            f"{', '.join(sorted(SHARD_FACTORIES))})"
        ) from None
    if physical_backend is None:
        return factory
    if name not in PHYSICAL_BACKEND_ALGORITHMS:
        raise ValueError(
            f"shard algorithm {name!r} has no physical-array layer; "
            "physical_backend applies to: "
            f"{', '.join(sorted(PHYSICAL_BACKEND_ALGORITHMS))}"
        )
    return lambda capacity: factory(capacity, physical_backend=physical_backend)
