"""Command-line entry point: ``python -m repro.store <command> --dir DIR``.

* ``recover --dir DIR`` — open the store (which runs recovery: newest
  valid snapshot + tail-WAL replay + torn-tail truncation) and print the
  recovery report.
* ``snapshot --dir DIR`` — open and write a fresh checkpoint.
* ``compact --dir DIR`` — open, checkpoint, and truncate the WAL prefix
  the checkpoint covers.
* ``verify --dir DIR`` — open and check every integrity invariant
  (physical layout vs. keys, sharding invariants, sorted order,
  key/value bijection); exits nonzero on failure.
* ``verify --factory-sweep`` — instead of opening an existing store, run
  a seeded workload + snapshot + reopen + verify round-trip in a
  temporary directory for **every** registered shard algorithm (what the
  ``store-recovery`` CI job runs).
* ``scan --dir DIR [--low K] [--high K] [--limit N] [--page-size N]`` —
  recover the store and stream the key interval through the paginated
  read path (one labeler-cursor page per ``--page-size`` keys), printing
  ``key<TAB>value`` lines plus a trailing summary.  Keys given on the
  command line parse as JSON with a plain-string fallback.
* ``replica-smoke [--frames N] [--seed S]`` — the replication
  convergence drill the ``replication-smoke`` CI job runs: serve a
  primary, stream a replica, kill it mid-catch-up, restart it (stream
  resume from its own WAL), then compact the primary past the replica's
  LSN and restart again (snapshot bootstrap).  Each round must end with
  the replica's state digest *exactly* equal to the primary's at zero
  lag; exits nonzero otherwise.
* ``stats --host H --port P`` — connect to a live server and render its
  ``STATS`` (durability, compactor, replication, shards) and ``METRICS``
  (Prometheus exposition + slow-op count) responses.
* ``obs-smoke [--frames N] [--seed S]`` — the observability drill the
  ``obs-smoke`` CI job runs: serve an instrumented store, drive mixed
  traffic (including deliberate protocol and command errors) over the
  wire, assert every expected metric family shows up in ``METRICS``, and
  check the ``stats`` command renders it all with exit code 0.

A maintenance command pointed at a directory holding no store refuses to
run (a mistyped ``--dir`` must not conjure an empty store and call it
healthy); pass ``--create`` to initialize one, with ``--algorithm`` /
``--shard-capacity`` fixing its configuration — validated, not changed,
on every reopen.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile

from repro.core.physical_backends import PHYSICAL_BACKENDS
from repro.store.factories import SHARD_FACTORIES
from repro.store.store import DurableStore


def _open(args: argparse.Namespace) -> DurableStore:
    if not args.dir:
        raise SystemExit("--dir is required for this command")
    from pathlib import Path

    from repro.store.store import CONFIG_FILENAME

    if not (Path(args.dir) / CONFIG_FILENAME).exists() and not args.create:
        # A maintenance command pointed at a directory with no store must
        # refuse, not conjure an empty store and report it healthy — a
        # mistyped --dir after a crash would otherwise read as "ok: 0 keys".
        raise SystemExit(
            f"no store at {args.dir} (missing {CONFIG_FILENAME}); "
            f"pass --create to initialize a new one"
        )
    return DurableStore(
        args.dir,
        algorithm=args.algorithm,
        shard_capacity=args.shard_capacity,
        sync_policy=args.sync,
        physical_backend=getattr(args, "physical_backend", None),
    )


def _print_recovery(store: DurableStore) -> None:
    report = store.recovery
    print(f"store      : {store.directory} (algorithm={store.algorithm}, "
          f"shard_capacity={store.shard_capacity})")
    print(f"snapshot   : lsn {report.snapshot_lsn}"
          + ("" if report.snapshot_lsn else " (none; replayed from empty)"))
    print(f"wal        : {report.wal_frames_seen} frame(s) seen, "
          f"{report.frames_replayed} replayed past the snapshot")
    if report.truncated_bytes:
        print(f"torn tail  : {report.truncated_bytes} byte(s) truncated "
              f"({report.truncation_reason})")
    print(f"state      : {len(store)} key(s), last lsn {report.last_lsn}")


def _cmd_recover(args: argparse.Namespace) -> int:
    with _open(args) as store:
        _print_recovery(store)
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    with _open(args) as store:
        lsn = store.snapshot()
        print(f"wrote snapshot covering lsn {lsn} "
              f"({len(store)} key(s), {store.labeler.shard_count} shard(s))")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    with _open(args) as store:
        lsn = store.compact()
        print(f"compacted through lsn {lsn}; "
              f"wal now holds {store.wal_frames_since_snapshot} frame(s)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.factory_sweep:
        return _factory_sweep(args)
    try:
        with _open(args) as store:
            report = store.verify()
    except Exception as error:  # surface as a failure exit, not a traceback
        print(f"FAIL: {error}")
        return 1
    print("ok: " + ", ".join(f"{key}={value}" for key, value in report.items()))
    return 0


def _factory_sweep(args: argparse.Namespace) -> int:
    """Workload → snapshot → reopen → verify, for every registered factory."""
    from repro.store.harness import apply_to_store, make_ops

    operations = args.sweep_operations
    failures = 0
    for name in sorted(SHARD_FACTORIES):
        directory = tempfile.mkdtemp(prefix=f"repro-store-{name}-")
        try:
            with DurableStore(
                directory, algorithm=name, shard_capacity=32, sync_policy="never"
            ) as store:
                for index, op in enumerate(make_ops(operations, 20260730), 1):
                    apply_to_store(store, op)
                    if index == operations // 2:
                        store.compact()
                expected = list(store.items())
            with DurableStore(directory, sync_policy="never") as reopened:
                reopened.verify()
                if list(reopened.items()) != expected:
                    raise AssertionError("recovered items diverged")
                replayed = reopened.recovery.frames_replayed
            print(f"ok [{name}]: {len(expected)} key(s) round-tripped, "
                  f"{replayed} tail frame(s) replayed")
        except Exception as error:
            failures += 1
            print(f"FAIL [{name}]: {error}")
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return 1 if failures else 0


def _cmd_replica_smoke(args: argparse.Namespace) -> int:
    """Kill-and-restart replication convergence, both catch-up paths.

    Round A kills the replica mid-catch-up and restarts it: the restart
    recovers the replica's own WAL and *streams* the missing tail (no
    bootstrap).  Round B stops it, compacts the primary past its applied
    LSN and restarts: the handshake must fall back to a *snapshot
    bootstrap*.  Both rounds end by comparing state digests — the
    byte-identical fingerprint (keys, items, composed labels, per-shard
    physical layout) of primary and replica must be equal at zero lag.
    """
    import time
    from pathlib import Path

    from repro.store.harness import apply_to_store, make_ops, state_digest
    from repro.store.replica import Replica
    from repro.store.server import ServerThread
    from repro.store.service import StoreService

    frames = args.frames
    ops = make_ops(frames, args.seed)
    backlog, live = ops[: 2 * frames // 3], ops[2 * frames // 3 :]
    root = Path(tempfile.mkdtemp(prefix="repro-replica-smoke-"))
    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok    : " if condition else "FAIL  : ") + message)
        if not condition:
            failures.append(message)

    try:
        store = DurableStore(
            root / "primary",
            algorithm="classical",
            shard_capacity=64,
            sync_policy="never",
        )
        service = StoreService(store, stripes=8)
        with ServerThread(service) as server:
            print(f"primary: serving at "
                  f"{server.address[0]}:{server.address[1]}")

            # Round A: the replica streams live while the primary writes
            # the backlog; it is killed as soon as it has applied a frame
            # — strictly mid-catch-up, with most of the workload still to
            # come — then restarted once the primary has finished.
            replica = Replica(
                root / "replica", server.address, sync_policy="never"
            )
            replica.start()
            replica.wait_ready(timeout=60.0)
            killed_at = None
            for index, op in enumerate(backlog):
                apply_to_store(service, op)
                if index % 8 == 0:
                    # Pace the writer: an unbroken put loop would hold the
                    # service's write locks continuously and starve the
                    # replication feeder (and the bootstrap snapshot) of
                    # the structure lock.
                    time.sleep(0.001)
                if killed_at is None and replica.last_applied_lsn >= 1:
                    replica.stop()
                    killed_at = replica.last_applied_lsn
            if killed_at is None:
                replica.stop()
                killed_at = replica.last_applied_lsn
            for op in live:  # the primary moves on while the replica is down
                apply_to_store(service, op)
            print(f"round A: killed replica at applied lsn {killed_at} "
                  f"(primary finished at {store.last_lsn})")
            check(
                1 <= killed_at < store.last_lsn,
                "kill point was strictly mid-catch-up",
            )
            restarted = Replica(
                root / "replica", server.address, sync_policy="never"
            )
            restarted.start()
            restarted.wait_ready(timeout=60.0)
            restarted.wait_caught_up(store.last_lsn, timeout=60.0)
            check(
                restarted.bootstrap_count == 0,
                "restart resumed from its own WAL (no snapshot bootstrap)",
            )
            check(
                restarted.last_applied_lsn == store.last_lsn,
                f"zero lag after restart (applied {restarted.last_applied_lsn}"
                f" of {store.last_lsn})",
            )
            check(
                state_digest(restarted.service.store.map)
                == state_digest(store.map),
                "round A state digest equals the primary's",
            )
            restarted.stop()
            resumed_lsn = restarted.last_applied_lsn

            # Round B: compaction moves the horizon past the stopped
            # replica, so its next connection must snapshot-bootstrap.
            for op in make_ops(max(8, frames // 8), args.seed + 1):
                apply_to_store(service, op)
            service.compact()
            check(
                store.durable_horizon > resumed_lsn,
                f"compaction advanced the horizon past the replica "
                f"({store.durable_horizon} > {resumed_lsn})",
            )
            rebootstrapped = Replica(
                root / "replica", server.address, sync_policy="never"
            )
            rebootstrapped.start()
            rebootstrapped.wait_ready(timeout=60.0)
            rebootstrapped.wait_caught_up(store.last_lsn, timeout=60.0)
            check(
                rebootstrapped.bootstrap_count == 1,
                "behind-horizon restart fell back to a snapshot bootstrap",
            )
            check(
                rebootstrapped.last_applied_lsn == store.last_lsn,
                "zero lag after bootstrap",
            )
            check(
                state_digest(rebootstrapped.service.store.map)
                == state_digest(store.map),
                "round B state digest equals the primary's",
            )
            rebootstrapped.stop()
        service.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        print(f"replica-smoke: {len(failures)} failure(s)")
        return 1
    print("replica-smoke: converged byte-identically in both rounds")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Render a live server's STATS + METRICS over the wire."""
    from repro.store.client import StoreClient

    with StoreClient(args.host, args.port, timeout=args.timeout) as client:
        stats = client.stats()
        print(f"server     : {args.host}:{args.port}")
        print(f"durability : last lsn {stats['last_lsn']}, "
              f"horizon {stats['durable_horizon']}, "
              f"{stats['wal_frames_since_snapshot']} wal frame(s) "
              f"since snapshot")
        error = stats.get("last_compactor_error")
        print(f"compactor  : "
              f"{'alive' if stats.get('compactor_alive') else 'not running'}"
              + (f" (last error: {error})" if error else ""))
        floor = stats.get("replication_floor")
        print(f"replicas   : {stats.get('replica_count', 0)} connected, "
              f"acks {stats.get('replica_acks', [])}, "
              f"floor {floor if floor is not None else '-'}")
        shards = stats.get("shard_statistics") or {}
        if shards:
            print("shards     : " + ", ".join(
                f"{key}={value}" for key, value in sorted(shards.items())
            ))
        latency = stats.get("latency") or {}
        interesting = [
            key for key in ("operations", "latency_p50", "latency_p999",
                            "latency_event_p999", "latency_event_max")
            if key in latency
        ]
        if interesting:
            print("latency    : " + ", ".join(
                f"{key}={latency[key]}" for key in interesting
            ))
        errors = stats.get("error_counts") or {}
        if errors:
            print("errors     : " + ", ".join(
                f"{family}={count}" for family, count in sorted(errors.items())
            ))
        metrics = client.metrics()
        if metrics.get("enabled"):
            slow = metrics.get("slow_ops") or []
            print(f"slow ops   : {len(slow)} captured over threshold")
            print("metrics    :")
            print(metrics["exposition"], end="")
        else:
            print("metrics    : registry disabled "
                  "(start the server with an obs registry to collect them)")
    return 0


def _cmd_obs_smoke(args: argparse.Namespace) -> int:
    """End-to-end observability drill (the ``obs-smoke`` CI job).

    Serves an instrumented store, drives mixed traffic over the wire —
    including a deliberate unknown command, a miss delete, and a raw
    oversized frame — then asserts the METRICS response carries every
    expected metric family, STATS reports compactor/replication/shard
    health, and the ``stats`` CLI renders it all with exit code 0.
    """
    import contextlib
    import io
    import socket as socket_module
    import struct
    from pathlib import Path

    from repro.obs import MetricsRegistry
    from repro.store.client import StoreClient, StoreClientError
    from repro.store.harness import apply_to_store, make_ops
    from repro.store.protocol import MAX_MESSAGE_BYTES
    from repro.store.server import ServerThread
    from repro.store.service import StoreService

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok    : " if condition else "FAIL  : ") + message)
        if not condition:
            failures.append(message)

    root = Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))
    registry = MetricsRegistry()
    try:
        store = DurableStore(
            root / "store",
            algorithm="classical",
            shard_capacity=64,
            sync_policy="never",
            registry=registry,
        )
        service = StoreService(store, stripes=8, track_latency=True)
        service.start_compactor(poll_seconds=0.05, wal_frame_threshold=10**9)
        with ServerThread(service) as server:
            host, port = server.address
            print(f"primary: serving at {host}:{port} (registry live)")
            with StoreClient(host, port) as client:
                for op in make_ops(args.frames, args.seed):
                    apply_to_store(client, op)
                page = client.range_scan(limit=64)
                if page:
                    client.count_range(page[0][0], page[-1][0])
                check(client.size() > 0, "mixed traffic left a populated store")
                try:
                    client.delete(("obs-smoke", "no-such-key"))
                    check(False, "miss delete raised KeyError")
                except KeyError:
                    check(True, "miss delete raised KeyError")
                try:
                    client._call("BOGUS")
                    check(False, "unknown command was rejected")
                except StoreClientError as error:
                    check(
                        error.code == "bad_request",
                        "unknown command was rejected",
                    )
            # An oversized length prefix must drop the connection (and be
            # accounted in its own error family).
            with socket_module.create_connection(
                (host, port), timeout=10.0
            ) as sock:
                sock.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
                sock.settimeout(10.0)
                check(
                    sock.recv(1) == b"",
                    "oversized frame dropped the connection",
                )

            with StoreClient(host, port) as client:
                metrics = client.metrics()
                check(metrics.get("enabled") is True, "METRICS reports a live registry")
                snapshot = metrics["metrics"]
                counters = snapshot["counters"]
                for name in (
                    "wal.frames_appended",
                    "wal.bytes_appended",
                    "server.requests",
                    "server.connections",
                    "server.errors.bad_command",
                    "server.errors.not_found",
                    "server.errors.oversized_frame",
                ):
                    check(
                        counters.get(name, 0) > 0,
                        f"counter {name} > 0",
                    )
                check(
                    any(name.startswith("service.latency.")
                        for name in snapshot["histograms"]),
                    "per-command latency histograms present",
                )
                check(
                    snapshot["gauges"].get("sharded.shard_count", 0) >= 1,
                    "shard-count gauge present",
                )
                check(
                    snapshot["gauges"].get("service.compactor_alive") == 1,
                    "compactor liveness gauge reads 1",
                )
                exposition = metrics.get("exposition", "")
                check(
                    "# TYPE repro_wal_frames_appended_total counter"
                    in exposition,
                    "exposition text carries TYPE lines",
                )
                stats = client.stats()
                check(stats.get("compactor_alive") is True, "STATS: compactor alive")
                check(
                    stats.get("last_compactor_error") is None,
                    "STATS: no compactor error",
                )
                check(
                    bool(stats.get("shard_statistics")),
                    "STATS: shard statistics present",
                )
                check(
                    stats.get("error_counts", {}).get("bad_command", 0) >= 1,
                    "STATS: error families accounted",
                )

            # The user-facing path: `python -m repro.store stats` against
            # this live server must exit 0 and print something.
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                code = _cmd_stats(argparse.Namespace(
                    host=host, port=port, timeout=10.0
                ))
            rendered = buffer.getvalue()
            check(
                code == 0 and bool(rendered.strip()),
                "stats CLI exited 0 with non-empty output",
            )
            check(
                "repro_wal_frames_appended_total" in rendered,
                "stats CLI rendered the exposition text",
            )
        service.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        print(f"obs-smoke: {len(failures)} failure(s)")
        return 1
    print("obs-smoke: every metric family observed over the wire")
    return 0


def _parse_key(text: str | None):
    """A CLI key: JSON when it parses, the raw string otherwise."""
    if text is None:
        return None
    import json

    try:
        return json.loads(text)
    except ValueError:
        return text


def _cmd_scan(args: argparse.Namespace) -> int:
    low = _parse_key(args.low)
    high = _parse_key(args.high)
    emitted = 0
    pages = 0
    with _open(args) as store:
        if args.page_size:
            # The paginated path: one bounded cursor page per round trip,
            # resumed strictly past the previous page's last key — the
            # same protocol StoreService.scan_pages serves under its
            # per-page lock holds.
            after = None
            while True:
                remaining = (
                    None if args.limit is None else args.limit - emitted
                )
                if remaining is not None and remaining <= 0:
                    break
                size = args.page_size
                if remaining is not None:
                    size = min(size, remaining)
                page = list(store.range(low, high, limit=size, after=after))
                if not page:
                    break
                pages += 1
                for key, value in page:
                    print(f"{key}\t{value}")
                emitted += len(page)
                after = page[-1][0]
        else:
            for key, value in store.range(low, high, limit=args.limit):
                print(f"{key}\t{value}")
                emitted += 1
            pages = 1 if emitted else 0
    print(f"scanned {emitted} key(s) in {pages} page(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.store")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(command: argparse.ArgumentParser) -> None:
        command.add_argument("--dir", default=None, help="store directory")
        command.add_argument(
            "--algorithm",
            choices=sorted(SHARD_FACTORIES),
            default=None,
            help="shard algorithm (first open only; validated on reopen)",
        )
        command.add_argument("--shard-capacity", type=int, default=None)
        command.add_argument(
            "--physical-backend",
            choices=list(PHYSICAL_BACKENDS),
            default=None,
            help="physical-array backend for embedding-based algorithms "
            "(per-open speed knob; defaults to $REPRO_PHYSICAL_BACKEND, "
            "then 'slab')",
        )
        command.add_argument(
            "--sync", choices=["always", "batch", "never"], default="always"
        )
        command.add_argument(
            "--create",
            action="store_true",
            help="initialize a new store when --dir holds none",
        )

    recover = sub.add_parser("recover", help="open the store and report recovery")
    common(recover)
    recover.set_defaults(func=_cmd_recover)

    snapshot = sub.add_parser("snapshot", help="write a checkpoint")
    common(snapshot)
    snapshot.set_defaults(func=_cmd_snapshot)

    compact = sub.add_parser("compact", help="checkpoint + truncate the WAL")
    common(compact)
    compact.set_defaults(func=_cmd_compact)

    verify = sub.add_parser("verify", help="check every integrity invariant")
    common(verify)
    verify.add_argument(
        "--factory-sweep",
        action="store_true",
        help="round-trip a seeded workload for every registered algorithm",
    )
    verify.add_argument("--sweep-operations", type=int, default=400)
    verify.set_defaults(func=_cmd_verify)

    scan = sub.add_parser("scan", help="stream a key interval (paginated)")
    common(scan)
    scan.add_argument("--low", default=None, help="lowest key (JSON; inclusive)")
    scan.add_argument("--high", default=None, help="highest key (JSON; inclusive)")
    scan.add_argument("--limit", type=int, default=None, help="cap on emitted keys")
    scan.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="scan in cursor pages of this many keys (the paginated path)",
    )
    scan.set_defaults(func=_cmd_scan)

    smoke = sub.add_parser(
        "replica-smoke",
        help="kill-and-restart replication convergence drill (CI job)",
    )
    smoke.add_argument(
        "--frames", type=int, default=1200, help="workload frames on the primary"
    )
    smoke.add_argument("--seed", type=int, default=20260730)
    smoke.set_defaults(func=_cmd_replica_smoke)

    stats = sub.add_parser(
        "stats", help="render a live server's STATS + METRICS over the wire"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, required=True)
    stats.add_argument("--timeout", type=float, default=10.0)
    stats.set_defaults(func=_cmd_stats)

    obs_smoke = sub.add_parser(
        "obs-smoke",
        help="end-to-end metrics/tracing drill against a live server (CI job)",
    )
    obs_smoke.add_argument(
        "--frames", type=int, default=600, help="mixed-traffic operations"
    )
    obs_smoke.add_argument("--seed", type=int, default=20260730)
    obs_smoke.set_defaults(func=_cmd_obs_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
