"""WAL-shipping replica of a networked :class:`DurableStore` primary.

:class:`Replica` owns its own store directory and keeps it converged with
a primary by streaming the primary's WAL over the
:mod:`repro.store.protocol` replication stream:

* **Bootstrap** — a fresh replica (or one whose applied LSN fell below
  the primary's durable horizon while it was away) receives the
  primary's newest *snapshot* verbatim — manifest, shard files, checksums
  — installs it, and opens the store through ordinary recovery.
* **Streaming** — frames past its LSN arrive as the exact bytes the
  primary's WAL holds and are applied through
  :meth:`~repro.store.store.DurableStore.apply_frame_line`: re-validated
  (CRC, version, LSN contiguity), appended to the replica's own WAL
  verbatim, then applied through the same ``_apply`` recovery uses.  The
  replica's durable state is byte-identical to the primary's *by
  construction*, not by best effort — there is no replica-specific apply
  code to drift.
* **Catch-up** — a disconnect (primary restart, network blip, replica
  crash) is not an error state: the puller reconnects and resumes from
  its own durable ``last_lsn``.  If compaction moved the horizon past it
  in the meantime, the handshake falls back to snapshot bootstrap.  A
  replica *restart* is just recovery of its own directory followed by the
  same reconnect.
* **Failover** — :meth:`Replica.promote` stops the puller and opens the
  write path: the replica's service (and its read-only front-end, if one
  is serving) becomes an ordinary writable primary holding exactly the
  state the old primary had at the replica's last applied frame.

The replica acknowledges applied LSNs upstream; the primary's compaction
keeps frames past the smallest acknowledged LSN of its *connected*
replicas, so a live stream never loses its tail to compaction — while a
dead replica holds nothing hostage (it re-bootstraps).

The puller runs on a daemon thread and uses ``select()`` before every
blocking read so ``stop()`` interrupts it promptly without socket
timeouts tearing messages mid-frame.
"""

from __future__ import annotations

import select
import shutil
import socket
import threading
from pathlib import Path
from typing import Callable

from repro import obs
from repro.store.protocol import (
    ProtocolError,
    recv_message,
    send_message,
)
from repro.store.server import ServerThread
from repro.store.service import StoreService
from repro.store.snapshot import SNAPSHOT_DIR_NAME, _PREFIX
from repro.store.store import CONFIG_FILENAME, HORIZON_FILENAME, DurableStore

#: How long the puller waits in ``select()`` per poll (stop-flag latency).
_POLL_SECONDS = 0.1


class Replica:
    """Keep a local store converged with a primary via WAL shipping."""

    def __init__(
        self,
        directory: str | Path,
        primary: tuple[str, int],
        *,
        serve: bool = False,
        serve_host: str = "127.0.0.1",
        serve_port: int = 0,
        sync_policy: str = "always",
        compact_every: int | None = None,
        reconnect_seconds: float = 0.05,
        on_error: Callable[[BaseException], None] | None = None,
        registry=None,
    ) -> None:
        self.directory = Path(directory)
        self.primary = primary
        self._serve = serve
        self._serve_host = serve_host
        self._serve_port = serve_port
        self._sync_policy = sync_policy
        self._compact_every = compact_every
        self._reconnect_seconds = reconnect_seconds
        self._on_error = on_error

        self._service: StoreService | None = None
        self._server: ServerThread | None = None
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._state_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._promoted = False

        #: Diagnostics, readable from any thread.
        self.bootstrap_count = 0
        self.connected = False
        self.last_error: BaseException | None = None
        self._primary_lsn = 0
        self._final_lsn = 0

        self._obs = obs.resolve(registry)
        self._obs_bootstraps = self._obs.counter("replica.bootstraps")
        self._obs_frames = self._obs.counter("replica.frames_applied")
        self._obs_acks = self._obs.counter("replica.ack_round_trips")
        self._obs_lag = self._obs.gauge("replica.lag_lsns")
        self._obs_connected = self._obs.gauge("replica.connected")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def service(self) -> StoreService | None:
        """The replica's live service (``None`` until first bootstrap)."""
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """Where the replica serves reads (requires ``serve=True``)."""
        if self._server is None:
            raise RuntimeError("replica is not serving")
        return self._server.address

    @property
    def last_applied_lsn(self) -> int:
        if self._service is None:
            return self._final_lsn  # what was durable when we stopped
        return self._service.store.last_lsn

    @property
    def primary_lsn(self) -> int:
        """The primary's last LSN as of the latest frame or heartbeat."""
        return self._primary_lsn

    @property
    def lag(self) -> int:
        """Frames the primary has durably committed that we have not."""
        return max(0, self._primary_lsn - self.last_applied_lsn)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Replica":
        if self._thread is not None:
            raise RuntimeError("replica already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._pull_loop, name="repro-store-replica", daemon=True
        )
        self._thread.start()
        return self

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the replica's store is open (bootstrapped/recovered)."""
        if not self._ready.wait(timeout):
            raise TimeoutError(
                f"replica did not become ready within {timeout}s "
                f"(last error: {self.last_error})"
            )

    def wait_caught_up(self, target_lsn: int, timeout: float = 30.0) -> None:
        """Block until ``last_applied_lsn >= target_lsn``."""
        deadline = _monotonic() + timeout
        while self.last_applied_lsn < target_lsn:
            if _monotonic() >= deadline:
                raise TimeoutError(
                    f"replica stuck at lsn {self.last_applied_lsn} "
                    f"(target {target_lsn}, last error: {self.last_error})"
                )
            _sleep(0.005)

    def stop(self) -> None:
        """Stop pulling and serving; the store closes durably."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._state_lock:
            self._teardown_server()
            if self._service is not None:
                self._final_lsn = self._service.store.last_lsn
                self._service.close()
                self._service = None
        self._ready.clear()

    def promote(self) -> StoreService:
        """Failover: stop replicating and open the write path.

        The puller stops (joining cleanly mid-stream), the read-only
        front-end — if one is serving — starts accepting mutations, and
        the returned service is an ordinary writable
        :class:`StoreService` over the replica's durable directory,
        holding exactly the primary's state as of the last applied frame.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._state_lock:
            if self._service is None:
                self._open_store()
            self._promoted = True
            if self._server is not None:
                self._server.read_only = False
        return self._service

    def __enter__(self) -> "Replica":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Local store management
    # ------------------------------------------------------------------
    def _open_store(self) -> None:
        """Open (recover) the local directory and start serving reads."""
        store = DurableStore(
            self.directory,
            sync_policy=self._sync_policy,
            compact_every=self._compact_every,
            registry=self._obs,
        )
        self._service = StoreService(store)
        if self._serve:
            self._server = ServerThread(
                self._service,
                self._serve_host,
                self._serve_port,
                read_only=not self._promoted,
            ).start()
            # Survive a re-bootstrap with a stable address.
            self._serve_host, self._serve_port = self._server.address
        self._ready.set()

    def _teardown_server(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    def _install_snapshot(self, handshake: dict, payload: dict) -> None:
        """Wipe the directory and install the primary's checkpoint.

        The shipped files are the snapshot directory's contents verbatim;
        the horizon file records the snapshot LSN (frames below it exist
        only in this checkpoint), and the config is recreated from the
        handshake's algorithm/shard_capacity so recovery rebuilds the
        exact same structure the primary runs.  Opening the store
        afterwards is ordinary recovery — the bootstrap path *is* the
        crash-recovery path.
        """
        import json
        import os

        lsn = payload["lsn"]
        with self._state_lock:
            self._teardown_server()
            if self._service is not None:
                self._service.close()
                self._service = None
            if self.directory.exists():
                shutil.rmtree(self.directory)
            snap_dir = (
                self.directory / SNAPSHOT_DIR_NAME / f"{_PREFIX}{lsn:010d}"
            )
            snap_dir.mkdir(parents=True)
            for name, body in payload["files"].items():
                if "/" in name or "\\" in name or name.startswith("."):
                    raise ProtocolError(
                        f"refusing snapshot file with unsafe name {name!r}"
                    )
                (snap_dir / name).write_text(body, encoding="utf-8")
            (self.directory / HORIZON_FILENAME).write_text(
                json.dumps({"compacted_through": lsn})
            )
            config = {
                "schema_version": 1,
                "algorithm": handshake["algorithm"],
                "shard_capacity": handshake["shard_capacity"],
            }
            (self.directory / CONFIG_FILENAME).write_text(
                json.dumps(config, sort_keys=True, indent=2) + "\n"
            )
            for path in (snap_dir, self.directory):
                fd = os.open(path, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            self.bootstrap_count += 1
            self._obs_bootstraps.inc()
            self._open_store()

    # ------------------------------------------------------------------
    # The puller
    # ------------------------------------------------------------------
    def _pull_loop(self) -> None:
        try:
            # A replica restart: recover whatever the directory already
            # holds before asking the primary for the rest.
            if (
                self._service is None
                and (self.directory / CONFIG_FILENAME).exists()
            ):
                with self._state_lock:
                    self._open_store()
            while not self._stop.is_set():
                try:
                    self._run_once()
                except (OSError, ProtocolError, ConnectionError) as error:
                    self.last_error = error
                    if self._on_error is not None:
                        self._on_error(error)
                finally:
                    self.connected = False
                    self._obs_connected.set(0)
                self._stop.wait(self._reconnect_seconds)
        except BaseException as error:  # pragma: no cover - fatal surface
            self.last_error = error
            if self._on_error is not None:
                self._on_error(error)
            raise

    def _run_once(self) -> None:
        """One connection: handshake, optional bootstrap, stream frames."""
        after = (
            self._service.store.last_lsn if self._service is not None else -1
        )
        sock = socket.create_connection(self.primary, timeout=5.0)
        try:
            send_message(sock, {"cmd": "REPLICATE", "after": after})
            handshake = self._recv_interruptible(sock)
            if handshake is None:
                return
            if not handshake.get("ok"):
                raise ProtocolError(
                    f"primary rejected replication: {handshake.get('error')}"
                )
            self._primary_lsn = max(
                self._primary_lsn, handshake.get("primary_lsn", 0)
            )
            if handshake["mode"] == "snapshot":
                payload = self._recv_interruptible(sock)
                if payload is None:
                    return
                if payload.get("kind") != "snapshot":
                    raise ProtocolError(
                        f"expected snapshot payload, got {payload.get('kind')!r}"
                    )
                self._install_snapshot(handshake, payload)
                send_message(
                    sock, {"cmd": "ACK", "lsn": self._service.store.last_lsn}
                )
                self._obs_acks.inc()
            self.connected = True
            self._obs_connected.set(1)
            self._stream(sock)
        finally:
            sock.close()

    def _stream(self, sock: socket.socket) -> None:
        while not self._stop.is_set():
            message = self._recv_interruptible(sock)
            if message is None:
                return
            kind = message.get("kind")
            if kind == "frames":
                applied = 0
                try:
                    for line in message["frames"]:
                        if self._stop.is_set():
                            # A kill mid-chunk is safe: every applied frame
                            # is already durable locally, and the next
                            # connect resumes from the store's recovered
                            # last_lsn.
                            return
                        self._service.apply_frame_line(line)
                        applied += 1
                finally:
                    if applied:
                        self._obs_frames.inc(applied)
                self._primary_lsn = max(
                    self._primary_lsn, message.get("primary_lsn", 0)
                )
                send_message(
                    sock, {"cmd": "ACK", "lsn": self._service.store.last_lsn}
                )
                self._obs_acks.inc()
                self._obs_lag.set(self.lag)
            elif kind == "heartbeat":
                self._primary_lsn = max(
                    self._primary_lsn, message.get("primary_lsn", 0)
                )
                self._obs_lag.set(self.lag)
            elif kind == "restart":
                # Compaction outran this stream; reconnect — the next
                # handshake will bootstrap from a covering snapshot.
                return
            else:
                raise ProtocolError(f"unknown push message kind {kind!r}")

    def _recv_interruptible(self, sock: socket.socket) -> dict | None:
        """``recv_message`` that honours the stop flag between messages.

        ``select()`` gates the *first* byte of each message; once a
        message has started arriving the blocking read runs to the frame
        boundary (socket timeout still bounds a stalled peer), so stopping
        never tears a half-consumed frame.
        """
        while not self._stop.is_set():
            readable, _, _ = select.select([sock], [], [], _POLL_SECONDS)
            if readable:
                return recv_message(sock)
        return None


def _monotonic() -> float:
    import time

    return time.monotonic()


def _sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)
