"""Concurrent front-end for the durable store.

:class:`StoreService` serves a :class:`~repro.store.store.DurableStore` to
many threads with a two-level locking protocol:

* a **structure** read-write lock guarding the labeler, the sorted key
  sequence and the WAL — mutations hold it exclusively (they may split or
  merge shards, which moves global state), range scans and full
  iterations hold it shared, so any number of scans overlap each other
  and never observe a half-applied mutation;
* **striped per-shard read-write locks** for point reads — a ``get``
  takes the structure lock shared (a point read walks the labeler's
  directory and shard layout, which a concurrent split/merge rewrites in
  place) *plus* its key's stripe in shared mode, so point reads on
  different stripes never contend with each other, and a writer (which
  takes its key's stripe exclusively *in addition to* the structure lock)
  only blocks the readers of the stripe it is mutating.  The stripe count
  defaults to the labeler's shard count at construction; hashing keys to
  stripes approximates per-shard ownership without pinning stripes to
  shard boundaries that splits would move.

**Snapshot-consistent scans, paginated.**  :meth:`StoreService.range_scan`
and :meth:`StoreService.snapshot_items` materialize their result while
holding the structure lock shared: the returned list is an immutable
point-in-time view — concurrent writers are serialized either entirely
before or entirely after it, never interleaved into it.  Both also support
**pagination** (``range_scan(..., limit=, after=)``,
:meth:`StoreService.scan_pages`, ``snapshot_items(page_size=...)``): the
lock is then held per page and released between pages, so a long scan no
longer pins writers out for the whole store — each page is individually
consistent and the cursor key defines the resumption point.

**Mutation latency tracking.**  Constructed with ``track_latency=True``,
the service stamps every mutation (under its locks, so queueing on a
contended stripe is part of the measured time) into a
:class:`~repro.core.cost.CostTracker` — per-operation move-cost and
wall-clock percentiles via :meth:`StoreService.latency_statistics`, with
batches weight-expanded exactly like the workload runner's.  The clock is
injectable for deterministic tests.

**Background compaction.**  :meth:`StoreService.start_compactor` runs
``compact()`` on a daemon thread whenever the WAL grows past a threshold;
the compaction itself takes the structure lock exclusively, so it is just
another (heavyweight) writer as far as correctness is concerned.

The multi-threaded driver in ``tests/test_store.py`` hammers one service
with interleaved readers, writers and a compactor and asserts that every
scan is sorted and consistent, every read returns a value that was current
at some point, and the final durable state equals the writers' merged
effect.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Hashable, Iterable, Sequence

from repro import obs
from repro.core.cost import CostTracker
from repro.core.parallel import ShardPool, resolve_pool
from repro.store.store import DurableStore


class RWLock:
    """A writer-preferring read-write lock (no reader starvation of writers)."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    class _ReadGuard:
        def __init__(self, lock: "RWLock") -> None:
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_read()

        def __exit__(self, *exc):
            self._lock.release_read()

    class _WriteGuard:
        def __init__(self, lock: "RWLock") -> None:
            self._lock = lock

        def __enter__(self):
            self._lock.acquire_write()

        def __exit__(self, *exc):
            self._lock.release_write()

    def read(self) -> "_ReadGuard":
        return self._ReadGuard(self)

    def write(self) -> "_WriteGuard":
        return self._WriteGuard(self)


class StoreService:
    """Thread-safe durable-store server with striped read-write locking."""

    def __init__(
        self,
        store: DurableStore,
        *,
        stripes: int | None = None,
        track_latency: bool = False,
        clock: Callable[[], float] | None = None,
        parallel: ShardPool | None = None,
        max_workers: int | None = None,
        registry=None,
    ) -> None:
        self._store = store
        if stripes is None:
            stripes = max(8, getattr(store.labeler, "shard_count", 8))
        self._stripes = [RWLock() for _ in range(max(1, stripes))]
        self._structure = RWLock()
        # Per-shard fan-out for batch mutations: the pool attaches to the
        # underlying sharded labeler, so put_many/delete_many dispatch
        # their independent per-shard sub-batches across workers while
        # this service's structure lock (held exclusively for the whole
        # batch) keeps the usual one-writer-at-a-time contract.
        self._pool, self._owns_pool = resolve_pool(parallel, max_workers)
        if self._pool is not None:
            attach = getattr(store.labeler, "set_parallel", None)
            if attach is not None:
                attach(self._pool)
        self._compactor: threading.Thread | None = None
        self._compactor_stop = threading.Event()
        self._compactor_error: BaseException | None = None
        self._latency = CostTracker() if track_latency else None
        self._clock = clock if clock is not None else time.perf_counter
        self._retainer: Callable[[], int | None] | None = None
        # The service inherits the store's registry unless given its own,
        # so one injection at the DurableStore covers the whole stack.
        if registry is None:
            registry = getattr(store, "obs", None)
        self._registry = obs.resolve(registry)
        self._obs_enabled = self._registry.enabled
        self._obs_commands: dict[str, object] = {}
        self._obs_lock_wait = self._registry.histogram("service.lock_wait_seconds")
        self._obs_lock_hold = self._registry.histogram("service.lock_hold_seconds")
        self._obs_compactor_alive = self._registry.gauge("service.compactor_alive")
        self._obs_compactor_errors = self._registry.counter(
            "service.compactor_errors"
        )

    @property
    def registry(self):
        """The observability registry this service records into."""
        return self._registry

    def _command_histogram(self, command: str):
        histogram = self._obs_commands.get(command)
        if histogram is None:
            histogram = self._registry.histogram(f"service.latency.{command}")
            self._obs_commands[command] = histogram
        return histogram

    def _observe_command(
        self, command: str, started: float, acquired: float | None = None
    ) -> None:
        """Record one command's latency (and lock wait vs hold split).

        ``started`` was stamped before any lock was touched, ``acquired``
        right after every lock was held — so wait is pure queueing and
        hold is pure work, and their sum is the client-visible latency the
        per-command histogram sees.
        """
        now = self._clock()
        self._command_histogram(command).observe(max(0.0, now - started))
        if acquired is not None:
            self._obs_lock_wait.observe(max(0.0, acquired - started))
            self._obs_lock_hold.observe(max(0.0, now - acquired))

    # ------------------------------------------------------------------
    @property
    def store(self) -> DurableStore:
        return self._store

    @property
    def stripe_count(self) -> int:
        return len(self._stripes)

    @property
    def pool(self) -> ShardPool | None:
        """The shard pool batch mutations dispatch through, if any."""
        return self._pool

    def _stripe(self, key: Hashable) -> RWLock:
        return self._stripes[hash(key) % len(self._stripes)]

    # ------------------------------------------------------------------
    # Point reads: structure shared + stripe shared
    # ------------------------------------------------------------------
    # The structure lock is NOT optional here: a point read routes
    # through the labeler's rank directory and shard layout, and a writer
    # holding only *another* key's stripe can be mid split/merge — the
    # stripe alone cannot see that.  Shared-mode holds still overlap
    # freely, so reads never serialize against each other.
    def get(self, key, default=None):
        started = self._clock() if self._obs_enabled else 0.0
        with self._structure.read():
            with self._stripe(key).read():
                value = self._store.get(key, default)
        if self._obs_enabled:
            self._observe_command("get", started)
        return value

    def contains(self, key) -> bool:
        started = self._clock() if self._obs_enabled else 0.0
        with self._structure.read():
            with self._stripe(key).read():
                found = key in self._store
        if self._obs_enabled:
            self._observe_command("contains", started)
        return found

    # ------------------------------------------------------------------
    # Mutations: structure exclusive + key stripe(s) exclusive
    # ------------------------------------------------------------------
    def _mutation_stamp(self) -> float:
        """Pre-lock timestamp; 0.0 when nothing will consume it."""
        if self._latency is not None or self._obs_enabled:
            return self._clock()
        return 0.0

    def put(self, key, value) -> None:
        started = self._mutation_stamp()
        with obs.span("service.put"):
            with self._structure.write():
                with self._stripe(key).write():
                    acquired = self._clock() if self._obs_enabled else None
                    self._mutate(lambda: self._store.put(key, value), started, 1)
                    if self._obs_enabled:
                        self._observe_command("put", started, acquired)

    def delete(self, key) -> None:
        started = self._mutation_stamp()
        with obs.span("service.delete"):
            with self._structure.write():
                with self._stripe(key).write():
                    acquired = self._clock() if self._obs_enabled else None
                    self._mutate(lambda: self._store.delete(key), started, 1)
                    if self._obs_enabled:
                        self._observe_command("delete", started, acquired)

    def put_many(self, items: Iterable[tuple[Hashable, object]]) -> int:
        materialized = list(items)
        started = self._mutation_stamp()
        with obs.span("service.put_many"):
            with self._structure.write():
                with self._all_stripes():
                    acquired = self._clock() if self._obs_enabled else None
                    try:
                        return self._mutate(
                            lambda: self._store.put_many(materialized),
                            started,
                            None,
                        )
                    finally:
                        if self._obs_enabled:
                            self._observe_command("put_many", started, acquired)

    def delete_many(self, keys: Iterable[Hashable]) -> int:
        materialized = list(keys)
        started = self._mutation_stamp()
        with obs.span("service.delete_many"):
            with self._structure.write():
                with self._all_stripes():
                    acquired = self._clock() if self._obs_enabled else None
                    try:
                        return self._mutate(
                            lambda: self._store.delete_many(materialized),
                            started,
                            None,
                        )
                    finally:
                        if self._obs_enabled:
                            self._observe_command(
                                "delete_many", started, acquired
                            )

    def _mutate(self, action, started: float, operations: int | None):
        """Run one mutation, recording moves + latency when tracking is on.

        ``started`` was stamped *before* the locks were taken, so queueing
        behind readers or other writers counts toward the observed latency
        — the client-visible number, not just the structure's own work.
        ``operations=None`` weights the event by the mutation's returned
        count (the batch paths).

        A batch that applied **zero** operations (``delete_many([])``,
        ``put_many`` of nothing) still happened and still held the locks
        for a measurable time: it is recorded as a weight-0 event, so the
        event-level latency percentiles see the stall while the
        per-operation views stay untouched — p999 cannot hide a no-op
        stall just because nothing was applied.
        """
        if self._latency is None:
            return action()
        before = self._store.map.costs.total_cost
        result = action()
        elapsed = max(0.0, self._clock() - started)
        weight = operations if operations is not None else int(result)
        self._latency.record_batch(
            self._store.map.costs.total_cost - before,
            weight,
            latency=elapsed,
        )
        return result

    class _AllStripes:
        def __init__(self, stripes: Sequence[RWLock]) -> None:
            self._stripes = stripes

        def __enter__(self):
            for stripe in self._stripes:
                stripe.acquire_write()

        def __exit__(self, *exc):
            for stripe in reversed(self._stripes):
                stripe.release_write()

    def _all_stripes(self) -> "_AllStripes":
        # Batches touch arbitrarily many keys; taking every stripe (in a
        # fixed order, so no deadlock with other batch writers) keeps the
        # per-stripe reader guarantee intact.
        return self._AllStripes(self._stripes)

    # ------------------------------------------------------------------
    # Scans: structure shared lock, held per *page* when paginating
    # ------------------------------------------------------------------
    def range_scan(self, low=None, high=None, *, limit=None, after=None) -> list[tuple]:
        """``(key, value)`` pairs with ``low <= key <= high``, one instant.

        Without ``limit`` this is the full snapshot-consistent scan it has
        always been.  With ``limit`` it returns one *page* (``after``
        resumes strictly past a key), and the structure lock is held only
        while that page materializes — the unit of writer exclusion is a
        page, not the whole interval.
        """
        started = self._clock() if self._obs_enabled else 0.0
        with self._structure.read():
            page = list(self._store.range(low, high, limit=limit, after=after))
        if self._obs_enabled:
            self._observe_command("range_scan", started)
        return page

    def count_range(self, low, high) -> int:
        """Number of keys in ``[low, high]`` (rank arithmetic, no scan)."""
        started = self._clock() if self._obs_enabled else 0.0
        with self._structure.read():
            count = self._store.count_range(low, high)
        if self._obs_enabled:
            self._observe_command("count_range", started)
        return count

    def scan_pages(self, low=None, high=None, *, page_size: int = 256):
        """Yield the interval as pages, releasing the lock between pages.

        Each page is individually snapshot-consistent (its read of the
        structure is serialized against writers), but writers interleave
        *between* pages, so a long scan no longer pins them out for the
        whole store: the cursor key makes the resumption well-defined —
        keys inserted behind the cursor are skipped, keys ahead of it are
        seen — which is the standard paginated-scan contract.
        """
        if page_size < 1:
            raise ValueError("page_size must be positive")
        after = None
        while True:
            page = self.range_scan(low, high, limit=page_size, after=after)
            if not page:
                return
            yield page
            after = page[-1][0]

    def snapshot_items(self, page_size: int | None = None) -> list[tuple]:
        """Every item of the store.

        With ``page_size=None`` (the default) the whole view materializes
        under one shared lock hold — a consistent point-in-time snapshot.
        Passing a ``page_size`` materializes it chunk by chunk through
        :meth:`scan_pages` instead: each chunk is consistent and writers
        run between chunks, trading the single-instant guarantee for not
        blocking the write path on huge stores.
        """
        if page_size is None:
            with self._structure.read():
                return list(self._store.items())
        items: list[tuple] = []
        for page in self.scan_pages(page_size=page_size):
            items.extend(page)
        return items

    def size(self) -> int:
        with self._structure.read():
            return len(self._store)

    # ------------------------------------------------------------------
    # Mutation latency statistics (``track_latency=True`` services)
    # ------------------------------------------------------------------
    @property
    def mutation_costs(self) -> CostTracker | None:
        """The mutation tracker, or ``None`` when tracking is off."""
        return self._latency

    def latency_statistics(self) -> dict[str, float]:
        """Move-cost and wall-clock percentiles of the tracked mutations.

        Empty when the service was built without ``track_latency=True`` or
        no mutation has been recorded yet.  Batches are weight-expanded:
        ``p999`` is a per-operation number on the same scale for singleton
        and ``put_many`` traffic.  Zero-applied batches carry no
        operations but still count as events, so the event-level keys
        (``events``, ``latency_event_p999``, ``latency_max``) expose
        no-op stalls the per-operation percentiles cannot see.
        """
        if self._latency is None or not self._latency.events:
            return {}
        stats = {
            "operations": float(self._latency.operations),
            "events": float(self._latency.events),
            "total_moves": float(self._latency.total_cost),
            "p50": self._latency.percentile(0.50),
            "p99": self._latency.percentile(0.99),
            "p999": self._latency.percentile(0.999),
        }
        # latency_summary() is the single naming point for latency keys:
        # canonical per-operation (latency_p*) and per-event
        # (latency_event_*) names plus the historical aliases.
        stats.update(self._latency.latency_summary())
        return stats

    # ------------------------------------------------------------------
    # Checkpoints (writers, as far as locking is concerned)
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        with self._structure.write():
            return self._store.snapshot()

    def compact(self) -> int:
        with self._structure.write():
            retain = self._retainer() if self._retainer is not None else None
            return self._store.compact(retain_after=retain)

    def verify(self) -> dict:
        with self._structure.read():
            return self._store.verify()

    def shard_statistics(self) -> dict[str, float]:
        """Point-in-time labeler shard statistics (structure lock shared).

        Empty for labelers that do not expose
        :meth:`~repro.core.sharded.ShardedLabeler.shard_statistics`.
        """
        with self._structure.read():
            stats = getattr(self._store.labeler, "shard_statistics", None)
            return dict(stats()) if callable(stats) else {}

    @property
    def physical_backend(self) -> str | None:
        """Backend name of the labeler's physical arrays, if it has any."""
        return getattr(self._store.labeler, "physical_backend", None)

    # ------------------------------------------------------------------
    # Replication hooks (the networked server builds on these)
    # ------------------------------------------------------------------
    @property
    def durable_horizon(self) -> int:
        """The LSN below which frames exist only in snapshots."""
        with self._structure.read():
            return self._store.durable_horizon

    def ship_frames(
        self, after_lsn: int, *, offset: int = 0, epoch: int | None = None
    ) -> tuple[list[tuple[int, str]], int, int]:
        """Thread-safe view of the live frame stream for replica feeders.

        Holds the structure lock shared, so shipped frames are always a
        durable prefix — never a mid-mutation torn read.
        """
        with self._structure.read():
            return self._store.ship_frames(after_lsn, offset=offset, epoch=epoch)

    def apply_frame_line(self, line: str) -> int:
        """Apply one shipped frame (replica ingest) under full exclusion."""
        with self._structure.write():
            with self._all_stripes():
                return self._store.apply_frame_line(line)

    def snapshot_archive(self) -> tuple[int, dict[str, str]]:
        """The newest checkpoint's files, for replica bootstrap.

        Takes the structure lock exclusively: when no checkpoint exists
        one is written first, and the returned files are read while no
        writer can prune them from under the reader.
        """
        with self._structure.write():
            return self._store.snapshot_archive()

    def set_compaction_retainer(
        self, retainer: Callable[[], int | None] | None
    ) -> None:
        """Install the replication server's retention floor.

        ``retainer()`` returns the smallest LSN acknowledged by every
        connected replica (or ``None`` for no constraint); ``compact``
        keeps frames past it so a live replica's catch-up stream never
        loses its tail to compaction.  Replicas that are *not* connected
        do not hold the log hostage — they re-bootstrap from a snapshot.
        """
        self._retainer = retainer

    def add_commit_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(lsn)`` after every durable WAL append."""
        self._store.wal.add_listener(listener)

    def remove_commit_listener(self, listener: Callable[[int], None]) -> None:
        self._store.wal.remove_listener(listener)

    # ------------------------------------------------------------------
    # Background compaction
    # ------------------------------------------------------------------
    def start_compactor(
        self,
        *,
        wal_frame_threshold: int = 1024,
        poll_seconds: float = 0.05,
        on_compact: Callable[[int], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
    ) -> None:
        """Run compaction on a daemon thread when the WAL grows too long.

        The loop survives failing iterations: an exception from
        ``compact()`` or the ``on_compact`` callback is caught per poll,
        stored (:attr:`last_compactor_error`), reported through the
        ``on_error`` hook, and the thread keeps polling — a one-off
        failure (a full disk that recovers, a flaky callback) must not
        silently kill the compactor and let the WAL grow without bound.
        :attr:`compactor_alive` says whether the thread is still running.
        """
        if self._compactor is not None:
            raise RuntimeError("compactor already running")
        self._compactor_stop.clear()
        self._compactor_error = None

        def loop() -> None:
            self._obs_compactor_alive.set(1)
            try:
                while not self._compactor_stop.wait(poll_seconds):
                    try:
                        if (
                            self._store.wal_frames_since_snapshot
                            >= wal_frame_threshold
                        ):
                            lsn = self.compact()
                            if on_compact is not None:
                                on_compact(lsn)
                    except Exception as error:
                        self._compactor_error = error
                        self._obs_compactor_errors.inc()
                        if on_error is not None:
                            try:
                                on_error(error)
                            except Exception:
                                # A broken error hook must not kill the loop
                                # the hook exists to keep observable.
                                pass
            finally:
                self._obs_compactor_alive.set(0)

        self._compactor = threading.Thread(
            target=loop, name="repro-store-compactor", daemon=True
        )
        self._compactor.start()

    @property
    def compactor_alive(self) -> bool:
        """Whether the background compactor thread is currently running."""
        return self._compactor is not None and self._compactor.is_alive()

    @property
    def last_compactor_error(self) -> BaseException | None:
        """The most recent exception a compactor iteration swallowed."""
        return self._compactor_error

    def stop_compactor(self) -> None:
        if self._compactor is not None:
            self._compactor_stop.set()
            self._compactor.join()
            self._compactor = None

    def close(self) -> None:
        self.stop_compactor()
        with self._structure.write():
            self._store.close()
        if self._pool is not None:
            detach = getattr(self._store.labeler, "set_parallel", None)
            if detach is not None:
                detach(None)
            if self._owns_pool:
                self._pool.close()
            self._pool = None
