"""Per-shard snapshot checkpoints for the durable store.

A snapshot is a *directory* under ``<store>/snapshots/`` named by the LSN
it covers::

    snapshots/snapshot-0000000042/
        manifest.json     {"schema_version", "lsn", "labeler", "shard_files",
                           "checksums": {filename: crc32}}
        shard-0000.json   one file per shard: the shard's exact labeler
        shard-0001.json   snapshot plus the values of the keys it holds
        ...

The sharded engine's snapshot document is split so each shard's state is
its own file — a shard is the store's unit of recovery and (future) unit of
distribution, and per-shard files keep any one write small.  An engine
whose labeler is not sharded (a bounded ``DurableMap``) degenerates to a
single ``shard-0000.json``.

Writing is crash-safe: the files land in a ``*.tmp`` directory first, each
fsynced, then the directory is atomically renamed into place and the parent
fsynced.  Loading verifies every file against the manifest checksums and
falls back to the next-newest snapshot when anything is missing or
corrupt, so a crash *during* snapshotting can never poison recovery.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.store import codec
from repro.store.wal import _fsync_directory

SNAPSHOT_SCHEMA_VERSION = 1

SNAPSHOT_DIR_NAME = "snapshots"
_PREFIX = "snapshot-"


@dataclass
class SnapshotInfo:
    """One on-disk snapshot checkpoint."""

    path: Path
    lsn: int


def snapshot_root(store_dir: str | Path) -> Path:
    return Path(store_dir) / SNAPSHOT_DIR_NAME


def list_snapshots(store_dir: str | Path) -> list[SnapshotInfo]:
    """All snapshot directories, oldest first (invalid names skipped)."""
    root = snapshot_root(store_dir)
    found: list[SnapshotInfo] = []
    if not root.exists():
        return found
    for entry in sorted(root.iterdir()):
        name = entry.name
        if not entry.is_dir() or not name.startswith(_PREFIX):
            continue
        if name.endswith(".tmp"):
            continue  # a crash mid-write left this; never trusted
        try:
            lsn = int(name[len(_PREFIX) :])
        except ValueError:
            continue
        found.append(SnapshotInfo(path=entry, lsn=lsn))
    found.sort(key=lambda info: info.lsn)
    return found


def write_snapshot(store_dir: str | Path, lsn: int, labeler_state: dict,
                   values_by_shard: list[list]) -> SnapshotInfo:
    """Persist one checkpoint covering every WAL frame up to ``lsn``.

    ``labeler_state`` is the labeler's :meth:`~repro.core.interface
    .ListLabeler.snapshot` document; when it is the sharded format its
    per-shard entries are split into ``shard-NNNN.json`` files.
    ``values_by_shard`` carries, aligned with the shard list, the
    ``[key, value]`` pairs of each shard's keys.
    """
    root = snapshot_root(store_dir)
    root.mkdir(parents=True, exist_ok=True)
    final = root / f"{_PREFIX}{lsn:010d}"
    tmp = root / f"{_PREFIX}{lsn:010d}.tmp"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()

    if labeler_state.get("format") == "sharded":
        skeleton = {key: value for key, value in labeler_state.items() if key != "shards"}
        shard_states = labeler_state["shards"]
    else:
        skeleton = {"format": "single"}
        shard_states = [labeler_state]

    checksums: dict[str, int] = {}
    shard_files: list[str] = []
    for index, shard_state in enumerate(shard_states):
        name = f"shard-{index:04d}.json"
        body = codec.dumps(
            {
                "labeler": shard_state,
                "entries": values_by_shard[index] if index < len(values_by_shard) else [],
            }
        )
        _write_file(tmp / name, body)
        checksums[name] = codec.checksum(body)
        shard_files.append(name)

    manifest = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "lsn": lsn,
        "labeler": skeleton,
        "shard_files": shard_files,
        "checksums": checksums,
    }
    _write_file(tmp / "manifest.json", codec.dumps(manifest))

    if final.exists():
        shutil.rmtree(final)
    os.replace(tmp, final)
    _fsync_directory(root)
    return SnapshotInfo(path=final, lsn=lsn)


class SnapshotLoadError(RuntimeError):
    """A snapshot directory failed validation (corrupt or incomplete)."""


def load_snapshot(info: SnapshotInfo) -> tuple[dict, list[list]]:
    """Read and verify one checkpoint; returns ``(labeler_state, entries)``.

    ``entries`` is the concatenated ``[key, value]`` pairs in key order.
    Raises :class:`SnapshotLoadError` on any integrity problem.
    """
    manifest_path = info.path / "manifest.json"
    try:
        manifest = codec.loads(manifest_path.read_text())
    except (OSError, ValueError) as error:
        raise SnapshotLoadError(f"unreadable manifest in {info.path}: {error}")
    if manifest.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotLoadError(
            f"snapshot {info.path} has schema version "
            f"{manifest.get('schema_version')!r}; this build reads "
            f"{SNAPSHOT_SCHEMA_VERSION}"
        )
    shard_states: list[dict] = []
    entries: list[list] = []
    for name in manifest["shard_files"]:
        path = info.path / name
        try:
            body = path.read_text()
        except OSError as error:
            raise SnapshotLoadError(f"missing shard file {path}: {error}")
        if codec.checksum(body) != manifest["checksums"].get(name):
            raise SnapshotLoadError(f"checksum mismatch in {path}")
        document = codec.loads(body)
        shard_states.append(document["labeler"])
        entries.extend(document["entries"])

    skeleton = manifest["labeler"]
    if skeleton.get("format") == "sharded":
        labeler_state = dict(skeleton)
        labeler_state["shards"] = shard_states
    else:
        labeler_state = shard_states[0] if shard_states else {"format": "elements", "size": 0, "elements": []}
    return labeler_state, entries


def load_newest_valid(store_dir: str | Path) -> tuple[SnapshotInfo | None, dict | None, list[list]]:
    """The newest checkpoint that passes validation (or none at all)."""
    for info in reversed(list_snapshots(store_dir)):
        try:
            labeler_state, entries = load_snapshot(info)
        except SnapshotLoadError:
            continue
        return info, labeler_state, entries
    return None, None, []


def prune_snapshots(store_dir: str | Path, *, keep: int = 1) -> int:
    """Delete all but the ``keep`` newest snapshots; returns the count removed."""
    snapshots = list_snapshots(store_dir)
    removed = 0
    for info in snapshots[: max(0, len(snapshots) - keep)]:
        shutil.rmtree(info.path, ignore_errors=True)
        removed += 1
    return removed


def _write_file(path: Path, body: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
