"""The durable labeled store: WAL + snapshots + crash recovery.

:class:`DurableStore` wraps an unbounded :class:`~repro.applications
.ordered_map.PackedMemoryMap` (a :class:`~repro.core.sharded
.ShardedLabeler` clustered index over any registered algorithm's shards)
and makes its state survive crashes:

* every mutation is framed into the :class:`~repro.store.wal
  .WriteAheadLog` **before** it touches memory (batch mutations are one
  atomic frame);
* :meth:`DurableStore.snapshot` checkpoints the exact per-shard labeler
  state (layout, RNG state, pending rebalance tasks — see the algorithms'
  ``_snapshot_extra`` hooks) plus the values, crash-safely;
* opening the store runs **recovery**: newest valid snapshot, then replay
  of the WAL tail past it, after torn-tail truncation;
* :meth:`DurableStore.compact` snapshots and then truncates the log, so
  the WAL stays proportional to the write traffic since the last
  checkpoint rather than to the store's lifetime.

Determinism contract: recovery reproduces the *exact* labeler state (key
order, labels, per-shard layout) the uninterrupted run had after the last
durable frame — the crash-injection differential in ``tests/test_store.py``
asserts this at every frame boundary for every registered shard algorithm.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Iterable, Iterator

from repro import obs
from repro.applications.ordered_map import PackedMemoryMap
from repro.core.interface import ListLabeler
from repro.store import snapshot as snapshot_io
from repro.store.factories import DEFAULT_ALGORITHM, resolve_factory
from repro.store.wal import WALTruncateReport, WriteAheadLog

CONFIG_SCHEMA_VERSION = 1
CONFIG_FILENAME = "store.json"
WAL_FILENAME = "wal.jsonl"
LOCK_FILENAME = "store.lock"
HORIZON_FILENAME = "horizon.json"


class StoreError(RuntimeError):
    """Configuration or integrity failure of a durable store."""


@dataclass
class RecoveryReport:
    """What opening a store found and did."""

    #: LSN of the snapshot recovery started from (0 = replayed from empty).
    snapshot_lsn: int
    #: Intact frames found in the log.
    wal_frames_seen: int
    #: Frames actually applied (those past the snapshot).
    frames_replayed: int
    #: Bytes dropped by torn-tail truncation (0 for a clean log).
    truncated_bytes: int
    truncation_reason: str | None
    #: Highest durable LSN after recovery.
    last_lsn: int


class DurableStore:
    """A crash-recoverable sorted key→value store.

    Parameters
    ----------
    directory:
        Home of the store (created on first open).  Layout:
        ``store.json`` (config), ``wal.jsonl`` (the log),
        ``snapshots/snapshot-<lsn>/`` (checkpoints).
    algorithm:
        Name of the shard algorithm in :data:`repro.store.factories
        .SHARD_FACTORIES`.  Fixed at creation; a mismatch on reopen is an
        error (recovering with a different algorithm would silently build
        a different structure).
    shard_factory:
        Explicit factory overriding the registry lookup (pass the same
        callable on every open; ``algorithm`` still names it on disk).
    shard_capacity:
        Fixed capacity of every shard.
    sync_policy:
        WAL durability: ``"always"`` (fsync per frame), ``"batch"``
        (fsync on :meth:`sync`/:meth:`close`), ``"never"`` (tests).
    compact_every:
        Auto-compaction threshold: snapshot + truncate once this many
        frames accumulate past the latest checkpoint (``None`` = manual).
    snapshot_keep:
        Checkpoints retained by pruning (the newest is always kept).
    physical_backend:
        Physical-array backend for embedding-based shard algorithms (see
        :mod:`repro.core.physical_backends`).  A per-open speed knob: all
        backends produce bit-identical structures, so it is never recorded
        on disk and may differ between opens of the same store.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        algorithm: str | None = None,
        shard_factory: Callable[[int], ListLabeler] | None = None,
        shard_capacity: int | None = None,
        sync_policy: str = "always",
        compact_every: int | None = None,
        snapshot_keep: int = 2,
        registry=None,
        physical_backend: str | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock_handle = self._acquire_directory_lock()
        try:
            self._config = self._load_or_create_config(algorithm, shard_capacity)
            self.algorithm = self._config["algorithm"]
            self.shard_capacity = self._config["shard_capacity"]
            if shard_factory is None:
                # Registry names resolve; a store created with a custom
                # factory must be reopened with that same callable (the
                # config records the name so the omission is a loud error,
                # not a silent mis-recovery).  ``physical_backend`` is a
                # speed knob, not a structural one — every backend yields
                # bit-identical layouts, so it is per-open, never on disk.
                shard_factory = resolve_factory(
                    self.algorithm, physical_backend=physical_backend
                )
            elif physical_backend is not None:
                raise ValueError(
                    "pass shard_factory or physical_backend, not both "
                    "(bake the backend into the custom factory instead)"
                )
            self._shard_factory = shard_factory
            self.compact_every = compact_every
            self.snapshot_keep = max(1, snapshot_keep)
            self.obs = obs.resolve(registry)
            self._obs_snapshots = self.obs.counter("store.snapshots")
            self._obs_compactions = self.obs.counter("store.compactions")
            self._obs_recoveries = self.obs.counter("store.recoveries")
            self._obs_replayed = self.obs.counter("store.recovery.frames_replayed")
            self._map = PackedMemoryMap(
                capacity=None,
                labeler_factory=shard_factory,
                shard_capacity=self.shard_capacity,
            )
            attach = getattr(self._map.labeler, "set_registry", None)
            if callable(attach):
                attach(self.obs)
            self._wal = WriteAheadLog(
                self.directory / WAL_FILENAME,
                sync_policy=sync_policy,
                registry=self.obs,
            )
            self._frames_since_snapshot = 0
            self._last_snapshot_lsn = 0
            self._horizon = 0
            #: Report of the most recent :meth:`compact` WAL rewrite.
            self.last_truncate_report: WALTruncateReport | None = None
            self.recovery = self._recover()
        except BaseException:
            self._release_directory_lock()
            raise

    # ------------------------------------------------------------------
    # Single-writer guard
    # ------------------------------------------------------------------
    def _acquire_directory_lock(self):
        """One live ``DurableStore`` per directory, enforced with ``flock``.

        Two concurrent opens would interleave WAL appends with overlapping
        LSNs, and the next recovery's sequence check would truncate —
        i.e. silently destroy — acknowledged writes.  An OS advisory lock
        makes the second open fail loudly instead, and evaporates with
        the process (so a SIGKILL never leaves a stale lock behind).
        """
        path = self.directory / LOCK_FILENAME
        handle = open(path, "a+")
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platforms
            return handle
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise StoreError(
                f"store directory {self.directory} is locked by another "
                f"live DurableStore; close it first"
            ) from None
        return handle

    def _release_directory_lock(self) -> None:
        if self._lock_handle is not None:
            self._lock_handle.close()  # closing drops the flock
            self._lock_handle = None

    # ------------------------------------------------------------------
    # Config
    # ------------------------------------------------------------------
    def _load_or_create_config(
        self, algorithm: str | None, shard_capacity: int | None
    ) -> dict:
        path = self.directory / CONFIG_FILENAME
        if path.exists():
            config = json.loads(path.read_text())
            if config.get("schema_version") != CONFIG_SCHEMA_VERSION:
                raise StoreError(
                    f"store config schema {config.get('schema_version')!r} "
                    f"unsupported (this build reads {CONFIG_SCHEMA_VERSION})"
                )
            if algorithm is not None and algorithm != config["algorithm"]:
                raise StoreError(
                    f"store was created with algorithm "
                    f"{config['algorithm']!r}; refusing to reopen as "
                    f"{algorithm!r}"
                )
            if shard_capacity is not None and shard_capacity != config["shard_capacity"]:
                raise StoreError(
                    f"store was created with shard_capacity "
                    f"{config['shard_capacity']}; refusing to reopen with "
                    f"{shard_capacity}"
                )
            return config
        config = {
            "schema_version": CONFIG_SCHEMA_VERSION,
            "algorithm": algorithm or DEFAULT_ALGORITHM,
            "shard_capacity": shard_capacity or 128,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(config, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        return config

    # ------------------------------------------------------------------
    # Durable horizon (what compaction promised is recoverable)
    # ------------------------------------------------------------------
    def _read_horizon(self) -> int:
        """The LSN through which the WAL has been truncated.

        Compaction removes log frames only after a checkpoint covering
        them is durable; this record is what lets recovery *detect* — as
        a loud error instead of silent data loss — the case where that
        checkpoint later turns out corrupt and only an older one loads.
        """
        path = self.directory / HORIZON_FILENAME
        if not path.exists():
            return 0
        return int(json.loads(path.read_text()).get("compacted_through", 0))

    def _write_horizon(self, lsn: int) -> None:
        path = self.directory / HORIZON_FILENAME
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"compacted_through": lsn}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._horizon = lsn

    @property
    def durable_horizon(self) -> int:
        """The LSN through which the WAL has been compacted away.

        Frames at or below this LSN are recoverable only from snapshots —
        a replica whose applied LSN is below the horizon cannot catch up
        from the log and must re-bootstrap from a checkpoint.
        """
        return self._horizon

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveryReport:
        info, labeler_state, entries = snapshot_io.load_newest_valid(self.directory)
        snapshot_lsn = 0
        if info is not None:
            self._map.restore_state({"labeler": labeler_state, "entries": entries})
            snapshot_lsn = info.lsn
            self._last_snapshot_lsn = info.lsn
        report = self._wal.open()
        self._wal.ensure_next_lsn(snapshot_lsn + 1)
        if report.frames and report.frames[0]["lsn"] > snapshot_lsn + 1:
            raise StoreError(
                f"WAL begins at lsn {report.frames[0]['lsn']} but the newest "
                f"snapshot covers lsn {snapshot_lsn}: frames are missing"
            )
        replayed = 0
        for frame in report.frames:
            if frame["lsn"] <= snapshot_lsn:
                continue
            self._apply(frame["op"], frame)
            replayed += 1
        self._frames_since_snapshot = replayed
        self._obs_recoveries.inc()
        if replayed:
            self._obs_replayed.inc(replayed)
        last_lsn = max(report.last_lsn, snapshot_lsn)
        horizon = self._horizon = self._read_horizon()
        if last_lsn < horizon:
            # Compaction dropped frames up to `horizon` on the promise of
            # a durable checkpoint covering them; recovering to less means
            # that checkpoint is gone/corrupt and acknowledged writes
            # would silently vanish.  Refuse instead.
            raise StoreError(
                f"recovered state ends at lsn {last_lsn} but the log was "
                f"compacted through lsn {horizon}: the covering snapshot "
                f"is missing or corrupt, and replaying the truncated WAL "
                f"cannot reproduce the acknowledged writes in between"
            )
        self._wal.ensure_next_lsn(horizon + 1)
        return RecoveryReport(
            snapshot_lsn=snapshot_lsn,
            wal_frames_seen=len(report.frames),
            frames_replayed=replayed,
            truncated_bytes=report.truncated_bytes,
            truncation_reason=report.truncation_reason,
            last_lsn=last_lsn,
        )

    def _apply(self, op: str, payload: dict) -> None:
        """Apply one frame to the in-memory map (live path and replay)."""
        if op == "put":
            self._map[payload["key"]] = payload["value"]
        elif op == "del":
            del self._map[payload["key"]]
        elif op == "put_many":
            self._map.update_many(
                (key, value) for key, value in payload["items"]
            )
        elif op == "del_many":
            self._map.delete_many(payload["keys"])
        else:
            raise StoreError(f"unknown WAL op {op!r}")

    # ------------------------------------------------------------------
    # Mutations (log first, then apply)
    # ------------------------------------------------------------------
    def _commit(self, op: str, payload: dict) -> None:
        with obs.span("store.commit"):
            self._commit_inner(op, payload)

    def _commit_inner(self, op: str, payload: dict) -> None:
        offset = self._wal.tell()
        lsn = self._wal.append(op, payload)
        try:
            self._apply(op, payload)
        except BaseException:
            # The apply failed (e.g. a key that does not compare against
            # the stored ones): retract the frame, or it would poison
            # every future recovery — replay fails on it deterministically
            # and the store could never be reopened.
            self._wal.rollback_last(offset, lsn)
            raise
        self._frames_since_snapshot += 1
        if (
            self.compact_every is not None
            and self._frames_since_snapshot >= self.compact_every
        ):
            self.compact()

    def put(self, key: Hashable, value) -> None:
        """Upsert one key (one WAL frame)."""
        self._commit("put", {"key": key, "value": value})

    __setitem__ = put

    def delete(self, key: Hashable) -> None:
        """Delete one key; ``KeyError`` (before logging) when absent."""
        if key not in self._map:
            raise KeyError(key)
        self._commit("del", {"key": key})

    __delitem__ = delete

    def put_many(self, items: Iterable[tuple[Hashable, object]]) -> int:
        """Atomic bulk upsert: one WAL frame, one merged labeler rebalance."""
        materialized = [[key, value] for key, value in items]
        if not materialized:
            return 0
        self._commit("put_many", {"items": materialized})
        return len(materialized)

    def delete_many(self, keys: Iterable[Hashable]) -> int:
        """Atomic bulk delete: every key must exist (checked before logging)."""
        targets = sorted(set(keys))
        for key in targets:
            if key not in self._map:
                raise KeyError(key)
        if not targets:
            return 0
        self._commit("del_many", {"keys": targets})
        return len(targets)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key, default=None):
        return self._map.get(key, default)

    def __getitem__(self, key):
        return self._map[key]

    def __contains__(self, key) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)

    def keys(self) -> list:
        return self._map.keys()

    def items(self) -> Iterator[tuple]:
        return self._map.items()

    def range(self, low=None, high=None, *, limit=None, after=None) -> Iterator[tuple]:
        """Items with ``low <= key <= high``, streamed through the labeler
        cursor; ``limit``/``after`` page the scan (see
        :meth:`repro.applications.ordered_map.PackedMemoryMap.range`)."""
        return self._map.range(low, high, limit=limit, after=after)

    def count_range(self, low, high) -> int:
        """Number of keys in ``[low, high]`` (two rank searches, no scan)."""
        return self._map.count_range(low, high)

    @property
    def map(self) -> PackedMemoryMap:
        return self._map

    @property
    def labeler(self) -> ListLabeler:
        return self._map.labeler

    @property
    def wal(self) -> WriteAheadLog:
        """The underlying log (replication feeders register listeners here)."""
        return self._wal

    @property
    def last_lsn(self) -> int:
        return self._wal.next_lsn - 1

    @property
    def wal_frames_since_snapshot(self) -> int:
        return self._frames_since_snapshot

    # ------------------------------------------------------------------
    # Replication: frame shipping (primary) and shipped apply (replica)
    # ------------------------------------------------------------------
    def ship_frames(
        self, after_lsn: int, *, offset: int = 0, epoch: int | None = None
    ) -> tuple[list[tuple[int, str]], int, int]:
        """Validated raw WAL lines with ``lsn > after_lsn`` (see
        :meth:`~repro.store.wal.WriteAheadLog.read_frames`)."""
        return self._wal.read_frames(after_lsn, offset=offset, epoch=epoch)

    def apply_frame_line(self, line: str) -> int:
        """Apply one frame shipped from a primary (replica ingest path).

        The raw line is appended to this store's own WAL **verbatim**
        (after full re-validation: CRC, version, LSN contiguity) and then
        applied through the same :meth:`_apply` recovery uses — so a
        replica's durable state is, frame for frame, byte-identical to
        the primary's, and a replica restart is just ordinary recovery.
        Returns the applied frame's LSN.
        """
        offset = self._wal.tell()
        frame = self._wal.append_frame_line(line)
        lsn = frame["lsn"]
        try:
            self._apply(frame["op"], frame)
        except BaseException:
            self._wal.rollback_last(offset, lsn)
            raise
        self._frames_since_snapshot += 1
        if (
            self.compact_every is not None
            and self._frames_since_snapshot >= self.compact_every
        ):
            self.compact()
        return lsn

    def snapshot_archive(self) -> tuple[int, dict[str, str]]:
        """The newest checkpoint as ``(lsn, {filename: body})``.

        The replica-bootstrap payload: the manifest plus every shard file
        of the newest snapshot, read back verbatim (their checksums are
        already inside the manifest, so the receiving side re-validates
        with the ordinary snapshot loader).  Takes a fresh checkpoint
        first when none exists yet.
        """
        snapshots = snapshot_io.list_snapshots(self.directory)
        if not snapshots:
            self.snapshot()
            snapshots = snapshot_io.list_snapshots(self.directory)
        info = snapshots[-1]
        files = {
            entry.name: entry.read_text()
            for entry in sorted(info.path.iterdir())
            if entry.is_file()
        }
        return info.lsn, files

    # ------------------------------------------------------------------
    # Checkpoints and compaction
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Write a checkpoint covering everything logged so far.

        Returns the LSN the checkpoint covers.  The WAL is fsynced first
        (a snapshot must never be newer than the durable log, or recovery
        after a crash could resurrect operations the log lost).
        """
        with obs.span("store.snapshot"):
            self._wal.sync()
            lsn = self.last_lsn
            snapshot_io.write_snapshot(
                self.directory,
                lsn,
                self._map.labeler.snapshot(),
                self._values_by_shard(),
            )
            snapshot_io.prune_snapshots(self.directory, keep=self.snapshot_keep)
            self._last_snapshot_lsn = lsn
            self._frames_since_snapshot = 0
            self._obs_snapshots.inc()
        return lsn

    def compact(self, *, retain_after: int | None = None) -> int:
        """Snapshot, then drop the WAL prefix the snapshot made redundant.

        The durable horizon is recorded *between* the two steps: once the
        checkpoint is durable and before any frame is dropped, so a crash
        anywhere in the sequence leaves either the frames or a horizon
        that the (durable) checkpoint satisfies.

        ``retain_after`` keeps frames with ``lsn > retain_after`` in the
        log even though the new checkpoint covers them — the replication
        server passes the slowest connected replica's acknowledged LSN so
        compaction never steals the tail a replica is still streaming.

        The rewrite re-validates every retained frame (see
        :meth:`~repro.store.wal.WriteAheadLog.truncate_through`).  If any
        retained frame fails validation, the whole retained tail is
        untrusted; since the checkpoint just written covers every frame
        anyway, the escalation is to truncate the log *completely* — the
        horizon moves to the checkpoint LSN, replicas below it fall back
        to snapshot bootstrap, and — crucially — the log never keeps a
        frame a recovery would choke on, and never develops an LSN gap
        between its tail and the next live append.
        """
        with obs.span("store.compact"):
            lsn = self.snapshot()
            cut = lsn if retain_after is None else max(0, min(lsn, retain_after))
            self._write_horizon(cut)
            report = self._wal.truncate_through(cut)
            if report.suspect_reason is not None:
                self._write_horizon(lsn)
                full = self._wal.truncate_through(lsn)
                full.suspect_reason = report.suspect_reason
                full.suspect_frames = report.suspect_frames
                full.suspect_bytes = report.suspect_bytes
                report = full
            self.last_truncate_report = report
            self._obs_compactions.inc()
        return lsn

    def _values_by_shard(self) -> list[list]:
        labeler = self._map.labeler
        shards = getattr(labeler, "shards", None)
        if shards is None:
            return [[[key, self._map[key]] for key in self._map.keys()]]
        return [
            [[key, self._map[key]] for key in shard.elements()]
            for shard in shards
        ]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self) -> dict:
        """Check every integrity invariant; returns a report dict.

        Raises on failure.  Covers: physical layout vs. logical keys,
        the sharding engine's structural invariants, sorted key order,
        and key/value bijection.
        """
        self._map.check()
        check = getattr(self._map.labeler, "check_consistency", None)
        if callable(check):
            check()
        keys = self._map.keys()
        for left, right in zip(keys, keys[1:]):
            if not left < right:
                raise StoreError(f"key order violated: {left!r} !< {right!r}")
        values_keys = {key for key, _ in self._map.items()}
        if values_keys != set(keys):
            raise StoreError("value map diverged from the key sequence")
        return {
            "keys": len(keys),
            "last_lsn": self.last_lsn,
            "snapshot_lsn": self._last_snapshot_lsn,
            "wal_frames_since_snapshot": self._frames_since_snapshot,
            "shards": getattr(self._map.labeler, "shard_count", 1),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Explicit group-commit barrier for ``sync_policy="batch"``."""
        self._wal.sync()

    def close(self) -> None:
        self._wal.close()
        self._release_directory_lock()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DurableStore({str(self.directory)!r}, algorithm="
            f"{self.algorithm!r}, keys={len(self)}, last_lsn={self.last_lsn})"
        )
