"""Length-prefixed JSON wire protocol for the networked store.

One *message* on the wire is a 4-byte big-endian length followed by that
many bytes of canonical JSON — the same tagged codec the WAL and the
snapshots use (:mod:`repro.store.codec`), so every key and value a
:class:`~repro.store.store.DurableStore` can hold (``Fraction`` keys,
tuples, bytes, non-string dict keys) round-trips the network unchanged::

    +----------------+---------------------------+
    | length (>I, 4) | codec JSON (UTF-8, length)|
    +----------------+---------------------------+

Requests are dicts with a ``cmd`` key (``GET``, ``PUT``, ``DELETE``,
``PUT_MANY``, ``DELETE_MANY``, ``RANGE``, ``COUNT_RANGE``,
``SCAN_PAGES``, ``SIZE``, ``CONTAINS``, ``VERIFY``, ``STATS``,
``METRICS``, ``PING``, ``REPLICATE``, ``ACK``); responses carry ``ok``
plus either the result
fields or ``{"ok": false, "code": ..., "error": ...}``.  Replication
switches the connection into a push stream of ``kind``-tagged messages
(``frames`` / ``heartbeat`` / ``snapshot`` / ``restart``) flowing
server→replica, with ``ACK`` messages flowing back.

Both an asyncio flavour (:func:`read_message` / :func:`write_message`,
used by the server) and a blocking-socket flavour (:func:`recv_message` /
:func:`send_message`, used by the client and the replica puller) are
provided over the identical framing.
"""

from __future__ import annotations

import socket
import struct

from repro.store import codec

#: Hard ceiling on one message's body; a longer prefix means a corrupt or
#: hostile stream, and aborting beats allocating an arbitrary buffer.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame, an oversized length prefix, or a truncated body."""


class OversizedFrameError(ProtocolError):
    """A length prefix or body beyond :data:`MAX_MESSAGE_BYTES`.

    Split out from the generic :class:`ProtocolError` so the server can
    account oversized frames as their own error family."""


def encode_message(message: dict) -> bytes:
    """Frame one message: length prefix + canonical codec JSON."""
    body = codec.dumps(message).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise OversizedFrameError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Decode a message body (the bytes after the length prefix)."""
    try:
        message = codec.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"undecodable message body: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be an object, got {type(message).__name__}"
        )
    return message


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise OversizedFrameError(
            f"length prefix {length} exceeds the {MAX_MESSAGE_BYTES}-byte limit"
        )


# ---------------------------------------------------------------------------
# asyncio flavour (server side)
# ---------------------------------------------------------------------------
async def read_message(reader) -> dict | None:
    """Read one message; ``None`` on a clean EOF at a frame boundary."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed inside a length prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed inside a message body") from None
    return decode_body(body)


async def write_message(writer, message: dict) -> None:
    writer.write(encode_message(message))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking-socket flavour (client / replica side)
# ---------------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, length: int) -> bytes | None:
    """Read exactly ``length`` bytes; ``None`` on immediate clean EOF."""
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one message; ``None`` on a clean EOF at a frame boundary.

    Callers that must stay interruptible (the replica puller checking its
    stop flag) should ``select()`` for readability before calling this
    with a blocking socket, rather than setting a socket timeout — a
    timeout firing mid-message would lose the consumed prefix.
    """
    prefix = _recv_exactly(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed inside a message body")
    return decode_body(body)


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_message(message))
