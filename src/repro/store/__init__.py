"""Durable labeling store: WAL + snapshots + crash recovery + serving.

The paper's list-labeling structures earn their keep in a database context
only if state survives a crash: this package turns the sharded labeling
engine (:class:`~repro.core.sharded.ShardedLabeler` behind a
:class:`~repro.applications.ordered_map.PackedMemoryMap` clustered index)
into an actual store.  Four layers, bottom up:

* :mod:`repro.store.wal` — an append-only, schema-versioned JSONL
  **write-ahead log**: one CRC-stamped frame per mutation (batch ops are a
  single atomic frame), fsync barriers per the configured sync policy, and
  torn-tail detection + truncation on open;
* :mod:`repro.store.snapshot` — crash-safe **per-shard checkpoints**: the
  exact labeler state of every shard (via the ``snapshot()``/``restore()``
  hooks on :class:`~repro.core.interface.ListLabeler`) plus its values,
  one file per shard, atomically renamed into place and checksum-verified
  on load;
* :mod:`repro.store.store` — :class:`~repro.store.store.DurableStore`:
  log-then-apply mutations, **recovery** = newest valid snapshot +
  tail-WAL replay, and **compaction** that snapshots and truncates the
  log;
* :mod:`repro.store.service` — :class:`~repro.store.service.StoreService`:
  a concurrent front-end with striped per-shard read-write locks,
  snapshot-consistent range scans, and an optional background compactor;
* :mod:`repro.store.protocol` / :mod:`repro.store.server` /
  :mod:`repro.store.client` — the **networked front-end**: a
  length-prefixed JSON wire protocol over the store codec, an asyncio
  :class:`~repro.store.server.StoreServer` dispatching every command onto
  the service's striped locks, and a blocking
  :class:`~repro.store.client.StoreClient` mirroring the service API;
* :mod:`repro.store.replica` — **WAL-shipping replication**:
  :class:`~repro.store.replica.Replica` bootstraps from the primary's
  newest snapshot, streams WAL frames verbatim (byte-identical state by
  construction), catches up after disconnects, serves read traffic, and
  promotes to a writable primary on failover.

Because every registered shard algorithm snapshots its *complete*
behavioural state (slot layout, RNG state, pending rebalance tasks,
hotspot counters), recovery is exact: the recovered store has the same key
order, the same composed labels, and the same per-shard physical layout as
the uninterrupted run — asserted at every WAL frame boundary by the
crash-injection differential in ``tests/test_store.py``.

Quickstart::

    from repro.store import DurableStore, StoreService

    with DurableStore("/tmp/mystore", algorithm="classical") as store:
        store.put("alice", 1)
        store.put_many([("bob", 2), ("carol", 3)])   # one atomic WAL frame
        store.compact()                              # snapshot + truncate log

    reopened = DurableStore("/tmp/mystore")          # runs recovery
    assert reopened.keys() == ["alice", "bob", "carol"]

Command line: ``python -m repro.store {snapshot,recover,verify,compact}``.
"""

from repro.store.client import ReadOnlyError, StoreClient, StoreClientError
from repro.store.factories import DEFAULT_ALGORITHM, SHARD_FACTORIES
from repro.store.protocol import ProtocolError
from repro.store.replica import Replica
from repro.store.server import ServerThread, StoreServer
from repro.store.service import RWLock, StoreService
from repro.store.snapshot import SnapshotInfo, list_snapshots
from repro.store.store import DurableStore, RecoveryReport, StoreError
from repro.store.wal import WALError, WALTruncateReport, WriteAheadLog

__all__ = [
    "DEFAULT_ALGORITHM",
    "DurableStore",
    "ProtocolError",
    "RWLock",
    "ReadOnlyError",
    "RecoveryReport",
    "Replica",
    "SHARD_FACTORIES",
    "ServerThread",
    "SnapshotInfo",
    "StoreClient",
    "StoreClientError",
    "StoreError",
    "StoreServer",
    "StoreService",
    "WALError",
    "WALTruncateReport",
    "WriteAheadLog",
    "list_snapshots",
]
