"""Workload generators for the experiments.

Every workload is an iterable of :class:`repro.core.operations.Operation`
objects plus a little metadata (name, number of operations, capacity needed).
They model the database access patterns the paper's introduction motivates:
uniform random updates, bulk loads, append-only streams, hammer-insert
hotspots (the adaptive bound of [18]), churn with deletions, skewed (zipfian)
insertion points, and prediction-augmented insertion streams (Corollary 12).
"""

from repro.workloads.base import Workload, synthesize_key
from repro.workloads.random_uniform import RandomWorkload
from repro.workloads.sequential import SequentialWorkload
from repro.workloads.hammer import HammerWorkload
from repro.workloads.bulk import BulkLoadWorkload
from repro.workloads.zipfian import ZipfianWorkload
from repro.workloads.sliding import SlidingWindowWorkload
from repro.workloads.predicted import PredictedWorkload

__all__ = [
    "BulkLoadWorkload",
    "HammerWorkload",
    "PredictedWorkload",
    "RandomWorkload",
    "SequentialWorkload",
    "SlidingWindowWorkload",
    "Workload",
    "ZipfianWorkload",
    "synthesize_key",
]
