"""Workload generators for the experiments.

Every workload is an iterable of :class:`repro.core.operations.Operation`
objects plus a little metadata (name, number of operations, capacity needed).
They model the database access patterns the paper's introduction motivates:
uniform random updates, bulk loads, append-only streams, hammer-insert
hotspots (the adaptive bound of [18]), churn with deletions, skewed (zipfian)
insertion points, prediction-augmented insertion streams (Corollary 12), and
read-heavy serving mixes (YCSB-B-style point lookups and range scans over
uniform or zipfian targets).  The adversarial module adds the hostile
patterns that expose tail behavior: rebalance-cliff chasing, drifting zipf
skew, flash crowds, compaction storms, and sorted/random interleavings.
"""

from repro.workloads.adversarial import (
    ADVERSARIAL_WORKLOADS,
    CompactionStormWorkload,
    DriftingZipfWorkload,
    FlashCrowdWorkload,
    RebalanceCliffWorkload,
    SortedRandomInterleaveWorkload,
)
from repro.workloads.base import Workload, synthesize_key
from repro.workloads.random_uniform import RandomWorkload
from repro.workloads.sequential import SequentialWorkload
from repro.workloads.hammer import HammerWorkload
from repro.workloads.bulk import BulkLoadWorkload
from repro.workloads.zipfian import ZipfianWorkload
from repro.workloads.sliding import SlidingWindowWorkload
from repro.workloads.predicted import PredictedWorkload
from repro.workloads.mixed import MixedReadWriteWorkload, RangeScanWorkload

__all__ = [
    "ADVERSARIAL_WORKLOADS",
    "BulkLoadWorkload",
    "CompactionStormWorkload",
    "DriftingZipfWorkload",
    "FlashCrowdWorkload",
    "HammerWorkload",
    "RebalanceCliffWorkload",
    "SortedRandomInterleaveWorkload",
    "MixedReadWriteWorkload",
    "PredictedWorkload",
    "RandomWorkload",
    "RangeScanWorkload",
    "SequentialWorkload",
    "SlidingWindowWorkload",
    "Workload",
    "ZipfianWorkload",
    "synthesize_key",
]
