"""Adversarial workloads: the access patterns that expose the tail.

Every committed benchmark reports amortized cost, but the paper's central
claim is about *worst-case* behavior — the deamortized and layered
structures exist precisely because an adversary can force a classical PMA
into huge single-operation rebalances.  These workloads are that
adversary, in five flavors:

* :class:`RebalanceCliffWorkload` — probes for the currently-densest rank
  window of its own insertion history and hammers it, chasing the density
  cliff the structure is trying to rebalance away (feedback-driven: the
  target re-aims every ``probe_every`` operations, it is not a fixed rank);
* :class:`DriftingZipfWorkload` — time-varying skew: the zipf hotspot
  drifts across the key space while the skew exponent ramps, so no static
  partitioning of the structure stays right;
* :class:`FlashCrowdWorkload` — flash crowds: bursts of *sorted* ingest
  into one random region on top of background uniform traffic;
* :class:`CompactionStormWorkload` — delete-heavy storms clustered in a
  region (driving shard merges / density collapses), alternating with
  refill phases;
* :class:`SortedRandomInterleaveWorkload` — alternating sorted-append and
  uniform-random runs, the interleaving that defeats append-only
  special-casing.

All are seeded and bit-deterministic (same seed → identical operation
stream), runnable through :func:`repro.analysis.runner.run_workload` in
singleton and batched mode, against every registered algorithm, the
sharding engine and the durable layer (``durable_dir=``).
:data:`ADVERSARIAL_WORKLOADS` maps workload names to
``factory(operations, seed)`` callables for sweeps.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class RebalanceCliffWorkload(Workload):
    """Insertions that chase and hammer the currently-densest rank window.

    The stream tracks its own insertion density over ``buckets`` equal
    relative-rank windows.  After a uniform warmup it repeatedly re-probes
    (every ``probe_every`` operations) for the densest window and inserts
    near that window's center (± ``jitter`` ranks) — each insertion makes
    the target denser, so the adversary rides the structure's density
    cliff instead of poking a fixed rank the way the hammer workload does.
    """

    name = "rebalance-cliff"

    def __init__(
        self,
        operations: int,
        *,
        buckets: int = 16,
        warmup_fraction: float = 0.25,
        probe_every: int = 64,
        jitter: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if buckets < 1:
            raise ValueError("buckets must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must lie in [0, 1)")
        if probe_every < 1:
            raise ValueError("probe_every must be positive")
        if jitter < 0:
            raise ValueError("jitter cannot be negative")
        self.buckets = buckets
        self.warmup_fraction = warmup_fraction
        self.probe_every = probe_every
        self.jitter = jitter
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        counts = [0] * self.buckets
        size = 0
        warmup = int(self.operations * self.warmup_fraction)
        target = 0
        for step in range(self.operations):
            if step < warmup or size < self.buckets:
                rank = rng.randint(1, size + 1)
            else:
                if (step - warmup) % self.probe_every == 0:
                    target = max(range(self.buckets), key=counts.__getitem__)
                center = int((target + 0.5) * (size + 1) / self.buckets)
                rank = min(
                    size + 1,
                    max(1, center + rng.randint(-self.jitter, self.jitter)),
                )
            bucket = min(self.buckets - 1, rank * self.buckets // (size + 2))
            counts[bucket] += 1
            yield Operation.insert(rank)
            size += 1


class DriftingZipfWorkload(Workload):
    """Zipf-skewed insertions whose hotspot drifts and whose skew ramps.

    The hotspot sweeps the relative key space ``drift_cycles`` times over
    the run (wrapping at 1.0) while the skew exponent ramps linearly from
    ``skew_start`` to ``skew_end`` — the time-varying version of
    :class:`~repro.workloads.zipfian.ZipfianWorkload`, with two-sided
    offsets around the moving anchor.
    """

    name = "drifting-zipf"

    def __init__(
        self,
        operations: int,
        *,
        skew_start: float = 1.4,
        skew_end: float = 1.05,
        drift_cycles: float = 2.0,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if skew_start <= 0 or skew_end <= 0:
            raise ValueError("skew must be positive")
        if drift_cycles <= 0:
            raise ValueError("drift_cycles must be positive")
        self.skew_start = skew_start
        self.skew_end = skew_end
        self.drift_cycles = drift_cycles
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        from repro.workloads.mixed import zipf_index

        rng = random.Random(self.seed)
        size = 0
        for step in range(self.operations):
            progress = step / self.operations
            skew = self.skew_start + (self.skew_end - self.skew_start) * progress
            hotspot = (progress * self.drift_cycles) % 1.0
            universe = size + 1
            offset = zipf_index(rng, universe, skew) - 1
            anchor = int(hotspot * size)
            if offset and rng.random() < 0.5:
                offset = -offset
            rank = min(universe, max(1, anchor + offset + 1))
            yield Operation.insert(rank)
            size += 1


class FlashCrowdWorkload(Workload):
    """Background uniform inserts with bursts of sorted ingest into one region.

    Every ``burst_every`` operations the stream picks a uniformly random
    anchor and emits ``burst_length`` consecutive ascending insertions
    there — a sorted run landing in one region, the flash-crowd shape
    (an entity going viral, a batch import of one key prefix).
    """

    name = "flash-crowd"

    def __init__(
        self,
        operations: int,
        *,
        burst_length: int = 64,
        burst_every: int = 256,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if burst_length < 1:
            raise ValueError("burst_length must be positive")
        if burst_every < 1:
            raise ValueError("burst_every must be positive")
        self.burst_length = burst_length
        self.burst_every = burst_every
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        size = 0
        step = 0
        while step < self.operations:
            if size and step % self.burst_every == self.burst_every - 1:
                anchor = rng.randint(1, size + 1)
                length = min(self.burst_length, self.operations - step)
                for index in range(length):
                    yield Operation.insert(anchor + index)
                    size += 1
                step += length
                continue
            yield Operation.insert(rng.randint(1, size + 1))
            size += 1
            step += 1


class CompactionStormWorkload(Workload):
    """Delete-heavy storms clustered in a region, alternating with refills.

    A uniform grow phase builds ``grow_fraction`` of the stream; the rest
    alternates *storms* (``storm_length`` deletions drawn from one random
    region of relative width ``region_width`` — the pattern that collapses
    density, drives shard merges and forces compaction) with *refills*
    (``storm_length`` uniform insertions restoring the size).  The stream
    never deletes the structure empty.
    """

    name = "compaction-storm"

    def __init__(
        self,
        operations: int,
        *,
        grow_fraction: float = 0.5,
        storm_length: int = 128,
        region_width: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if not 0.0 < grow_fraction < 1.0:
            raise ValueError("grow_fraction must lie in (0, 1)")
        if storm_length < 1:
            raise ValueError("storm_length must be positive")
        if not 0.0 < region_width <= 1.0:
            raise ValueError("region_width must lie in (0, 1]")
        self.grow_fraction = grow_fraction
        self.storm_length = storm_length
        self.region_width = region_width
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        size = 0
        grow = max(1, int(self.operations * self.grow_fraction))
        step = 0
        while step < grow:
            yield Operation.insert(rng.randint(1, size + 1))
            size += 1
            step += 1
        storming = True
        remaining_in_phase = self.storm_length
        anchor = rng.random()
        while step < self.operations:
            if remaining_in_phase == 0:
                storming = not storming
                remaining_in_phase = self.storm_length
                if storming:
                    anchor = rng.random()
            if storming and size > 1:
                width = max(1, int(self.region_width * size))
                low = min(size, max(1, int(anchor * size)))
                high = min(size, low + width - 1)
                yield Operation.delete(rng.randint(low, high))
                size -= 1
            else:
                yield Operation.insert(rng.randint(1, size + 1))
                size += 1
            remaining_in_phase -= 1
            step += 1


class SortedRandomInterleaveWorkload(Workload):
    """Alternating runs of sorted appends and uniform random insertions.

    ``run_length`` ascending appends at the current end, then
    ``run_length`` uniform random insertions, repeated — the interleaving
    that punishes structures which special-case either pure pattern.
    """

    name = "sorted-random-interleave"

    def __init__(
        self, operations: int, *, run_length: int = 128, seed: int = 0
    ) -> None:
        super().__init__(operations, capacity=operations)
        if run_length < 1:
            raise ValueError("run_length must be positive")
        self.run_length = run_length
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        size = 0
        for step in range(self.operations):
            if (step // self.run_length) % 2 == 0:
                yield Operation.insert(size + 1)
            else:
                yield Operation.insert(rng.randint(1, size + 1))
            size += 1


#: name -> ``factory(operations, seed)`` for sweeps over the whole suite.
ADVERSARIAL_WORKLOADS: dict[str, Callable[[int, int], Workload]] = {
    "rebalance_cliff": lambda n, seed: RebalanceCliffWorkload(n, seed=seed),
    "drifting_zipf": lambda n, seed: DriftingZipfWorkload(n, seed=seed),
    "flash_crowd": lambda n, seed: FlashCrowdWorkload(n, seed=seed),
    "compaction_storm": lambda n, seed: CompactionStormWorkload(n, seed=seed),
    "sorted_random_interleave": lambda n, seed: SortedRandomInterleaveWorkload(
        n, seed=seed
    ),
}
