"""Sequential (append-only / prepend-only) insertion workloads.

Bulk loading a database index in key order is the most common pattern in
practice; it is also the pattern where naive structures shine (appending to
a packed array is free) and where front-insertion (descending order) is the
classic worst case for them.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class SequentialWorkload(Workload):
    """Insert ``operations`` elements in ascending or descending key order."""

    def __init__(self, operations: int, *, ascending: bool = True) -> None:
        super().__init__(operations, capacity=operations)
        self.ascending = ascending
        self.name = "sequential-ascending" if ascending else "sequential-descending"

    def __iter__(self) -> Iterator[Operation]:
        size = 0
        for _ in range(self.operations):
            rank = size + 1 if self.ascending else 1
            yield Operation.insert(rank)
            size += 1
