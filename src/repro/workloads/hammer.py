"""Hammer-insert workloads (Bender–Hu [18]).

A *hammer-insert* workload repeatedly inserts at the same rank — think of a
secondary index on a monotically increasing attribute restricted to one hot
key prefix, or a graph store receiving a burst of edges for one vertex.  The
adaptive PMA of [18] achieves amortized ``O(log n)`` here, a ``log n`` factor
better than the classical PMA, and Corollary 11's layered structure inherits
that bound; experiments E-GOOD, E-ADAPT and E-TRIPLE run on this workload.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class HammerWorkload(Workload):
    """A random warm-up prefix followed by insertions hammering one rank."""

    name = "hammer-insert"

    def __init__(
        self,
        operations: int,
        *,
        warmup_fraction: float = 0.1,
        hammer_position: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must lie in [0, 1)")
        if not 0.0 <= hammer_position <= 1.0:
            raise ValueError("hammer_position must lie in [0, 1]")
        self.warmup_fraction = warmup_fraction
        self.hammer_position = hammer_position
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        warmup = int(self.operations * self.warmup_fraction)
        size = 0
        for _ in range(warmup):
            yield Operation.insert(rng.randint(1, size + 1))
            size += 1
        hammer_rank = max(1, int(size * self.hammer_position) + 1)
        for _ in range(self.operations - warmup):
            yield Operation.insert(hammer_rank)
            size += 1
