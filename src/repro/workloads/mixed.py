"""Read-heavy mixed workloads: the traffic shape of a serving system.

Real heavy traffic is read-dominated — YCSB-B, the canonical "read mostly"
cloud-serving mix, is 95% reads / 5% writes.  :class:`MixedReadWriteWorkload`
generates that shape over the rank-addressed operation model: a seeded
stream interleaving writes (inserts, with an optional delete share) with the
four read kinds of :mod:`repro.core.operations` — key-addressed LOOKUPs
(the routing-index path), rank-addressed SELECTs, streaming RANGE reads and
COUNT_RANGE interval counts.

Read targets are drawn either uniformly over the current ranks or from a
Zipf-like distribution anchored at a hotspot (``key_choice="zipfian"``),
which models the skewed key popularity of serving workloads.  A short
all-insert warmup seeds the structure so the read phase always has data to
query.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


def zipf_index(rng: random.Random, universe: int, skew: float) -> int:
    """A 1-based index in ``[1, universe]`` with ``P(i) ∝ 1 / i^skew``.

    The one zipf sampler of the workload layer — the zipfian insert
    workload delegates here too, so read skew and write skew are directly
    comparable.  For ``skew > 1`` this is inverse-CDF sampling on the
    continuous approximation with rejection at the truncation boundary
    (kept verbatim from the original insert sampler: committed seeded
    baselines depend on its exact draw stream).  For ``skew <= 1`` the
    unbounded-tail trick does not apply, so the *bounded* inverse CDF of
    ``x^-skew`` on ``[1, universe]`` is used directly — one draw, exact in
    the continuous approximation (the pre-shared sampler silently ignored
    ``skew`` here and always produced a ~1/i² tail).
    """
    if skew <= 0.0:
        raise ValueError("skew must be positive")
    if skew > 1.0:
        # No universe==1 shortcut: the rejection loop still consumes its
        # geometric number of draws there, exactly like the sampler the
        # insert workload originally carried (seed compatibility).
        while True:
            u = rng.random()
            value = int(u ** (-1.0 / (skew - 1.0)))
            if 1 <= value <= universe:
                return value
    u = rng.random()
    if abs(skew - 1.0) < 1e-12:
        value = universe ** u
    else:
        value = (1.0 + u * (universe ** (1.0 - skew) - 1.0)) ** (
            1.0 / (1.0 - skew)
        )
    return min(universe, max(1, int(value)))


class MixedReadWriteWorkload(Workload):
    """A configurable read/write mix over uniform or zipfian targets.

    Parameters
    ----------
    operations:
        Total logical operations (reads + writes + warmup).
    read_fraction:
        Probability that a post-warmup operation is a read (0.95 = YCSB-B).
    delete_fraction:
        Share of *writes* that are deletions (the rest insert).
    key_choice:
        ``"uniform"`` — read ranks uniform over ``[1, size]``;
        ``"zipfian"`` — Zipf-distributed offsets from ``hotspot_position``.
    skew:
        Zipf exponent of the zipfian choice (ignored for uniform).
    hotspot_position:
        Relative position (0..1) of the zipfian hotspot in the key space.
    scan_fraction / count_fraction:
        Shares of *reads* that are RANGE scans / COUNT_RANGE counts; the
        remaining reads split evenly between LOOKUP and SELECT.
    scan_length:
        Rank span of each RANGE / COUNT_RANGE read.
    warmup:
        Leading all-insert operations seeding the structure (defaults to
        5% of the stream, at least 16).
    """

    name = "mixed-read-write"

    def __init__(
        self,
        operations: int,
        *,
        read_fraction: float = 0.95,
        delete_fraction: float = 0.1,
        key_choice: str = "uniform",
        skew: float = 1.1,
        hotspot_position: float = 0.3,
        scan_fraction: float = 0.05,
        count_fraction: float = 0.02,
        scan_length: int = 16,
        warmup: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must lie in [0, 1]")
        if not 0.0 <= delete_fraction <= 1.0:
            raise ValueError("delete_fraction must lie in [0, 1]")
        if key_choice not in ("uniform", "zipfian"):
            raise ValueError(f"unknown key_choice {key_choice!r}")
        if scan_fraction + count_fraction > 1.0:
            raise ValueError("scan_fraction + count_fraction must be <= 1")
        if scan_length < 1:
            raise ValueError("scan_length must be positive")
        self.read_fraction = read_fraction
        self.delete_fraction = delete_fraction
        self.key_choice = key_choice
        self.skew = skew
        self.hotspot_position = hotspot_position
        self.scan_fraction = scan_fraction
        self.count_fraction = count_fraction
        self.scan_length = scan_length
        if warmup is None:
            warmup = max(16, operations // 20)
        self.warmup = min(warmup, operations)
        self.seed = seed

    def _pick_rank(self, rng: random.Random, size: int) -> int:
        if self.key_choice == "uniform":
            return rng.randint(1, size)
        anchor = int(self.hotspot_position * size)
        offset = zipf_index(rng, size, self.skew) - 1
        direction = 1 if rng.random() < 0.5 else -1
        rank = anchor + direction * offset + 1
        return min(size, max(1, rank))

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        size = 0
        for step in range(self.operations):
            if size == 0 or step < self.warmup:
                yield Operation.insert(rng.randint(1, size + 1))
                size += 1
                continue
            if rng.random() >= self.read_fraction:
                # Write path.
                if size > 1 and rng.random() < self.delete_fraction:
                    yield Operation.delete(rng.randint(1, size))
                    size -= 1
                else:
                    yield Operation.insert(rng.randint(1, size + 1))
                    size += 1
                continue
            # Read path.
            rank = self._pick_rank(rng, size)
            roll = rng.random()
            if roll < self.scan_fraction:
                yield Operation.range(rank, rank + self.scan_length - 1)
            elif roll < self.scan_fraction + self.count_fraction:
                yield Operation.count_range(rank, rank + self.scan_length - 1)
            elif roll < self.scan_fraction + self.count_fraction + (
                1.0 - self.scan_fraction - self.count_fraction
            ) / 2.0:
                yield Operation.lookup(rank)
            else:
                yield Operation.select(rank)

    def describe(self) -> dict[str, object]:
        data = super().describe()
        data.update(
            read_fraction=self.read_fraction,
            key_choice=self.key_choice,
            scan_fraction=self.scan_fraction,
            count_fraction=self.count_fraction,
            scan_length=self.scan_length,
            warmup=self.warmup,
        )
        return data


class RangeScanWorkload(Workload):
    """Load a key space, then hammer it with streaming range scans.

    The first ``load_fraction`` of the stream inserts at uniform random
    ranks; every remaining operation is a RANGE read of ``scan_length``
    ranks starting at a uniform random position — the scan-heavy profile
    (analytics over a live ordered map) that exposes whether ``range`` is a
    lazy cursor walk or a whole-structure materialization.
    """

    name = "range-scan"

    def __init__(
        self,
        operations: int,
        *,
        scan_length: int = 64,
        load_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if scan_length < 1:
            raise ValueError("scan_length must be positive")
        if not 0.0 < load_fraction <= 1.0:
            raise ValueError("load_fraction must lie in (0, 1]")
        self.scan_length = scan_length
        self.load_fraction = load_fraction
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        load = max(1, int(self.operations * self.load_fraction))
        size = 0
        for step in range(self.operations):
            if step < load:
                yield Operation.insert(rng.randint(1, size + 1))
                size += 1
            else:
                rank = rng.randint(1, size)
                yield Operation.range(rank, rank + self.scan_length - 1)

    def describe(self) -> dict[str, object]:
        data = super().describe()
        data.update(scan_length=self.scan_length, load_fraction=self.load_fraction)
        return data
