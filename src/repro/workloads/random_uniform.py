"""Uniformly random insertions and deletions.

This is the canonical "average case" workload of the list-labeling
literature: every insertion picks a uniformly random rank among the
``size + 1`` possibilities, and (optionally) a fraction of operations are
deletions of uniformly random ranks.  The classical PMA achieves its
``O(log² n)`` amortized bound here, and the randomized variant should do at
least as well — experiments E-BASE, E-GEN and E-SCALE all run on it.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class RandomWorkload(Workload):
    """Uniform random rank insertions with an optional deletion fraction."""

    name = "uniform-random"

    def __init__(
        self,
        operations: int,
        capacity: int,
        *,
        delete_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity)
        if not 0.0 <= delete_fraction < 1.0:
            raise ValueError("delete_fraction must lie in [0, 1)")
        self.delete_fraction = delete_fraction
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        size = 0
        for _ in range(self.operations):
            wants_delete = size > 0 and (
                size >= self.capacity or rng.random() < self.delete_fraction
            )
            if wants_delete:
                yield Operation.delete(rng.randint(1, size))
                size -= 1
            else:
                yield Operation.insert(rng.randint(1, size + 1))
                size += 1
