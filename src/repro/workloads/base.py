"""Common machinery shared by the workload generators.

A :class:`Workload` is an iterable of operations together with the capacity
the target structure needs.  Rank-addressed operations do not carry keys by
themselves; :func:`synthesize_key` lets a driver invent totally ordered keys
on the fly (exact rational midpoints, so even a hammer-insert workload that
splits the same gap thousands of times never runs out of precision).
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Hashable, Iterator, Sequence

from repro.core.operations import Operation


def synthesize_key(
    reference: Sequence[Hashable], rank: int, *, spacing: int = 1
) -> Fraction:
    """A key strictly between the current keys of ranks ``rank - 1`` and ``rank``.

    ``reference`` is the current sorted key sequence.  Exact rationals are
    used so repeated splitting of the same gap (hammer-insert workloads)
    never collides; ``spacing`` controls the gap left at the array ends.
    """
    lower = Fraction(reference[rank - 2]) if rank >= 2 else None
    upper = Fraction(reference[rank - 1]) if rank - 1 < len(reference) else None
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        return upper - spacing
    if upper is None:
        return lower + spacing
    return (lower + upper) / 2


class Workload(abc.ABC):
    """Base class: an operation stream plus sizing metadata."""

    #: Human-readable name used in benchmark tables.
    name: str = "workload"

    def __init__(self, operations: int, capacity: int) -> None:
        if operations < 1:
            raise ValueError("a workload needs at least one operation")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.operations = operations
        self.capacity = capacity

    def __len__(self) -> int:
        return self.operations

    @abc.abstractmethod
    def __iter__(self) -> Iterator[Operation]:
        """Yield the operation stream (may be consumed only once per call)."""

    def iter_batches(self, batch_size: int) -> Iterator[list[Operation]]:
        """Yield the stream grouped into batches for batched execution.

        A batch holds up to ``batch_size`` *consecutive same-kind*
        operations (mixed insert/delete batches are never produced); the
        concatenation of the batches is exactly the singleton stream, with
        each operation's rank still interpreted against the state left by
        all preceding operations.  Workloads with natural batch structure
        (e.g. the bulk loader's sorted runs) override this to emit their
        own run-aligned batches.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        batch: list[Operation] = []
        for operation in self:
            if batch and (
                len(batch) >= batch_size or batch[0].kind != operation.kind
            ):
                yield batch
                batch = []
            batch.append(operation)
        if batch:
            yield batch

    def describe(self) -> dict[str, object]:
        """Metadata dictionary used by the benchmark report tables."""
        return {
            "name": self.name,
            "operations": self.operations,
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(operations={self.operations}, capacity={self.capacity})"
