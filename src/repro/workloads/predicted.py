"""Prediction-augmented insertion workloads (Corollary 12).

Corollary 12 considers ``n`` insertions ``x₁ … x_n`` with a rank predictor
``P`` of maximum error ``η``.  This workload materializes the final key set
up front (integers ``1 … n``), inserts the keys in a random order (carrying
the key on each operation so the learned labeler can query the predictor),
and exposes the matching :class:`~repro.algorithms.predictions.NoisyPredictor`
with the requested error bound.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.algorithms.predictions import ExactPredictor, NoisyPredictor
from repro.core.operations import Operation
from repro.workloads.base import Workload


class PredictedWorkload(Workload):
    """Random-order insertion of a known key set, with a rank predictor."""

    name = "predicted"

    def __init__(self, operations: int, *, eta: int = 0, seed: int = 0) -> None:
        super().__init__(operations, capacity=operations)
        self.eta = eta
        self.seed = seed
        self.keys = list(range(1, operations + 1))
        order = list(self.keys)
        random.Random(seed).shuffle(order)
        self._insertion_order = order
        self.predictor = (
            ExactPredictor(self.keys)
            if eta == 0
            else NoisyPredictor(self.keys, eta, salt=seed)
        )
        self.name = f"predicted(eta={eta})"

    def __iter__(self) -> Iterator[Operation]:
        import bisect

        inserted: list[int] = []
        for key in self._insertion_order:
            # Rank of the key among the keys inserted so far.
            rank = bisect.bisect_left(inserted, key) + 1
            yield Operation.insert(rank, key=key)
            bisect.insort(inserted, key)

    def max_prediction_error(self) -> int:
        """The realized maximum prediction error η of the attached predictor."""
        if isinstance(self.predictor, NoisyPredictor):
            return self.predictor.max_error()
        return 0
