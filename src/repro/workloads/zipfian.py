"""Zipf-skewed insertion workloads.

Many real update streams are skewed: a small part of the key space receives
most of the insertions.  This workload draws the insertion rank from a
Zipf-like distribution over the current gaps (gap 1 is the hottest), which
interpolates between the hammer workload (extreme skew) and the uniform
random workload (no skew).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class ZipfianWorkload(Workload):
    """Insertions whose rank is Zipf-distributed over the current gaps."""

    name = "zipfian"

    def __init__(
        self,
        operations: int,
        *,
        skew: float = 1.2,
        hotspot_position: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(operations, capacity=operations)
        if skew <= 0:
            raise ValueError("skew must be positive")
        self.skew = skew
        self.hotspot_position = hotspot_position
        self.seed = seed

    def _zipf_index(self, rng: random.Random, universe: int) -> int:
        """A 1-based index in [1, universe] with P(i) ∝ 1 / i^skew.

        Delegates to the shared sampler in :mod:`repro.workloads.mixed`,
        so insert skew and the read workloads' key skew draw from the
        same distribution (for ``skew > 1`` the draw stream is identical
        to the sampler this class originally carried — committed seeded
        baselines are unaffected).
        """
        from repro.workloads.mixed import zipf_index

        return zipf_index(rng, universe, self.skew)

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        # Offsets from a mid-stream anchor fall on *both* sides of the
        # hotspot.  The direction draw is gated on a non-default anchor:
        # with ``hotspot_position=0.0`` there is no left side, the stream
        # consumes exactly one zipf draw per operation, and the committed
        # seeded BENCH baselines stay bit-identical.
        two_sided = self.hotspot_position != 0.0
        size = 0
        for _ in range(self.operations):
            universe = size + 1
            offset = self._zipf_index(rng, universe) - 1
            anchor = int(self.hotspot_position * size)
            if two_sided and offset and rng.random() < 0.5:
                offset = -offset
            rank = min(universe, max(1, anchor + offset + 1))
            yield Operation.insert(rank)
            size += 1
