"""Bulk-load workloads: sorted runs inserted at random positions.

Databases frequently ingest sorted batches (partitions, LSM flushes, bulk
imports).  Each batch lands at a random point of the key space and is then
inserted in ascending order, producing long runs of consecutive-rank
insertions — locally sequential, globally random.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class BulkLoadWorkload(Workload):
    """Insert ``operations`` elements as sorted batches of ``batch_size``."""

    name = "bulk-load"

    def __init__(
        self, operations: int, *, batch_size: int = 32, seed: int = 0
    ) -> None:
        super().__init__(operations, capacity=operations)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        for run in self._runs():
            yield from run

    def iter_batches(self, batch_size: int) -> Iterator[list[Operation]]:
        """Emit the sorted runs themselves as batches.

        Each run is a natural unit of batched ingestion (one partition /
        LSM flush): all of its insertions share one pre-batch rank, so a
        batched labeler can lay the whole run out with a single merge.
        Runs longer than ``batch_size`` are split.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        for run in self._runs():
            for start in range(0, len(run), batch_size):
                yield run[start : start + batch_size]

    def _runs(self) -> Iterator[list[Operation]]:
        rng = random.Random(self.seed)
        size = 0
        remaining = self.operations
        while remaining > 0:
            batch = min(self.batch_size, remaining)
            start_rank = rng.randint(1, size + 1)
            yield [
                Operation.insert(start_rank + offset) for offset in range(batch)
            ]
            size += batch
            remaining -= batch
