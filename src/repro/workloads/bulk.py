"""Bulk-load workloads: sorted runs inserted at random positions.

Databases frequently ingest sorted batches (partitions, LSM flushes, bulk
imports).  Each batch lands at a random point of the key space and is then
inserted in ascending order, producing long runs of consecutive-rank
insertions — locally sequential, globally random.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class BulkLoadWorkload(Workload):
    """Insert ``operations`` elements as sorted batches of ``batch_size``."""

    name = "bulk-load"

    def __init__(
        self, operations: int, *, batch_size: int = 32, seed: int = 0
    ) -> None:
        super().__init__(operations, capacity=operations)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.seed = seed

    def __iter__(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        size = 0
        remaining = self.operations
        while remaining > 0:
            batch = min(self.batch_size, remaining)
            start_rank = rng.randint(1, size + 1)
            for offset in range(batch):
                yield Operation.insert(start_rank + offset)
                size += 1
            remaining -= batch
