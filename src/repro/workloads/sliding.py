"""Sliding-window churn: insert at the back, delete from the front.

This models time-ordered data with retention (message queues, time-series
segments): once the window is full every insertion is paired with a deletion
of the oldest element, so the structure operates at a constant size forever.
It exercises the deletion paths and the lower density thresholds of the PMA
family as well as the ghost-element handling of the embedding.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.operations import Operation
from repro.workloads.base import Workload


class SlidingWindowWorkload(Workload):
    """Append-only insertions with FIFO deletions beyond ``window`` elements."""

    name = "sliding-window"

    def __init__(self, operations: int, *, window: int) -> None:
        super().__init__(operations, capacity=max(window, 1))
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window

    def __iter__(self) -> Iterator[Operation]:
        size = 0
        emitted = 0
        while emitted < self.operations:
            if size >= self.window:
                yield Operation.delete(1)
                size -= 1
                emitted += 1
                if emitted >= self.operations:
                    break
            yield Operation.insert(size + 1)
            size += 1
            emitted += 1
