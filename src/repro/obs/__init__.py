"""Process-wide observability: metrics registry + trace spans.

Usage, component side — resolve once at construction time and record
through the cached instruments::

    from repro import obs

    class WriteAheadLog:
        def __init__(self, ..., registry=None):
            reg = obs.resolve(registry)
            self._obs_frames = reg.counter("wal.frames_appended")

    # hot path
    self._obs_frames.inc()

Usage, operator side — switch the whole process on and read it back::

    registry = obs.enable()          # install a real registry + tracer
    ...
    print(obs.render_prometheus(registry.snapshot()))

The default global registry is :data:`NULL_REGISTRY` and the default
tracer :data:`NULL_TRACER` — every instrument lookup returns an inert
singleton and every span is one reusable no-op context manager, so
code built before :func:`enable` (or with observability off for its
whole life) runs the seed paths untouched.  Components resolve the
globals at *construction* time; enable observability before building
the store stack you want measured, or inject a registry explicitly.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_prometheus,
)
from repro.obs.spans import NULL_TRACER, NullTracer, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "resolve",
    "span",
    "enable",
    "disable",
]

_registry = NULL_REGISTRY
_tracer = NULL_TRACER


def get_registry():
    """The process-wide registry (the null registry unless enabled)."""
    return _registry


def get_tracer():
    """The process-wide span tracer (the null tracer unless enabled)."""
    return _tracer


def set_registry(registry):
    """Install ``registry`` globally; returns the previous registry."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous


def set_tracer(tracer):
    """Install ``tracer`` globally; returns the previous tracer."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def resolve(registry=None):
    """The registry a component should record into.

    Explicit injection wins; otherwise the current global.  Called once
    at construction time so the hot path never consults module state.
    """
    return registry if registry is not None else _registry


def span(name: str):
    """A span context manager on the current global tracer."""
    return _tracer.span(name)


def enable(
    *,
    registry=None,
    slow_threshold_seconds: float = 0.050,
    slow_op_capacity: int = 64,
):
    """Switch process-wide observability on; returns the live registry.

    Idempotent: if a real registry is already installed it is kept (an
    explicitly passed ``registry`` still replaces it).  A real tracer is
    installed alongside unless one is already active.
    """
    global _registry, _tracer
    if registry is not None:
        _registry = registry
    elif not _registry.enabled:
        _registry = MetricsRegistry()
    if not _tracer.enabled:
        _tracer = SpanTracer(
            slow_threshold_seconds=slow_threshold_seconds,
            capacity=slow_op_capacity,
        )
    return _registry


def disable():
    """Back to the inert defaults; returns ``(registry, tracer)`` removed."""
    global _registry, _tracer
    previous = (_registry, _tracer)
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER
    return previous
