"""Thread-safe metrics registry: counters, gauges, exponential histograms.

The registry is the process-wide measurement surface for the store stack.
Design constraints, in order:

* **Cheap on hot paths.**  Instruments are created once (get-or-create by
  dotted name) and cached by their owners; recording is one striped-lock
  acquisition plus integer arithmetic.  Locks are striped by instrument
  name so unrelated hot instruments do not contend.
* **Bit-identical when off.**  The default registry is the shared
  :data:`NULL_REGISTRY` whose instruments are inert singletons — seed
  code paths execute the same operations in the same order whether or
  not observability is enabled (the ``obs`` perf suite proves move-log
  equality between bare and instrumented runs).
* **Plain-dict snapshots.**  :meth:`MetricsRegistry.snapshot` returns
  nothing but dicts/lists/numbers/strings so the result survives the
  wire codec unchanged, and :func:`render_prometheus` turns any such
  snapshot into Prometheus-style text exposition.

Histograms use fixed exponential buckets (``start * factor**i``), the
classical trade: percentile estimates are exact to one bucket (the
estimate is the upper bound of the bucket holding the nearest-rank
sample — the property the hypothesis oracle test asserts) at O(bucket
count) memory regardless of sample volume.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "render_prometheus",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram geometry for latency-in-seconds instruments:
#: 1 µs .. ~1100 s in doubling buckets (31 finite bounds + overflow).
DEFAULT_LATENCY_BUCKETS = (1e-6, 2.0, 31)


class Counter:
    """Monotonic counter.  ``inc`` only; never decremented."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value; settable, incrementable, decrementable."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed exponential-bucket histogram with ``le`` (at-or-below) bounds.

    Bucket ``i`` (for ``i < len(bounds)``) counts observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]``; the final overflow bucket counts
    everything above the last bound.  ``percentile`` returns the upper
    bound of the bucket containing the nearest-rank sample (or the exact
    observed maximum for the overflow bucket), so the estimate always
    satisfies ``lower_bound < true_value <= estimate``.
    """

    __slots__ = ("name", "_lock", "bounds", "_counts", "_sum", "_count", "_max")

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        *,
        start: float,
        factor: float,
        count: int,
    ) -> None:
        if start <= 0:
            raise ValueError("histogram bucket start must be positive")
        if factor <= 1.0:
            raise ValueError("histogram bucket factor must exceed 1")
        if count < 1:
            raise ValueError("histogram needs at least one bucket")
        self.name = name
        self._lock = lock
        self.bounds: tuple[float, ...] = tuple(
            start * factor**i for i in range(count)
        )
        self._counts = [0] * (count + 1)  # final slot = overflow (+Inf)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate (upper bucket bound)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("percentile fraction must be in (0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = max(1, math.ceil(q * total))
            cumulative = 0
            for index, bucket in enumerate(self._counts):
                cumulative += bucket
                if cumulative >= rank:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return self._max
            return self._max  # unreachable; counts always sum to total

    def snapshot(self) -> dict:
        """Plain-dict view: cumulative ``le`` buckets, sum, count, max."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_sum = self._sum
            observed_max = self._max
        buckets: list[list] = []
        cumulative = 0
        for bound, bucket in zip(self.bounds, counts[:-1]):
            cumulative += bucket
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", total])
        return {
            "count": total,
            "sum": observed_sum,
            "max": observed_max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create instrument registry with name-striped locking."""

    enabled = True

    def __init__(self, *, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError("registry needs at least one lock stripe")
        self._meta = threading.Lock()
        self._stripes = tuple(threading.Lock() for _ in range(stripes))
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _lock_for(self, name: str) -> threading.Lock:
        return self._stripes[hash(name) % len(self._stripes)]

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._meta:
                instrument = self._counters.setdefault(
                    name, Counter(name, self._lock_for(name))
                )
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._meta:
                instrument = self._gauges.setdefault(
                    name, Gauge(name, self._lock_for(name))
                )
        return instrument

    def histogram(
        self,
        name: str,
        *,
        start: float = DEFAULT_LATENCY_BUCKETS[0],
        factor: float = DEFAULT_LATENCY_BUCKETS[1],
        count: int = DEFAULT_LATENCY_BUCKETS[2],
    ) -> Histogram:
        """Get-or-create; bucket geometry is honored only on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._meta:
                instrument = self._histograms.setdefault(
                    name,
                    Histogram(
                        name,
                        self._lock_for(name),
                        start=start,
                        factor=factor,
                        count=count,
                    ),
                )
        return instrument

    def snapshot(self) -> dict:
        """Plain-dict snapshot of every instrument.

        Instrument *sets* are copied under the meta lock; each value is
        then read under its own stripe lock, so every individual reading
        is internally consistent (a histogram's bucket counts always sum
        to its ``count``) even while writers are hammering.
        """
        with self._meta:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in sorted(counters, key=lambda i: i.name)},
            "gauges": {g.name: g.value for g in sorted(gauges, key=lambda i: i.name)},
            "histograms": {
                h.name: h.snapshot()
                for h in sorted(histograms, key=lambda i: i.name)
            },
        }


class _NullInstrument:
    """Inert stand-in for every instrument kind; all writes are no-ops."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    sum = 0.0
    bounds: tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"count": 0, "sum": 0.0, "max": 0.0, "buckets": []}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The off switch: every lookup returns the shared inert instrument.

    Components resolve their instruments through this object when
    observability is disabled, so the seed code paths stay structurally
    identical — same calls, same order — at near-zero cost and with no
    state retained anywhere.
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **_kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()


def _exposition_name(name: str) -> str:
    """Dotted instrument name -> Prometheus-legal metric name."""
    cleaned = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch == "_")) else "_"
        for ch in name
    )
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Prometheus-style text exposition of a :meth:`snapshot` dict."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _exposition_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _exposition_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = _exposition_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in data.get("buckets", []):
            label = bound if isinstance(bound, str) else repr(float(bound))
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(data.get('sum', 0.0))}")
        lines.append(f"{metric}_count {data.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
