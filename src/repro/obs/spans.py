"""Request-scoped trace spans with a bounded slow-op ring buffer.

``span("wal.append")`` is a context manager on monotonic clocks.  Spans
opened while another span is active on the same thread become children,
so one service command yields a tree::

    service.put (1.8ms)
      store.commit (1.6ms)
        wal.append (1.1ms)

Only *slow* roots are retained: when a top-level span's duration crosses
the tracer's threshold, the whole tree is serialized into a fixed-size
ring buffer (oldest evicted first).  Everything else vanishes on exit —
the tracer holds no per-operation state for fast operations, which is
what keeps always-on tracing affordable.

The default tracer is the shared :data:`NULL_TRACER`; its ``span`` hands
back one reusable no-op context manager, so instrumented code paths pay
a single method call when tracing is off.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["SpanTracer", "NullTracer", "NULL_TRACER"]


class _Node:
    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end = start
        self.children: list[_Node] = []

    def serialize(self, root_start: float) -> dict:
        return {
            "name": self.name,
            "offset_seconds": self.start - root_start,
            "duration_seconds": self.end - self.start,
            "children": [
                child.serialize(root_start) for child in self.children
            ],
        }


class _Span:
    """One live span; entering pushes onto the thread's span stack."""

    __slots__ = ("_tracer", "_node")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self._node = _Node(name, 0.0)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        node = self._node
        if stack:
            stack[-1].children.append(node)
        stack.append(node)
        node.start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        node = self._node
        node.end = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] is node:
            stack.pop()
        if not stack:
            tracer._finish_root(node)


class SpanTracer:
    """Nesting span recorder retaining only slow span trees."""

    enabled = True

    def __init__(
        self,
        *,
        slow_threshold_seconds: float = 0.050,
        capacity: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("slow-op ring needs capacity >= 1")
        self.slow_threshold_seconds = float(slow_threshold_seconds)
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._ring_lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def _finish_root(self, node: _Node) -> None:
        duration = node.end - node.start
        if duration < self.slow_threshold_seconds:
            return
        entry = {
            "duration_seconds": duration,
            "threshold_seconds": self.slow_threshold_seconds,
            "thread": threading.current_thread().name,
            "root": node.serialize(node.start),
        }
        with self._ring_lock:
            self._ring.append(entry)

    def slow_ops(self) -> list[dict]:
        """Captured slow span trees, oldest first."""
        with self._ring_lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._ring_lock:
            self._ring.clear()


class _NullSpan:
    """Reusable no-op context manager; safe to re-enter and to nest."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def slow_ops(self) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
