"""repro — Layered List Labeling (PODS 2024) in Python.

A production-quality reproduction of *Layered List Labeling* (Bender,
Conway, Farach-Colton, Komlós, Kuszmaul; PODS 2024).  The package provides:

* the classical, adaptive, randomized, deamortized and learning-augmented
  packed-memory-array algorithms the paper composes
  (:mod:`repro.algorithms`);
* the paper's contribution — the embedding ``F ⊳ R`` of a fast list-labeling
  algorithm into a reliable one, and its layered composition
  ``X ⊳ (Y ⊳ Z)`` (:mod:`repro.core`);
* workload generators and a measurement layer used to reproduce every
  theorem/corollary of the paper as an empirical experiment
  (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart::

    from repro import Embedding, AdaptivePMA, ClassicalPMA

    labeler = Embedding(
        1024,
        fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
    )
    labeler.insert(1, "first-key")
    labeler.insert(2, "second-key")
"""

from repro.core import (
    CostTracker,
    Embedding,
    InterleavedComposition,
    LayeredLabeler,
    ListLabeler,
    Move,
    Operation,
    OperationResult,
    make_corollary11_labeler,
    make_corollary12_labeler,
)
from repro.algorithms import (
    AdaptivePMA,
    ClassicalPMA,
    DeamortizedPMA,
    ExactPredictor,
    LearnedLabeler,
    NaiveLabeler,
    NoisyPredictor,
    RandomizedPMA,
    ShardedLabeler,
    SparseNaiveLabeler,
    StalePredictor,
    make_sharded_labeler,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptivePMA",
    "ClassicalPMA",
    "CostTracker",
    "DeamortizedPMA",
    "Embedding",
    "ExactPredictor",
    "InterleavedComposition",
    "LayeredLabeler",
    "LearnedLabeler",
    "ListLabeler",
    "Move",
    "NaiveLabeler",
    "NoisyPredictor",
    "Operation",
    "OperationResult",
    "RandomizedPMA",
    "ShardedLabeler",
    "SparseNaiveLabeler",
    "StalePredictor",
    "make_corollary11_labeler",
    "make_corollary12_labeler",
    "make_sharded_labeler",
    "__version__",
]
