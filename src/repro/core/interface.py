"""The abstract list-labeling interface shared by every algorithm.

Definition 1 of the paper: a list-labeling structure of capacity ``n``
stores up to ``n`` elements in sorted order in an array of ``m = cn`` slots
for ``c = 1 + Θ(1)``, supporting rank-addressed insertions and deletions,
and is charged one unit per element moved.

Every algorithm in :mod:`repro.algorithms` (and the embedding itself)
implements :class:`ListLabeler`.  Beyond the two mutating operations the
interface deliberately exposes the *physical* slot array — the embedding of
Section 3 needs to observe exactly which slot each element of its simulated
copy of ``F`` occupies in order to plan rebuilds.

**Batch API.**  :meth:`ListLabeler.insert_batch` and
:meth:`~ListLabeler.delete_batch` apply many operations in one call.  All
ranks are interpreted against the **pre-batch** state, the application
order is deterministic (stable ascending for inserts, descending for
deletes), and the whole batch is validated — ranks in range, capacity not
exceeded, no duplicate delete ranks — before any element moves, raising
:class:`repro.core.exceptions.BatchError` otherwise.  The default
implementation loops over the singleton hooks so every algorithm supports
batches unchanged; array-based algorithms override the ``_insert_batch`` /
``_delete_batch`` hooks to service the whole batch with a single merged
rebalance (see :mod:`repro.algorithms.base`).

**Read API (the cursor protocol).**  The labels exist to make ordered reads
cheap, so every labeler also serves rank-addressed queries:

* :meth:`ListLabeler.select` — the ``rank``-th element (``O(log m)`` via an
  occupancy index everywhere in this library);
* :meth:`ListLabeler.iter_from` — a *lazy* iterator over the elements from
  ``rank`` upward: one ``O(log m)`` seek, then a streaming slot walk that
  never materializes the whole element list;
* :meth:`ListLabeler.count_range` — stored elements in a physical slot
  window (a Fenwick prefix count), with :meth:`~ListLabeler.count_rank_range`
  translating a rank interval into that window;
* :meth:`ListLabeler.cursor` — a :class:`Cursor` wrapping ``iter_from`` with
  rank bookkeeping.

Reads are side-effect-free: they must not move elements, relabel slots, or
change any observable state (the differential suite fuzzes a layout digest
across interleaved reads to enforce this).  The defaults here are ``O(m)``
scans and exist as a last resort only; every concrete structure overrides
them with indexed implementations.
"""

from __future__ import annotations

import abc
import math
from typing import Hashable, Iterator, Sequence

from repro.core.exceptions import BatchError, CapacityError, LabelerError, RankError
from repro.core.operations import (
    DELETE,
    INSERT,
    RANGE,
    SELECT,
    BatchResult,
    Operation,
    OperationResult,
)


class Cursor:
    """A lazy forward reader over a labeler's elements, positioned by rank.

    Wraps :meth:`ListLabeler.iter_from` and keeps the rank of the *next*
    element, so callers can interleave streaming with rank bookkeeping
    (pagination, merge joins).  Like any iterator over a live structure, a
    cursor is invalidated by mutations of the underlying labeler.
    """

    __slots__ = ("_labeler", "_next_rank", "_stream")

    def __init__(self, labeler: "ListLabeler", rank: int = 1) -> None:
        self._labeler = labeler
        self._next_rank = rank
        self._stream = labeler.iter_from(rank)

    @property
    def rank(self) -> int:
        """1-based rank of the element the next ``__next__`` returns."""
        return self._next_rank

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> Hashable:
        value = next(self._stream)
        self._next_rank += 1
        return value

    def take(self, count: int) -> list[Hashable]:
        """Up to ``count`` further elements (fewer at the end of the data)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        out: list[Hashable] = []
        for value in self._stream:
            out.append(value)
            if len(out) >= count:
                break
        self._next_rank += len(out)
        return out


class ListLabeler(abc.ABC):
    """Abstract base class for list-labeling data structures.

    Subclasses must implement :meth:`_insert`, :meth:`_delete` and
    :meth:`slots`; the public :meth:`insert` / :meth:`delete` wrappers
    perform rank and capacity validation and keep the element count.

    Parameters
    ----------
    capacity:
        Maximum number of elements (``n`` in the paper).
    num_slots:
        Physical array size (``m = cn``).  Subclasses provide a default via
        :meth:`default_num_slots` when the caller passes ``None``.
    """

    #: Default slack constant ``c - 1``; subclasses may override.
    default_slack = 0.25

    def __init__(self, capacity: int, num_slots: int | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        if num_slots is None:
            num_slots = self.default_num_slots(capacity)
        if num_slots < capacity:
            raise ValueError(
                f"num_slots ({num_slots}) must be at least capacity ({capacity})"
            )
        self._num_slots = num_slots
        self._size = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default_num_slots(cls, capacity: int) -> int:
        """Default physical size ``m = ceil((1 + slack) n)``."""
        return max(capacity + 1, int(math.ceil((1.0 + cls.default_slack) * capacity)))

    # ------------------------------------------------------------------
    # Read-only properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of elements the structure may hold (``n``)."""
        return self._capacity

    @property
    def num_slots(self) -> int:
        """Physical array size (``m``)."""
        return self._num_slots

    @property
    def size(self) -> int:
        """Number of elements currently stored."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self._capacity

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    # ------------------------------------------------------------------
    # Mutating operations
    # ------------------------------------------------------------------
    def insert(self, rank: int, element: Hashable) -> OperationResult:
        """Insert ``element`` so that it becomes the ``rank``-th smallest.

        Raises :class:`RankError` when ``rank`` is not in ``[1, size + 1]``
        and :class:`CapacityError` when the structure is full.
        """
        if not 1 <= rank <= self._size + 1:
            raise RankError(rank, self._size, INSERT)
        if self._size >= self._capacity:
            raise CapacityError(self._capacity)
        result = self._insert(rank, element)
        self._size += 1
        return result

    def delete(self, rank: int) -> OperationResult:
        """Delete the element of the given rank.

        Raises :class:`RankError` when ``rank`` is not in ``[1, size]``.
        """
        if not 1 <= rank <= self._size:
            raise RankError(rank, self._size, DELETE)
        result = self._delete(rank)
        self._size -= 1
        return result

    # ------------------------------------------------------------------
    # Batched mutating operations
    # ------------------------------------------------------------------
    def insert_batch(
        self, items: Sequence[tuple[int, Hashable]]
    ) -> BatchResult:
        """Insert a batch of ``(rank, element)`` pairs in one call.

        Every rank is interpreted against the **pre-batch** state: a pair
        ``(r, e)`` places ``e`` immediately before the element that held rank
        ``r`` when the call started.  Pairs sharing a rank land in the order
        given.  The batch is applied deterministically — items are stably
        sorted by rank and applied in ascending order — so the final element
        sequence is the merge of the current contents with the batch.

        The whole batch is validated up front: :class:`BatchError` is raised
        (before any element moves) when a rank falls outside
        ``[1, size + 1]`` or the batch would exceed the capacity.

        The default implementation loops over singleton :meth:`insert` calls;
        array-based subclasses override the :meth:`_insert_batch` hook with a
        single merged rebalance pass, which is what makes bulk loads cheap.
        """
        prepared = self._prepare_insert_batch(items)
        if not prepared:
            return BatchResult(count=0)
        results = self._insert_batch(prepared)
        return BatchResult(count=len(prepared), results=results)

    def delete_batch(self, ranks: Sequence[int]) -> BatchResult:
        """Delete the elements holding the given **pre-batch** ranks.

        Ranks are interpreted against the state before the call; duplicates
        (which would delete one element twice) raise :class:`BatchError`, as
        do ranks outside ``[1, size]`` — in both cases before any element
        moves.  The batch is applied deterministically in descending rank
        order, which keeps every remaining pre-batch rank valid.
        """
        prepared = self._prepare_delete_batch(ranks)
        if not prepared:
            return BatchResult(count=0)
        results = self._delete_batch(prepared)
        return BatchResult(count=len(prepared), results=results)

    def _prepare_insert_batch(
        self, items: Sequence[tuple[int, Hashable]]
    ) -> list[tuple[int, Hashable]]:
        """Validate an insert batch and return it stably sorted by rank."""
        prepared = [(rank, element) for rank, element in items]
        for rank, _ in prepared:
            if not 1 <= rank <= self._size + 1:
                raise BatchError(
                    f"insert_batch rank {rank} out of range for a structure "
                    f"holding {self._size} element(s)"
                )
        if self._size + len(prepared) > self._capacity:
            raise BatchError(
                f"insert_batch of {len(prepared)} element(s) exceeds capacity "
                f"{self._capacity} (size {self._size})"
            )
        prepared.sort(key=lambda item: item[0])  # stable: ties keep order
        return prepared

    def _prepare_delete_batch(self, ranks: Sequence[int]) -> list[int]:
        """Validate a delete batch and return its ranks sorted descending."""
        prepared = list(ranks)
        seen: set[int] = set()
        for rank in prepared:
            if not 1 <= rank <= self._size:
                raise BatchError(
                    f"delete_batch rank {rank} out of range for a structure "
                    f"holding {self._size} element(s)"
                )
            if rank in seen:
                raise BatchError(f"delete_batch names rank {rank} twice")
            seen.add(rank)
        prepared.sort(reverse=True)
        return prepared

    def _insert_batch(
        self, prepared: Sequence[tuple[int, Hashable]]
    ) -> list[OperationResult]:
        """Apply a validated, rank-sorted insert batch; must update the size.

        The default loops over the singleton hook: the ``i``-th prepared item
        (0-based) goes to rank ``rank + i``, which realizes the pre-batch
        rank semantics under sequential application.
        """
        results = []
        for offset, (rank, element) in enumerate(prepared):
            results.append(self._insert(rank + offset, element))
            self._size += 1
        return results

    def _delete_batch(self, prepared: Sequence[int]) -> list[OperationResult]:
        """Apply a validated, descending-sorted delete batch; updates the size."""
        results = []
        for rank in prepared:
            results.append(self._delete(rank))
            self._size -= 1
        return results

    def apply(self, operation: Operation, element: Hashable | None = None) -> OperationResult:
        """Apply an :class:`Operation`, generating an element if needed.

        For insertions, ``element`` defaults to ``operation.key`` when given
        and otherwise to a fresh integer identifier.
        """
        if operation.is_insert:
            if element is None:
                element = operation.key
            if element is None:
                element = self._fresh_element()
            return self.insert(operation.rank, element)
        return self.delete(operation.rank)

    def bulk_load(self, elements: Sequence[Hashable]) -> int:
        """Load ``elements`` (already in rank order) into an empty structure.

        Returns the total move cost.  The default implementation simply
        appends one element at a time; array-based subclasses override it
        with an even layout at linear cost, which is what the embedding's
        R-shell uses to simulate its Θ(n) initialization insertions.
        """
        if self._size:
            raise LabelerError("bulk_load requires an empty structure")
        total = 0
        for index, element in enumerate(elements):
            total += self.insert(index + 1, element).cost
        return total

    # ------------------------------------------------------------------
    # Serialization (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A pure-Python description of the structure's current state.

        The returned document contains only dicts, lists and the stored
        elements themselves (as leaves), so a codec that knows how to encode
        the elements can persist it — this is what the durable store
        (:mod:`repro.store`) writes into its per-shard snapshot files.

        The default format, ``"elements"``, records the element sequence
        only; :meth:`restore` rebuilds it via :meth:`bulk_load`, which yields
        a *valid* (evenly laid out) state but not necessarily the exact slot
        assignment this instance currently has.  Structures whose physical
        layout must survive a round-trip exactly override both hooks (every
        dense array algorithm and the sharding engine do).
        """
        return {
            "format": "elements",
            "size": self._size,
            "elements": list(self.elements()),
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` document into this (empty) structure.

        The default handles the ``"elements"`` format by bulk-loading the
        recorded sequence.  Raises :class:`LabelerError` when the structure
        is not empty or the format is not recognized.
        """
        if self._size:
            raise LabelerError("restore requires an empty structure")
        if state.get("format") != "elements":
            raise LabelerError(
                f"{type(self).__name__} cannot restore snapshot format "
                f"{state.get('format')!r}"
            )
        self.bulk_load(state["elements"])

    _fresh_counter = 0

    def _fresh_element(self) -> str:
        """Generate a unique element identifier for anonymous insertions."""
        ListLabeler._fresh_counter += 1
        return f"auto-{ListLabeler._fresh_counter}"

    # ------------------------------------------------------------------
    # Physical state
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def slots(self) -> Sequence[Hashable | None]:
        """The physical array: one entry per slot, ``None`` marks a free slot.

        Occupied slots read left-to-right must yield the stored elements in
        rank order — this is the defining invariant of list labeling and is
        enforced by :func:`repro.core.validation.check_labeler`.
        """

    def elements(self) -> list[Hashable]:
        """The stored elements in rank order."""
        return [item for item in self.slots() if item is not None]

    def slot_of(self, element: Hashable) -> int:
        """Physical slot index currently holding ``element``.

        The default implementation is an ``O(m)`` scan of :meth:`slots` — a
        last-resort fallback only.  Every concrete structure in this library
        overrides it with an indexed ``O(1)``/``O(log m)`` lookup
        (:class:`repro.algorithms.base.DenseArrayLabeler` via its position
        dict, the embedding via the physical array's index), and callers on
        hot paths must go through those overrides rather than this scan —
        ``tests/test_interface.py`` guards that no registered algorithm
        silently falls back here.
        """
        for index, item in enumerate(self.slots()):
            if item == element:
                return index
        raise KeyError(f"element {element!r} is not stored")

    def rank_of(self, element: Hashable) -> int:
        """1-based rank of a stored element.

        The default implementation scans the slot array (``O(m)``);
        subclasses with occupancy indexes override it with an
        ``O(log m)`` rank query.
        """
        rank = 0
        for item in self.slots():
            if item is None:
                continue
            rank += 1
            if item == element:
                return rank
        raise KeyError(f"element {element!r} is not stored")

    def labels(self) -> dict[Hashable, int]:
        """Map each stored element to its current label (slot index).

        This is the "label" view of the problem described in footnote 1 of
        the paper: labels are monotone in rank.
        """
        return {
            item: index for index, item in enumerate(self.slots()) if item is not None
        }

    # ------------------------------------------------------------------
    # Read path (the cursor protocol)
    # ------------------------------------------------------------------
    def _check_read_rank(self, rank: int, kind: str, *, slack: int = 0) -> None:
        """Validate a read rank; ``slack=1`` admits the one-past-end rank."""
        if not 1 <= rank <= self._size + slack:
            raise RankError(rank, self._size, kind)

    def select(self, rank: int) -> Hashable:
        """The element of the given 1-based rank (select-kth).

        The default is an ``O(m)`` scan of :meth:`slots` — a last-resort
        fallback only; every concrete structure overrides it with an
        occupancy-index select (``O(log m)``).
        """
        self._check_read_rank(rank, SELECT)
        remaining = rank
        for item in self.slots():
            if item is None:
                continue
            remaining -= 1
            if remaining == 0:
                return item
        raise RankError(rank, self._size, SELECT)  # pragma: no cover

    def iter_from(self, rank: int) -> Iterator[Hashable]:
        """Lazily yield the stored elements of ranks ``rank, rank+1, …``.

        ``rank == size + 1`` is allowed and yields nothing (the natural
        "cursor at the end" state).  The stream is lazy: elements are read
        off the physical array as the consumer advances, never materialized
        up front.  Overrides seek the start slot through an occupancy index
        (``O(log m)``) and then walk slots; the default scans from slot 0.
        Mutating the labeler invalidates the stream.
        """
        self._check_read_rank(rank, RANGE, slack=1)
        return self._iter_from(rank)

    def _iter_from(self, rank: int) -> Iterator[Hashable]:
        """The stream behind :meth:`iter_from`; the rank is already valid."""
        remaining = rank
        for item in self.slots():
            if item is None:
                continue
            remaining -= 1
            if remaining <= 0:
                yield item

    def cursor(self, rank: int = 1) -> Cursor:
        """A :class:`Cursor` positioned so its next element has ``rank``."""
        return Cursor(self, rank)

    def count_range(self, lo: int, hi: int) -> int:
        """Number of stored elements occupying slots in ``[lo, hi)``.

        This is the label-window count (how many elements carry labels in a
        physical interval); bounds are clamped to the array.  The default
        scans; concrete structures answer it with one Fenwick prefix
        difference (``O(log m)``).
        """
        lo = max(0, lo)
        hi = min(self._num_slots, hi)
        if hi <= lo:
            return 0
        slots = self.slots()
        return sum(1 for index in range(lo, hi) if slots[index] is not None)

    def slot_of_rank(self, rank: int) -> int:
        """Physical slot (label) of the element with the given rank."""
        self._check_read_rank(rank, SELECT)
        return self.slot_of(self.select(rank))

    def count_rank_range(self, lo_rank: int, hi_rank: int) -> int:
        """Number of stored elements with ranks in ``[lo_rank, hi_rank]``.

        Answered through the *slot-window* count between the two rank
        endpoints' labels, so the call exercises — and cross-checks — the
        occupancy indexes: a consistent structure always returns
        ``hi_rank - lo_rank + 1``, and the workload runner asserts exactly
        that on every COUNT_RANGE operation.
        """
        if hi_rank < lo_rank:
            return 0
        self._check_read_rank(lo_rank, SELECT)
        self._check_read_rank(hi_rank, SELECT)
        return self.count_range(
            self.slot_of_rank(lo_rank), self.slot_of_rank(hi_rank) + 1
        )

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.elements())

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        """Perform the insertion; rank and capacity are already validated."""

    @abc.abstractmethod
    def _delete(self, rank: int) -> OperationResult:
        """Perform the deletion; the rank is already validated."""

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"num_slots={self._num_slots}, size={self._size})"
        )
