"""The abstract list-labeling interface shared by every algorithm.

Definition 1 of the paper: a list-labeling structure of capacity ``n``
stores up to ``n`` elements in sorted order in an array of ``m = cn`` slots
for ``c = 1 + Θ(1)``, supporting rank-addressed insertions and deletions,
and is charged one unit per element moved.

Every algorithm in :mod:`repro.algorithms` (and the embedding itself)
implements :class:`ListLabeler`.  Beyond the two mutating operations the
interface deliberately exposes the *physical* slot array — the embedding of
Section 3 needs to observe exactly which slot each element of its simulated
copy of ``F`` occupies in order to plan rebuilds.
"""

from __future__ import annotations

import abc
import math
from typing import Hashable, Iterator, Sequence

from repro.core.exceptions import CapacityError, LabelerError, RankError
from repro.core.operations import DELETE, INSERT, Operation, OperationResult


class ListLabeler(abc.ABC):
    """Abstract base class for list-labeling data structures.

    Subclasses must implement :meth:`_insert`, :meth:`_delete` and
    :meth:`slots`; the public :meth:`insert` / :meth:`delete` wrappers
    perform rank and capacity validation and keep the element count.

    Parameters
    ----------
    capacity:
        Maximum number of elements (``n`` in the paper).
    num_slots:
        Physical array size (``m = cn``).  Subclasses provide a default via
        :meth:`default_num_slots` when the caller passes ``None``.
    """

    #: Default slack constant ``c - 1``; subclasses may override.
    default_slack = 0.25

    def __init__(self, capacity: int, num_slots: int | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        if num_slots is None:
            num_slots = self.default_num_slots(capacity)
        if num_slots < capacity:
            raise ValueError(
                f"num_slots ({num_slots}) must be at least capacity ({capacity})"
            )
        self._num_slots = num_slots
        self._size = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default_num_slots(cls, capacity: int) -> int:
        """Default physical size ``m = ceil((1 + slack) n)``."""
        return max(capacity + 1, int(math.ceil((1.0 + cls.default_slack) * capacity)))

    # ------------------------------------------------------------------
    # Read-only properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of elements the structure may hold (``n``)."""
        return self._capacity

    @property
    def num_slots(self) -> int:
        """Physical array size (``m``)."""
        return self._num_slots

    @property
    def size(self) -> int:
        """Number of elements currently stored."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self._capacity

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    # ------------------------------------------------------------------
    # Mutating operations
    # ------------------------------------------------------------------
    def insert(self, rank: int, element: Hashable) -> OperationResult:
        """Insert ``element`` so that it becomes the ``rank``-th smallest.

        Raises :class:`RankError` when ``rank`` is not in ``[1, size + 1]``
        and :class:`CapacityError` when the structure is full.
        """
        if not 1 <= rank <= self._size + 1:
            raise RankError(rank, self._size, INSERT)
        if self._size >= self._capacity:
            raise CapacityError(self._capacity)
        result = self._insert(rank, element)
        self._size += 1
        return result

    def delete(self, rank: int) -> OperationResult:
        """Delete the element of the given rank.

        Raises :class:`RankError` when ``rank`` is not in ``[1, size]``.
        """
        if not 1 <= rank <= self._size:
            raise RankError(rank, self._size, DELETE)
        result = self._delete(rank)
        self._size -= 1
        return result

    def apply(self, operation: Operation, element: Hashable | None = None) -> OperationResult:
        """Apply an :class:`Operation`, generating an element if needed.

        For insertions, ``element`` defaults to ``operation.key`` when given
        and otherwise to a fresh integer identifier.
        """
        if operation.is_insert:
            if element is None:
                element = operation.key
            if element is None:
                element = self._fresh_element()
            return self.insert(operation.rank, element)
        return self.delete(operation.rank)

    def bulk_load(self, elements: Sequence[Hashable]) -> int:
        """Load ``elements`` (already in rank order) into an empty structure.

        Returns the total move cost.  The default implementation simply
        appends one element at a time; array-based subclasses override it
        with an even layout at linear cost, which is what the embedding's
        R-shell uses to simulate its Θ(n) initialization insertions.
        """
        if self._size:
            raise LabelerError("bulk_load requires an empty structure")
        total = 0
        for index, element in enumerate(elements):
            total += self.insert(index + 1, element).cost
        return total

    _fresh_counter = 0

    def _fresh_element(self) -> str:
        """Generate a unique element identifier for anonymous insertions."""
        ListLabeler._fresh_counter += 1
        return f"auto-{ListLabeler._fresh_counter}"

    # ------------------------------------------------------------------
    # Physical state
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def slots(self) -> Sequence[Hashable | None]:
        """The physical array: one entry per slot, ``None`` marks a free slot.

        Occupied slots read left-to-right must yield the stored elements in
        rank order — this is the defining invariant of list labeling and is
        enforced by :func:`repro.core.validation.check_labeler`.
        """

    def elements(self) -> list[Hashable]:
        """The stored elements in rank order."""
        return [item for item in self.slots() if item is not None]

    def slot_of(self, element: Hashable) -> int:
        """Physical slot index currently holding ``element``.

        The default implementation scans :meth:`slots`; subclasses that keep
        a reverse index may override it.
        """
        for index, item in enumerate(self.slots()):
            if item == element:
                return index
        raise KeyError(f"element {element!r} is not stored")

    def labels(self) -> dict[Hashable, int]:
        """Map each stored element to its current label (slot index).

        This is the "label" view of the problem described in footnote 1 of
        the paper: labels are monotone in rank.
        """
        return {
            item: index for index, item in enumerate(self.slots()) if item is not None
        }

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.elements())

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        """Perform the insertion; rank and capacity are already validated."""

    @abc.abstractmethod
    def _delete(self, rank: int) -> OperationResult:
        """Perform the deletion; the rank is already validated."""

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"num_slots={self._num_slots}, size={self._size})"
        )
