"""The shared physical array of the embedding ``F ⊳ R`` — numpy + bitboards.

:class:`VectorPhysicalArray` is the third backend of the embedding's shared
array ``A``, behind :class:`repro.core.physical_reference.ReferencePhysicalArray`
(the seed oracle) and :class:`repro.core.physical.PhysicalArray` (the slab
rewrite).  It implements the identical public surface and produces
*bit-identical move logs* — the PR 3 differential wall replays recorded
workload traces on every backend and asserts (element, source, destination)
equality, so any behavioural drift fails the suite.

Where the slab backend spends its time in interpreted ``PackedFenwick``
tree walks (``O(log m)`` per mutation, per select), this backend replaces
the trees entirely:

* slot state is one ``array('B')`` bitmask slab with a shared-memory numpy
  ``uint8`` view (:func:`numpy.frombuffer`) — scalar writes go through the
  stdlib array, vectorized sweeps through numpy;
* each of the four index lanes (F-slot / non-empty / element-present /
  dummy-buffer) is additionally kept as a **bitboard**: an ``array('Q')``
  of uint64 words, one bit per slot, updated with a single XOR per
  mutation (O(1), no tree walk) plus an O(1) per-lane total;
* ``prefix``/``select``/range counts run on the bitboards with
  ``int.bit_count()`` popcounts — a select touches a handful of words, and
  a per-lane *finger* (the last select's rank and position) turns the
  rank-local selects of the embedding's fast path into one- or two-word
  walks; whole-lane scans fall back to vectorized
  :func:`numpy.bitwise_count` over the uint64 view;
* :meth:`chain_move` short-circuits the dominant workload case — a single
  element crossing an all-F span with no deadweight and no relabel — into
  three range popcounts and one ``move_element``; wide or mixed chains
  take a masked ``flatnonzero`` sweep with the relabel computed as a
  vectorized desired-vs-current diff, so only actual flips pay;
* :meth:`elements_at_ranks` answers a whole batch of rank lookups with one
  masked ``flatnonzero`` and one fancy-indexed int64 gather.

Element contents use the same interning scheme as the slab backend: an
``array('q')`` of element ids (``-1`` = empty) with an int64 numpy view for
the bulk gathers, an id → position slab, and a free-list so the tables are
sized by the live set.

This module imports :mod:`numpy` at import time; use
:func:`repro.core.physical_backends.resolve_physical_factory` for the
guarded selection path that falls back to the slab backend when numpy is
missing.
"""

from __future__ import annotations

from array import array
from typing import Callable, Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.core.exceptions import InvariantViolation
from repro.core.operations import Move, MoveRecorder
from repro.core.physical_kinds import (
    BIT_DUMMY,
    BIT_F,
    BIT_NONEMPTY,
    BIT_REAL,
    BUFFER,
    F_SLOT,
    KIND_MASKS,
    LANE_DUMMY,
    LANE_F,
    LANE_NONEMPTY,
    LANE_REAL,
    MASK_KIND,
    NUM_LANES,
    R_EMPTY,
)

__all__ = ["VectorPhysicalArray"]

#: Below this many bitboard words, prefix/select walk a Python loop; above
#: it the vectorized ``np.bitwise_count`` path wins.
_WORD_LOOP_CUTOFF = 96

#: Spans at most this wide take the materialized Python chain scan in
#: :meth:`VectorPhysicalArray.chain_move`; wider spans take the numpy sweep.
_CHAIN_SCAN_CUTOFF = 64

#: A select whose rank is within this distance of the lane's finger walks
#: the bitboard from the finger instead of restarting from word zero.
_FINGER_WALK_CUTOFF = 512

#: ``mask`` for every (kind, has_element) pair, indexed ``kind * 2 + has``.
_KIND_MASK_TABLE = np.array(
    [KIND_MASKS[kind][has] for kind in (R_EMPTY, F_SLOT, BUFFER) for has in (0, 1)],
    dtype=np.uint8,
)

#: ``MASK_KIND`` as a numpy lookup table for vectorized kind recovery.
_MASK_KIND_TABLE = np.array(MASK_KIND, dtype=np.uint8)


def _nth_bit(word: int, rank: int) -> int:
    """Bit index of the ``rank``-th (1-based) set bit of a uint64 word."""
    offset = 0
    if rank > 8:
        low = word & 0xFFFFFFFF
        count = low.bit_count()
        if rank > count:
            rank -= count
            word >>= 32
            offset = 32
        else:
            word = low
        low = word & 0xFFFF
        count = low.bit_count()
        if rank > count:
            rank -= count
            word >>= 16
            offset += 16
        else:
            word = low
        low = word & 0xFF
        count = low.bit_count()
        if rank > count:
            rank -= count
            word >>= 8
            offset += 8
        else:
            word = low
    for _ in range(rank - 1):
        word &= word - 1
    return offset + (word & -word).bit_length() - 1


class VectorPhysicalArray:
    """The embedding's array ``A`` on numpy slabs with bitboard lanes."""

    # Defaults so instances materialized without ``__init__`` (object graphs
    # rebuilt via ``__new__``) never trip on missing observability state.
    _obs_enabled = False

    def __init__(self, num_slots: int) -> None:
        self._m = num_slots
        #: Packed per-slot state; scalar access through the stdlib array…
        self._mask_buf = array("B", bytes(num_slots))
        #: …and vectorized access through a shared-memory uint8 view.
        self._masks = (
            np.frombuffer(self._mask_buf, dtype=np.uint8)
            if num_slots
            else np.empty(0, dtype=np.uint8)
        )
        #: Interned element id per slot; -1 marks an element-free slot.
        self._eid_buf = (
            array("q", b"\xff" * (8 * num_slots)) if num_slots else array("q")
        )
        self._eid = (
            np.frombuffer(self._eid_buf, dtype=np.int64)
            if num_slots
            else np.empty(0, dtype=np.int64)
        )
        #: Per-lane bitboards (uint64 words, bit ``p & 63`` of word
        #: ``p >> 6`` = slot ``p``) with shared-memory numpy views, plus
        #: O(1)-maintained totals and select fingers.
        self._nwords = (num_slots + 63) >> 6
        self._words = [
            array("Q", bytes(8 * self._nwords)) for _ in range(NUM_LANES)
        ]
        self._words_np = [
            np.frombuffer(words, dtype=np.uint64)
            if self._nwords
            else np.empty(0, dtype=np.uint64)
            for words in self._words
        ]
        self._tot = [0] * NUM_LANES
        self._fingers: list[tuple[int, int] | None] = [None] * NUM_LANES
        #: id → element object and element → id (the interning table).
        self._elem_of: list[Hashable | None] = []
        self._id_of: dict[Hashable, int] = {}
        #: id → physical position (-1 while the element is off the array).
        self._pos = array("q")
        self._free_ids: list[int] = []
        #: Where recorded moves go during an operation: ``None``, a plain
        #: ``list[Move]``, or a :class:`MoveRecorder` (the zero-alloc path).
        self.move_sink: list[Move] | MoveRecorder | None = None
        #: Per-element count of deadweight moves (Lemma 5 accounting).
        self.deadweight_by_element: dict[Hashable, int] = {}
        self.total_deadweight_moves = 0
        reg = obs.get_registry()
        if reg.enabled:
            self._obs_enabled = True
            self._obs_chain_moves = reg.counter("physical.chain_moves")
            self._obs_shell_moves = reg.counter("physical.shell_moves")
            self._obs_relabel_flips = reg.counter("physical.relabel_flips")
            # Index into PHYSICAL_BACKENDS: 0=reference, 1=slab, 2=vector
            # (the reference backend stays seed-pure and never reports).
            reg.gauge("physical.backend").set(2.0)

    # ------------------------------------------------------------------
    # Lane bookkeeping (the O(1) replacement for the Fenwick walks)
    # ------------------------------------------------------------------
    def _set_mask(self, position: int, mask: int) -> None:
        buf = self._mask_buf
        changed = buf[position] ^ mask
        if not changed:
            return
        buf[position] = mask
        word = position >> 6
        bit = 1 << (position & 63)
        tot = self._tot
        words = self._words
        fingers = self._fingers
        if changed & BIT_F:
            words[LANE_F][word] ^= bit
            tot[LANE_F] += 1 if mask & BIT_F else -1
            fingers[LANE_F] = None
        if changed & BIT_NONEMPTY:
            words[LANE_NONEMPTY][word] ^= bit
            tot[LANE_NONEMPTY] += 1 if mask & BIT_NONEMPTY else -1
            fingers[LANE_NONEMPTY] = None
        if changed & BIT_REAL:
            words[LANE_REAL][word] ^= bit
            tot[LANE_REAL] += 1 if mask & BIT_REAL else -1
            fingers[LANE_REAL] = None
        if changed & BIT_DUMMY:
            words[LANE_DUMMY][word] ^= bit
            tot[LANE_DUMMY] += 1 if mask & BIT_DUMMY else -1
            fingers[LANE_DUMMY] = None

    def _rebuild_lanes(self) -> None:
        """Recompute every bitboard and total from the mask slab (used after
        bulk mask writes)."""
        self._fingers = [None] * NUM_LANES
        if not self._m:
            return
        masks = self._masks
        padded = np.zeros(self._nwords * 8, dtype=np.uint8)
        for lane in range(NUM_LANES):
            bits = (masks >> lane) & np.uint8(1)
            packed = np.packbits(bits, bitorder="little")
            padded[: packed.size] = packed
            padded[packed.size:] = 0
            self._words_np[lane][:] = padded.view(np.uint64)
            self._tot[lane] = int(bits.sum())

    def _prefix(self, lane: int, end: int) -> int:
        """Number of lane bits set in ``[0, end)``."""
        words = self._words[lane]
        full = end >> 6
        if full <= _WORD_LOOP_CUTOFF:
            total = 0
            for index in range(full):
                total += words[index].bit_count()
        else:
            total = int(np.bitwise_count(self._words_np[lane][:full]).sum())
        rest = end & 63
        if rest:
            total += (words[full] & ((1 << rest) - 1)).bit_count()
        return total

    def _range_count(self, lane: int, lo: int, hi: int) -> int:
        """Number of lane bits set in ``[lo, hi]`` (inclusive)."""
        words = self._words[lane]
        wlo = lo >> 6
        whi = hi >> 6
        if wlo == whi:
            window = (words[wlo] >> (lo & 63)) & ((1 << (hi - lo + 1)) - 1)
            return window.bit_count()
        if whi - wlo > _WORD_LOOP_CUTOFF:
            return self._prefix(lane, hi + 1) - self._prefix(lane, lo)
        total = (words[wlo] >> (lo & 63)).bit_count()
        for index in range(wlo + 1, whi):
            total += words[index].bit_count()
        total += (words[whi] & ((1 << ((hi & 63) + 1)) - 1)).bit_count()
        return total

    def _select(self, lane: int, k: int) -> int:
        """Position of the ``k``-th (1-based) slot with the lane bit set.

        The lane finger caches the last answered (rank, position): nearby
        ranks — the embedding's access pattern — walk a word or two from
        the finger instead of re-ranking the whole bitboard.
        """
        if k < 1 or k > self._tot[lane]:
            raise IndexError(
                f"select({k}) out of range (lane {lane} total={self._tot[lane]})"
            )
        finger = self._fingers[lane]
        words = self._words[lane]
        if finger is not None:
            last_k, last_pos = finger
            delta = k - last_k
            if delta == 0:
                return last_pos
            if -_FINGER_WALK_CUTOFF <= delta <= _FINGER_WALK_CUTOFF:
                index = last_pos >> 6
                if delta > 0:
                    window = words[index] & -(2 << (last_pos & 63))
                    remaining = delta
                    while True:
                        count = window.bit_count()
                        if count >= remaining:
                            break
                        remaining -= count
                        index += 1
                        window = words[index]
                else:
                    window = words[index] & ((1 << (last_pos & 63)) - 1)
                    remaining = -delta
                    while True:
                        count = window.bit_count()
                        if count >= remaining:
                            remaining = count - remaining + 1
                            break
                        remaining -= count
                        index -= 1
                        window = words[index]
                position = (index << 6) + _nth_bit(window, remaining)
                self._fingers[lane] = (k, position)
                return position
        nwords = self._nwords
        remaining = k
        if nwords <= _WORD_LOOP_CUTOFF:
            for index in range(nwords):
                count = words[index].bit_count()
                if remaining <= count:
                    break
                remaining -= count
        else:
            cum = np.cumsum(np.bitwise_count(self._words_np[lane]))
            index = int(np.searchsorted(cum, k))
            if index:
                remaining = k - int(cum[index - 1])
        position = (index << 6) + _nth_bit(words[index], remaining)
        self._fingers[lane] = (k, position)
        return position

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def _intern(self, element: Hashable) -> int:
        eid = self._id_of.get(element)
        if eid is None:
            free = self._free_ids
            if free:
                eid = free.pop()
                self._elem_of[eid] = element
            else:
                eid = len(self._elem_of)
                self._elem_of.append(element)
                self._pos.append(-1)
            self._id_of[element] = eid
        return eid

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return self._m

    def kind(self, position: int) -> int:
        return MASK_KIND[self._mask_buf[position]]

    def element(self, position: int) -> Hashable | None:
        eid = self._eid_buf[position]
        return None if eid < 0 else self._elem_of[eid]

    def kinds(self) -> Sequence[int]:
        return tuple(_MASK_KIND_TABLE[self._masks].tolist())

    def slots(self) -> Sequence[Hashable | None]:
        """Physical contents, one entry per slot (``None`` = no element)."""
        elem_of = self._elem_of
        return tuple(None if eid < 0 else elem_of[eid] for eid in self._eid_buf)

    def elements(self) -> list[Hashable]:
        """All stored elements in physical (= rank) order."""
        elem_of = self._elem_of
        eids = self._eid[np.flatnonzero(self._masks & BIT_REAL)]
        return [elem_of[eid] for eid in eids.tolist()]

    def position_of(self, element: Hashable) -> int:
        eid = self._id_of.get(element, -1)
        if eid >= 0:
            position = self._pos[eid]
            if position >= 0:
                return position
        raise KeyError(f"element {element!r} is not stored")

    def contains(self, element: Hashable) -> bool:
        eid = self._id_of.get(element, -1)
        return eid >= 0 and self._pos[eid] >= 0

    @property
    def element_count(self) -> int:
        return self._tot[LANE_REAL]

    def element_at_rank(self, rank: int) -> Hashable:
        """The ``rank``-th (1-based) stored element."""
        position = self._select(LANE_REAL, rank)
        eid = self._eid_buf[position]
        assert eid >= 0
        return self._elem_of[eid]

    def elements_at_ranks(self, ranks: Sequence[int]) -> list[Hashable]:
        """The stored elements at a whole batch of 1-based ranks.

        One masked ``flatnonzero`` enumerates every occupied position, one
        fancy-indexed gather answers the batch — ``O(m + k)`` for ``k``
        lookups instead of ``k`` independent selects.
        """
        positions = np.flatnonzero(self._masks & BIT_REAL)
        idx = np.asarray(ranks, dtype=np.int64) - 1
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= positions.size):
            raise IndexError(f"rank batch out of range (total={positions.size})")
        elem_of = self._elem_of
        return [elem_of[eid] for eid in self._eid[positions[idx]].tolist()]

    def position_of_rank(self, rank: int) -> int:
        """Physical position of the ``rank``-th (1-based) stored element."""
        return self._select(LANE_REAL, rank)

    def iter_elements_from(self, rank: int) -> Iterator[Hashable]:
        """Lazily yield the stored elements of ranks ``rank, rank+1, …``."""
        if rank > self._tot[LANE_REAL]:
            return
        eids = self._eid_buf
        elem_of = self._elem_of
        for position in range(self._select(LANE_REAL, rank), self._m):
            eid = eids[position]
            if eid >= 0:
                yield elem_of[eid]

    # ------------------------------------------------------------------
    # Counting helpers
    # ------------------------------------------------------------------
    def real_between(self, lo: int, hi: int) -> int:
        """Number of stored elements at positions in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self._range_count(LANE_REAL, lo, hi - 1)

    def nonempty_between(self, lo: int, hi: int) -> int:
        """Number of non-``R_EMPTY`` slots at positions in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self._range_count(LANE_NONEMPTY, lo, hi - 1)

    def token_rank(self, position: int) -> int:
        """1-based R-shell rank of the (non-empty) slot at ``position``."""
        if not self._mask_buf[position] & BIT_NONEMPTY:
            raise ValueError(f"slot {position} is an R-empty slot, not a token")
        return self._prefix(LANE_NONEMPTY, position) + 1

    @property
    def f_slot_count(self) -> int:
        return self._tot[LANE_F]

    @property
    def buffer_count(self) -> int:
        return self._tot[LANE_NONEMPTY] - self._tot[LANE_F]

    @property
    def dummy_buffer_count(self) -> int:
        return self._tot[LANE_DUMMY]

    @property
    def buffered_element_count(self) -> int:
        """Number of real elements currently living in buffer slots."""
        return self.buffer_count - self.dummy_buffer_count

    # ------------------------------------------------------------------
    # F-coordinate translation
    # ------------------------------------------------------------------
    def f_position(self, f_index: int) -> int:
        """Physical position of the ``f_index``-th (0-based) F-slot."""
        return self._select(LANE_F, f_index + 1)

    def f_index_of(self, position: int) -> int:
        """0-based F-index of the F-slot at ``position``."""
        if not self._mask_buf[position] & BIT_F:
            raise ValueError(f"slot {position} is not an F-slot")
        return self._prefix(LANE_F, position)

    def f_contents(self) -> list[Hashable | None]:
        """Contents of the F-slots in F-order (the array ``Ẽ_F`` of Section 3)."""
        elem_of = self._elem_of
        eids = self._eid[np.flatnonzero(self._masks & BIT_F)]
        return [None if eid < 0 else elem_of[eid] for eid in eids.tolist()]

    # ------------------------------------------------------------------
    # Dummy-buffer queries (needed by the slow path, Lemma 4 compatible)
    # ------------------------------------------------------------------
    def nearest_dummy_buffer(self, position: int) -> int | None:
        """Position of the dummy buffer slot nearest to ``position``.

        "Nearest" is measured in *truncated-state order* (number of non-empty
        slots in between), which depends only on the truncated state ``T`` and
        therefore keeps the R-shell's input independent of its random bits
        (Lemma 4).  Ties prefer the left neighbour.
        """
        total = self._tot[LANE_DUMMY]
        if total == 0:
            return None
        before = self._prefix(LANE_DUMMY, position + 1)
        left = self._select(LANE_DUMMY, before) if before > 0 else None
        right = self._select(LANE_DUMMY, before + 1) if before < total else None
        if left is None:
            return right
        if right is None:
            return left
        left_distance = self.nonempty_between(left, position + 1)
        right_distance = self.nonempty_between(position, right + 1)
        return left if left_distance <= right_distance else right

    # ------------------------------------------------------------------
    # Low-level mutation (records moves, keeps every index consistent)
    # ------------------------------------------------------------------
    def _record(self, element: Hashable, source: int | None, destination: int | None) -> None:
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, source, destination))
            else:
                sink.record(element, source, destination)

    def set_kind(self, position: int, kind: int) -> None:
        """Relabel a slot (free of charge — no element moves)."""
        self._set_mask(position, KIND_MASKS[kind][self._eid_buf[position] >= 0])

    def put_element(self, position: int, element: Hashable, *, deadweight: bool = False) -> None:
        """Place ``element`` into the empty slot at ``position`` (cost 1)."""
        eids = self._eid_buf
        if eids[position] >= 0:
            raise InvariantViolation(
                f"slot {position} already holds {self._elem_of[eids[position]]!r}"
            )
        eid = self._intern(element)
        eids[position] = eid
        self._pos[eid] = position
        self._set_mask(
            position, (self._mask_buf[position] | BIT_REAL) & ~BIT_DUMMY
        )
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, None, position))
            else:
                sink.record(element, None, position)
        if deadweight:
            self._note_deadweight(element)

    def take_element(self, position: int) -> Hashable:
        """Remove and return the element at ``position`` (cost 0)."""
        eids = self._eid_buf
        eid = eids[position]
        if eid < 0:
            raise InvariantViolation(f"slot {position} holds no element")
        element = self._elem_of[eid]
        eids[position] = -1
        self._pos[eid] = -1
        self._elem_of[eid] = None
        del self._id_of[element]
        self._free_ids.append(eid)
        mask = self._mask_buf[position] & ~BIT_REAL
        if mask & BIT_NONEMPTY and not mask & BIT_F:
            mask |= BIT_DUMMY
        self._set_mask(position, mask)
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, position, None))
            else:
                sink.record(element, position, None)
        return element

    def move_element(self, src: int, dst: int, *, deadweight: bool = False) -> None:
        """Move the element at ``src`` to the element-free slot ``dst`` (cost 1).

        The lane updates are inlined rather than routed through
        :meth:`_set_mask`: an element move can only change the REAL and
        DUMMY lanes (kind labels stay put), so the bookkeeping is two word
        XORs plus the conditional dummy flips.
        """
        if src == dst:
            return
        eids = self._eid_buf
        eid = eids[src]
        if eid < 0:
            raise InvariantViolation(f"slot {src} holds no element")
        if eids[dst] >= 0:
            raise InvariantViolation(f"slot {dst} already holds an element")
        eids[src] = -1
        eids[dst] = eid
        self._pos[eid] = dst
        buf = self._mask_buf
        words = self._words
        fingers = self._fingers
        tot = self._tot
        mask = buf[src] & ~BIT_REAL
        if mask & BIT_NONEMPTY and not mask & BIT_F:
            mask |= BIT_DUMMY
            words[LANE_DUMMY][src >> 6] ^= 1 << (src & 63)
            tot[LANE_DUMMY] += 1
            fingers[LANE_DUMMY] = None
        buf[src] = mask
        words[LANE_REAL][src >> 6] ^= 1 << (src & 63)
        old_dst = buf[dst]
        if old_dst & BIT_DUMMY:
            words[LANE_DUMMY][dst >> 6] ^= 1 << (dst & 63)
            tot[LANE_DUMMY] -= 1
            fingers[LANE_DUMMY] = None
        buf[dst] = (old_dst | BIT_REAL) & ~BIT_DUMMY
        words[LANE_REAL][dst >> 6] ^= 1 << (dst & 63)
        fingers[LANE_REAL] = None
        element = self._elem_of[eid]
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, src, dst))
            else:
                sink.record(element, src, dst)
        if deadweight:
            self._note_deadweight(element)

    def _note_deadweight(self, element: Hashable) -> None:
        self.total_deadweight_moves += 1
        self.deadweight_by_element[element] = (
            self.deadweight_by_element.get(element, 0) + 1
        )

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize_kinds(self, positions_and_kinds: Iterable[tuple[int, int]]) -> None:
        """Bulk-set the slot kinds at construction time (no cost recorded).

        Large unique batches (the whole-array layouts the embedding and the
        trace replayer emit) are applied as one fancy-indexed mask write
        followed by a vectorized bitboard rebuild; small or duplicated
        batches fall back to the per-slot path.
        """
        pairs = list(positions_and_kinds)
        if len(pairs) < 256:
            for position, kind in pairs:
                self.set_kind(position, kind)
            return
        positions = np.fromiter(
            (pair[0] for pair in pairs), dtype=np.int64, count=len(pairs)
        )
        if np.unique(positions).size != positions.size:
            for position, kind in pairs:
                self.set_kind(position, kind)
            return
        kinds = np.fromiter(
            (pair[1] for pair in pairs), dtype=np.int64, count=len(pairs)
        )
        has = (self._eid[positions] >= 0).astype(np.int64)
        self._masks[positions] = _KIND_MASK_TABLE[kinds * 2 + has]
        self._rebuild_lanes()

    # ------------------------------------------------------------------
    # The R-shell primitive: replay shell moves
    # ------------------------------------------------------------------
    def apply_shell_moves(self, moves: Iterable[Move]) -> int:
        """Replay a move sequence of the R-shell on the physical array.

        Same contract as the slab backend: slots travel with their contents,
        placements create fresh ``BUFFER`` slots, removals revert to
        ``R_EMPTY``, and the return value counts the *real element* moves.
        """
        if self._obs_enabled:
            self._obs_shell_moves.inc()
        cost = 0
        lifted: dict[Hashable, tuple[int, Hashable | None]] = {}
        buf = self._mask_buf
        eids = self._eid_buf
        for move in moves:
            if move.is_placement:
                position = move.destination
                if buf[position] & BIT_NONEMPTY:
                    raise InvariantViolation(
                        f"R-shell placed a token on non-empty slot {position}"
                    )
                if move.element in lifted:
                    # A token the shell removed earlier in this very operation
                    # (remove-and-replace rebalancing): restore its content.
                    kind, element = lifted.pop(move.element)
                    self.set_kind(position, kind)
                    if element is not None:
                        self.put_element(position, element)
                        cost += 1
                else:
                    self.set_kind(position, BUFFER)
                continue
            if move.is_removal:
                position = move.source
                if not buf[position] & BIT_NONEMPTY:
                    raise InvariantViolation(
                        f"R-shell removed a token from empty slot {position}"
                    )
                kind = MASK_KIND[buf[position]]
                carried = None if eids[position] < 0 else self._elem_of[eids[position]]
                if carried is not None:
                    # Token removed while carrying an element: the shell is
                    # doing a remove-and-replace rebalance; lift the content
                    # and wait for the matching placement.
                    self.take_element(position)
                lifted[move.element] = (kind, carried)
                self.set_kind(position, R_EMPTY)
                continue
            src, dst = move.source, move.destination
            if buf[dst] & BIT_NONEMPTY:
                raise InvariantViolation(
                    f"R-shell moved a token onto non-empty slot {dst}"
                )
            kind = MASK_KIND[buf[src]]
            eid = eids[src]
            if eid >= 0:
                eids[src] = -1
                eids[dst] = eid
                self._pos[eid] = dst
                self._record(self._elem_of[eid], src, dst)
                cost += 1
            self._set_mask(src, 0)
            self._set_mask(dst, KIND_MASKS[kind][eid >= 0])
        return cost

    # ------------------------------------------------------------------
    # The F-emulator primitive: chain moves with deadweight (Figure 2)
    # ------------------------------------------------------------------
    def chain_positions(self, lo: int, hi: int) -> list[int]:
        """Non-``R_EMPTY`` positions in ``[lo, hi]`` in increasing order.

        One masked ``flatnonzero`` over the span — vectorized, so neither
        the dense-scan nor the select-walk dispatch of the other backends
        is needed.
        """
        hits = np.flatnonzero(self._masks[lo : hi + 1] & BIT_NONEMPTY)
        if lo:
            hits = hits + lo
        return hits.tolist()

    def chain_move(self, source: int, target_f_index: int) -> int:
        """Move the element at ``source`` so it occupies F-index ``target_f_index``.

        Identical contract (and identical move log) to the other backends'
        ``chain_move``: buffered elements physically in between shift by one
        chain position each (the deadweight moves of Figure 2) and slot
        kinds are relabelled so the element reads at exactly
        ``target_f_index`` while the R-shell's occupied set is unchanged.

        Returns the cost (1 + number of deadweight moves); 0 when the element
        is already in place.
        """
        eids = self._eid_buf
        if eids[source] < 0:
            raise InvariantViolation(f"slot {source} holds no element")
        target_pos = self._select(LANE_F, target_f_index + 1)
        if target_pos == source:
            return 0
        if eids[target_pos] >= 0:
            raise InvariantViolation(
                f"target F-slot {target_f_index} (position {target_pos}) is occupied"
            )
        if self._obs_enabled:
            self._obs_chain_moves.inc()
        rightward = source < target_pos
        lo, hi = (source, target_pos) if rightward else (target_pos, source)
        # Steady-state fast path: the span's only element is the source and
        # every token in it is an F-slot, so the whole chain move collapses
        # to one element move — no deadweight, and the relabel is the
        # identity (the remaining F-labels already sit on the remaining
        # chain positions, whichever direction the move goes).  The one- and
        # two-word spans the workload fast path produces are tested with
        # inline window popcounts; wider spans pay the generic range counts.
        words = self._words
        wlo = lo >> 6
        whi = hi >> 6
        if wlo == whi:
            window = ((1 << (hi - lo + 1)) - 1) << (lo & 63)
            real = words[LANE_REAL][wlo] & window
            fast = not real & (real - 1) and (
                (words[LANE_NONEMPTY][wlo] & window)
                == (words[LANE_F][wlo] & window)
            )
        elif whi - wlo == 1:
            head = -(1 << (lo & 63))
            tail = (1 << ((hi & 63) + 1)) - 1
            fast = (
                (words[LANE_REAL][wlo] & head).bit_count()
                + (words[LANE_REAL][whi] & tail).bit_count()
                == 1
                and (words[LANE_NONEMPTY][wlo] & head)
                == (words[LANE_F][wlo] & head)
                and (words[LANE_NONEMPTY][whi] & tail)
                == (words[LANE_F][whi] & tail)
            )
        else:
            fast = (
                self._range_count(LANE_REAL, lo, hi) == 1
                and self._range_count(LANE_F, lo, hi)
                == self._range_count(LANE_NONEMPTY, lo, hi)
            )
        if fast:
            # Both endpoints are F-slots and no dummy is involved, so the
            # move is two REAL-lane XORs — inlined, nothing else changes.
            eid = eids[source]
            eids[source] = -1
            eids[target_pos] = eid
            self._pos[eid] = target_pos
            buf = self._mask_buf
            buf[source] ^= BIT_REAL
            buf[target_pos] |= BIT_REAL
            words[LANE_REAL][source >> 6] ^= 1 << (source & 63)
            words[LANE_REAL][target_pos >> 6] ^= 1 << (target_pos & 63)
            self._fingers[LANE_REAL] = None
            sink = self.move_sink
            if sink is not None:
                if isinstance(sink, list):
                    sink.append(Move(self._elem_of[eid], source, target_pos))
                else:
                    sink.record(self._elem_of[eid], source, target_pos)
            return 1
        if hi - lo <= _CHAIN_SCAN_CUTOFF:
            return self._chain_move_scan(lo, hi, rightward)
        return self._chain_move_sweep(lo, hi, rightward)

    def _chain_move_scan(self, lo: int, hi: int, rightward: bool) -> int:
        """Seed-parity chain move over a short span: one slab scan collects
        the chain, its elements and the F-label count, then the seed's move
        and relabel logic runs on the materialized chain."""
        buf = self._mask_buf
        chain: list[int] = []
        reals: list[int] = []
        f_count = 0
        for position in range(lo, hi + 1):
            mask = buf[position]
            if mask & BIT_NONEMPTY:
                chain.append(position)
                if mask & BIT_F:
                    f_count += 1
                if mask & BIT_REAL:
                    reals.append(position)
        return self._chain_execute(lo, hi, rightward, chain, reals, f_count)

    def _chain_move_sweep(self, lo: int, hi: int, rightward: bool) -> int:
        """Chain move over a wide span: masked ``flatnonzero`` sweeps find
        the chain and its elements in one vectorized pass each."""
        span = self._masks[lo : hi + 1]
        chain_np = np.flatnonzero(span & BIT_NONEMPTY)
        reals_np = np.flatnonzero(span & BIT_REAL)
        if lo:
            chain_np = chain_np + lo
            reals_np = reals_np + lo
        f_count = int(np.count_nonzero(span & BIT_F))
        return self._chain_execute(
            lo, hi, rightward, chain_np.tolist(), reals_np.tolist(), f_count
        )

    def _chain_execute(
        self,
        lo: int,
        hi: int,
        rightward: bool,
        chain: list[int],
        reals: list[int],
        f_count: int,
    ) -> int:
        cost = 0
        if rightward:
            if reals[0] != lo:
                raise InvariantViolation(
                    "chain_move source must be the leftmost element"
                )
            source = lo
            suffix = chain[len(chain) - len(reals):]
            for old, new in zip(reversed(reals), reversed(suffix)):
                if old != new:
                    self.move_element(old, new, deadweight=(old != source))
                    cost += 1
            element_pos = suffix[0]
        else:
            if reals[-1] != hi:
                raise InvariantViolation(
                    "chain_move source must be the rightmost element"
                )
            source = hi
            prefix = chain[: len(reals)]
            for old, new in zip(reals, prefix):
                if old != new:
                    self.move_element(old, new, deadweight=(old != source))
                    cost += 1
            element_pos = prefix[-1]
        # Relabel: the moved element's slot becomes an F-slot; the remaining
        # F-labels go to the earliest chain positions (rightward move) or
        # the latest (leftward), exactly as in the other backends — the
        # degenerate case where the label budget exceeds the chain's buffer
        # count included (the element then lands inside the all-F interval).
        others = [position for position in chain if position != element_pos]
        if rightward:
            f_positions = set(others[: f_count - 1])
        else:
            f_positions = set(others[len(others) - (f_count - 1):])
        f_positions.add(element_pos)
        buf = self._mask_buf
        flips = 0
        for position in chain:
            desired = F_SLOT if position in f_positions else BUFFER
            if MASK_KIND[buf[position]] != desired:
                self.set_kind(position, desired)
                flips += 1
        if self._obs_enabled and flips:
            self._obs_relabel_flips.inc(flips)
        return cost

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self, key: Callable[[Hashable], object] | None = None) -> None:
        """Raise :class:`InvariantViolation` if any structural invariant fails."""
        previous = None
        buf = self._mask_buf
        for position, eid in enumerate(self._eid_buf):
            if eid < 0:
                continue
            element = self._elem_of[eid]
            if not buf[position] & BIT_NONEMPTY:
                raise InvariantViolation(
                    f"element {element!r} stored in an R-empty slot {position}"
                )
            value = key(element) if key is not None else element
            if previous is not None and not value > previous:
                raise InvariantViolation(
                    f"physical order violated at slot {position}: {value!r} after {previous!r}"
                )
            previous = value
            if self._pos[eid] != position:
                raise InvariantViolation(
                    f"position index out of date for element {element!r}"
                )
            if self._id_of.get(element) != eid:
                raise InvariantViolation(
                    f"interning table out of date for element {element!r}"
                )
            if not buf[position] & BIT_REAL:
                raise InvariantViolation(
                    f"occupied slot {position} missing from the element index"
                )
        for lane in range(NUM_LANES):
            actual = int(np.count_nonzero(self._masks & (1 << lane)))
            if actual != self._tot[lane]:
                raise InvariantViolation(
                    f"lane {lane} total out of date: {self._tot[lane]} != {actual}"
                )
            board = int(np.bitwise_count(self._words_np[lane]).sum())
            if board != actual:
                raise InvariantViolation(
                    f"lane {lane} bitboard out of date: {board} != {actual}"
                )
