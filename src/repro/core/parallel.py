"""Bounded thread-pool execution for independent per-shard work.

:class:`ShardPool` is the one executor the parallel paths share: the
sharded engine fans independent per-shard sub-batches and fully-covered
scan segments out through :meth:`ShardPool.run`, and the store/runner
layers inject a pool (or a ``max_workers`` count) from above.

Design constraints, in order:

* **Determinism.**  ``run`` returns results in task order, always — the
  caller's merge step sees the same sequence whether tasks ran inline,
  on one worker, or on eight.  Parallelism may reorder *execution*, never
  *results*.
* **Safety.**  Tasks handed to ``run`` must be independent: the sharded
  engine only dispatches closures that touch distinct shard objects, and
  keeps every piece of shared state (the Fenwick directory, the
  element→shard reverse index, restructures) on the calling thread.
* **Graceful degradation.**  A pool with ``max_workers <= 1``, a single
  task, or a closed pool executes inline on the calling thread with zero
  thread overhead — ``max_workers=1`` is the serial path, not a slower
  pool.

The worker threads are started lazily on the first parallel ``run`` and
torn down by :meth:`close` (or the context manager), so constructing a
pool is free and an all-serial run never spawns a thread.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro import obs

T = TypeVar("T")

#: Cap for ``max_workers=None`` ("use the machine"): one worker per CPU,
#: bounded so a big host does not spawn hundreds of threads for a
#: structure with a handful of shards.
DEFAULT_WORKER_CAP = 8


def default_workers() -> int:
    """Worker count for ``max_workers=None``: ``min(cpus, cap)``."""
    return max(1, min(os.cpu_count() or 1, DEFAULT_WORKER_CAP))


class ShardPool:
    """A bounded, lazily-started thread pool with ordered results.

    Parameters
    ----------
    max_workers:
        Worker thread count.  ``None`` picks :func:`default_workers`;
        ``1`` (or less) makes every :meth:`run` execute inline, which is
        the reference serial path the differential tests compare against.
    """

    def __init__(
        self, max_workers: int | None = None, *, registry=None
    ) -> None:
        if max_workers is None:
            max_workers = default_workers()
        self._max_workers = max(1, int(max_workers))
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        self.set_registry(registry)

    def set_registry(self, registry) -> None:
        """Bind queue/latency instruments to an observability registry."""
        reg = obs.resolve(registry)
        self._obs_enabled = reg.enabled
        self._obs_inline = reg.counter("pool.inline_runs")
        self._obs_tasks = reg.counter("pool.tasks")
        self._obs_depth = reg.gauge("pool.queue_depth")
        self._obs_wait = reg.histogram("pool.task_wait_seconds")
        self._obs_run = reg.histogram("pool.task_run_seconds")

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def is_serial(self) -> bool:
        """True when :meth:`run` always executes inline."""
        return self._max_workers <= 1 or self._closed

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Execute ``tasks`` and return their results in task order.

        Tasks must be independent (no two touch the same mutable state);
        the first raised exception propagates after every submitted task
        has finished, so the caller never observes a half-running pool.
        """
        if self.is_serial or len(tasks) < 2:
            if tasks:
                # Degradation to the inline path: a closed/serial pool or a
                # fan-out too small to be worth a thread round-trip.
                self._obs_inline.inc()
            return [task() for task in tasks]
        executor = self._ensure_executor()
        self._obs_tasks.inc(len(tasks))
        if self._obs_enabled:
            futures = self._submit_instrumented(executor, tasks)
        else:
            futures = [executor.submit(task) for task in tasks]
        results: list[T] = []
        error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results

    def _submit_instrumented(
        self, executor: ThreadPoolExecutor, tasks: Sequence[Callable[[], T]]
    ) -> list[Future]:
        """Submit with queue-depth and wait/run timing instrumentation.

        Only used when the registry is live: the bare path must not pay
        two clock reads and three instrument touches per task.  The
        wrappers change *when* the clock is read, never what the task
        computes, so results (and the determinism contract) are untouched.
        """
        submitted = time.perf_counter()

        def wrap(task: Callable[[], T]) -> Callable[[], T]:
            def call() -> T:
                started = time.perf_counter()
                self._obs_depth.dec()
                self._obs_wait.observe(started - submitted)
                try:
                    return task()
                finally:
                    self._obs_run.observe(time.perf_counter() - started)

            return call

        self._obs_depth.inc(len(tasks))
        return [executor.submit(wrap(task)) for task in tasks]

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-shard",
            )
        return self._executor

    def close(self) -> None:
        """Shut the workers down; further :meth:`run` calls go inline."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else "open"
        return f"ShardPool(max_workers={self._max_workers}, {state})"


def resolve_pool(
    parallel: "ShardPool | None", max_workers: int | None
) -> tuple["ShardPool | None", bool]:
    """Resolve the ``parallel=`` / ``max_workers=`` knob pair.

    Returns ``(pool, owned)``: an injected pool is shared (not owned, the
    caller must not close it); a bare ``max_workers`` builds a fresh owned
    pool; neither knob means no pool (the pure serial path).
    """
    if parallel is not None and max_workers is not None:
        raise ValueError("pass either parallel= or max_workers=, not both")
    if parallel is not None:
        return parallel, False
    if max_workers is not None and max_workers > 1:
        return ShardPool(max_workers), True
    return None, False
