"""Invariant checking for list-labeling structures.

These helpers are used throughout the test-suite (and can be enabled inside
long-running experiments) to assert the defining invariants of Definition 1
and of the embedding of Section 3.  They raise
:class:`repro.core.exceptions.InvariantViolation` with a descriptive message
rather than returning booleans, so property-based tests produce actionable
failures.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.core.exceptions import InvariantViolation
from repro.core.interface import ListLabeler


def check_sorted(
    slots: Sequence[Hashable | None],
    key: Callable[[Hashable], object] | None = None,
) -> None:
    """Check that the occupied slots are in strictly increasing order.

    ``key`` extracts the comparable rank proxy from an element; by default
    elements are compared directly, which suits the integer-keyed elements
    used by the workload drivers.
    """
    previous = None
    previous_index = None
    for index, element in enumerate(slots):
        if element is None:
            continue
        value = key(element) if key is not None else element
        if previous is not None and not value > previous:
            raise InvariantViolation(
                "sorted-order invariant violated: slot "
                f"{previous_index} holds {previous!r} but slot {index} holds {value!r}"
            )
        previous = value
        previous_index = index


def check_slot_count(labeler: ListLabeler) -> None:
    """Check that the physical array has the declared number of slots."""
    slots = labeler.slots()
    if len(slots) != labeler.num_slots:
        raise InvariantViolation(
            f"{type(labeler).__name__} reports num_slots={labeler.num_slots} "
            f"but exposes {len(slots)} slots"
        )


def check_size(labeler: ListLabeler) -> None:
    """Check that the reported size matches the number of occupied slots."""
    occupied = sum(1 for item in labeler.slots() if item is not None)
    if occupied != len(labeler):
        raise InvariantViolation(
            f"{type(labeler).__name__} reports size={len(labeler)} but "
            f"{occupied} slots are occupied"
        )


def check_contents(
    labeler: ListLabeler, expected: Sequence[Hashable]
) -> None:
    """Check that the stored elements (in order) equal ``expected``."""
    actual = labeler.elements()
    if list(actual) != list(expected):
        raise InvariantViolation(
            f"{type(labeler).__name__} stores {actual!r} but the reference "
            f"model expects {list(expected)!r}"
        )


def check_capacity_slack(labeler: ListLabeler, minimum_slack: float = 0.0) -> None:
    """Check the array is of size ``(1 + Θ(1)) n`` with at least the given slack."""
    required = int((1.0 + minimum_slack) * labeler.capacity)
    if labeler.num_slots < required:
        raise InvariantViolation(
            f"{type(labeler).__name__} has {labeler.num_slots} slots which is "
            f"below the required (1 + {minimum_slack}) * {labeler.capacity}"
        )


def check_labeler(
    labeler: ListLabeler,
    expected: Sequence[Hashable] | None = None,
    key: Callable[[Hashable], object] | None = None,
) -> None:
    """Run the full battery of structural checks on a labeler."""
    check_slot_count(labeler)
    check_size(labeler)
    check_sorted(labeler.slots(), key=key)
    if expected is not None:
        check_contents(labeler, expected)


def check_moves_consistent(
    before: Sequence[Hashable | None],
    after: Sequence[Hashable | None],
    moved: Sequence[Hashable],
) -> None:
    """Check that the set of elements that changed slots is covered by ``moved``.

    ``moved`` is the list of elements an operation reported as moved; every
    element whose physical slot changed between ``before`` and ``after`` must
    appear in it (the converse need not hold — an algorithm may conservatively
    report a move that ended up back in place).
    """
    before_pos = {item: idx for idx, item in enumerate(before) if item is not None}
    after_pos = {item: idx for idx, item in enumerate(after) if item is not None}
    moved_set = set(moved)
    for element, position in after_pos.items():
        old = before_pos.get(element)
        if old is not None and old != position and element not in moved_set:
            raise InvariantViolation(
                f"element {element!r} moved from slot {old} to {position} but the "
                "operation did not report it as moved"
            )
