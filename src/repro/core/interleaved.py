"""The naive interleaving strawman the introduction argues against.

Section 1 explains why list-labeling algorithms "should not be composable":
if two algorithms ``F`` and ``R`` are simply interleaved in one array — some
elements logically belong to ``F``, some to ``R``, all physically sorted
together — then every rebalance of one algorithm must carry the other
algorithm's elements that lie in the same interval as *deadweight*, and the
combined cost can be arbitrarily worse than either component.

:class:`InterleavedComposition` is a faithful cost model of that strawman,
used by the E-DEAD ablation to quantify how badly it behaves compared to
the paper's embedding.  Each inserted element is routed to the component
whose simulated cost for the operation is lower (the "send it to whichever
is cheaper" heuristic of the introduction); the reported cost of the
operation is the component's own cost *plus* one deadweight move for every
element of the other component whose rank currently falls inside the rank
span the component rearranged.  The class tracks the same statistics as the
embedding (total deadweight, worst per-element deadweight), which is what
the benchmark compares.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.core.interface import ListLabeler
from repro.core.operations import OperationResult


class InterleavedComposition:
    """Cost model of naively interleaving two list-labeling algorithms."""

    def __init__(
        self,
        capacity: int,
        first_factory: Callable[[int, int | None], ListLabeler],
        second_factory: Callable[[int, int | None], ListLabeler],
    ) -> None:
        self.capacity = capacity
        self._first = first_factory(capacity, None)
        self._second = second_factory(capacity, None)
        #: Which component owns each element, keyed by element.
        self._owner: dict[Hashable, str] = {}
        #: All elements in rank order (the merged logical array).
        self._merged: list[Hashable] = []
        self.total_cost = 0
        self.total_deadweight = 0
        self.deadweight_by_element: dict[Hashable, int] = {}
        self.per_operation_costs: list[int] = []

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._merged)

    def insert(self, rank: int, element: Hashable) -> int:
        """Insert and return the modelled cost of the operation."""
        if not 1 <= rank <= len(self._merged) + 1:
            raise ValueError(f"rank {rank} out of range")
        # Alternate ownership between the two components (the simplest
        # realization of "some elements are logically in X, some in Y"); any
        # routing policy suffers the same deadweight blow-up because the two
        # element populations stay interleaved in rank order.
        owner = "first" if self.size % 2 == 0 else "second"
        if owner == "second" and len(self._second) >= self._second.capacity:
            owner = "first"
        if owner == "first" and len(self._first) >= self._first.capacity:
            owner = "second"
        component = self._first if owner == "first" else self._second
        result = component.insert(self._component_rank(owner, rank), element)

        self._owner[element] = owner
        self._merged.insert(rank - 1, element)

        deadweight = self._deadweight_for(result, owner)
        cost = result.cost + deadweight
        self.total_cost += cost
        self.total_deadweight += deadweight
        self.per_operation_costs.append(cost)
        return cost

    def delete(self, rank: int) -> int:
        if not 1 <= rank <= len(self._merged):
            raise ValueError(f"rank {rank} out of range")
        element = self._merged.pop(rank - 1)
        owner = self._owner.pop(element)
        component = self._first if owner == "first" else self._second
        component_rank = component.rank_of(element)
        result = component.delete(component_rank)
        deadweight = self._deadweight_for(result, owner)
        cost = result.cost + deadweight
        self.total_cost += cost
        self.total_deadweight += deadweight
        self.per_operation_costs.append(cost)
        return cost

    # ------------------------------------------------------------------
    def _component_rank(self, owner: str, merged_rank: int) -> int:
        """Rank within one component of an insertion at ``merged_rank``."""
        count = 0
        for element in self._merged[: merged_rank - 1]:
            if self._owner[element] == owner:
                count += 1
        return count + 1

    def _deadweight_for(self, result: OperationResult, owner: str) -> int:
        """Deadweight incurred by the other component's elements.

        Every element of the *other* component whose merged rank lies within
        the merged-rank span of the elements the owner moved must be carried
        along, exactly once per operation in the best case — the strawman has
        no mechanism to consolidate these moves.
        """
        moved = [move.element for move in result.moves if move.cost > 0]
        if not moved:
            return 0
        moved_ranks = [
            index + 1
            for index, element in enumerate(self._merged)
            if element in set(moved)
        ]
        if not moved_ranks:
            return 0
        lo, hi = min(moved_ranks), max(moved_ranks)
        deadweight = 0
        for element in self._merged[lo - 1 : hi]:
            if self._owner.get(element) != owner:
                deadweight += 1
                self.deadweight_by_element[element] = (
                    self.deadweight_by_element.get(element, 0) + 1
                )
        return deadweight

    # ------------------------------------------------------------------
    @property
    def amortized_cost(self) -> float:
        if not self.per_operation_costs:
            return 0.0
        return self.total_cost / len(self.per_operation_costs)

    @property
    def worst_case_cost(self) -> int:
        return max(self.per_operation_costs, default=0)

    @property
    def max_deadweight_per_element(self) -> int:
        return max(self.deadweight_by_element.values(), default=0)
