"""Slot-kind constants and the packed-state encoding, shared by every
physical-array backend.

Three implementations of the embedding's shared array ``A`` coexist —
:class:`repro.core.physical_reference.ReferencePhysicalArray` (the seed
oracle), :class:`repro.core.physical.PhysicalArray` (the slab rewrite) and
:class:`repro.core.physical_vector.VectorPhysicalArray` (the numpy backend).
They are verified move-for-move against each other by the differential
suite, which only works if all three agree on the *encoding* of slot state:
the kind values of Figure 1 and the four index lanes (F-slot / non-empty /
element-present / dummy-buffer) that every backend maintains, whether as
Fenwick trees, packed Fenwick lanes or numpy bitmask slabs.

This module is dependency-free on purpose: the reference backend must not
import the fast modules (they re-export it, and a two-way import would be
order-dependent), and the fast modules must not re-derive the encoding
independently and drift.
"""

from __future__ import annotations

#: Slot kinds (Figure 1 colour coding).
R_EMPTY = 0
F_SLOT = 1
BUFFER = 2

KIND_NAMES = {R_EMPTY: "r-empty", F_SLOT: "f-slot", BUFFER: "buffer"}

# ---------------------------------------------------------------------------
# Packed slot state: one bit per index lane.
# ---------------------------------------------------------------------------
LANE_F = 0         # kind == F_SLOT
LANE_NONEMPTY = 1  # kind != R_EMPTY
LANE_REAL = 2      # element present
LANE_DUMMY = 3     # kind == BUFFER and no element

NUM_LANES = 4

BIT_F = 1 << LANE_F
BIT_NONEMPTY = 1 << LANE_NONEMPTY
BIT_REAL = 1 << LANE_REAL
BIT_DUMMY = 1 << LANE_DUMMY


def mask_for(kind: int, has_element: bool) -> int:
    """The packed state bits of a slot of ``kind`` (mirrors the seed's four
    ``_refresh_indexes`` predicates exactly, including the degenerate
    element-in-R-empty-slot state that only ``check_consistency``
    rejects)."""
    if kind == F_SLOT:
        mask = BIT_F | BIT_NONEMPTY
    elif kind == BUFFER:
        mask = BIT_NONEMPTY
    else:
        mask = 0
    if has_element:
        mask |= BIT_REAL
    elif kind == BUFFER:
        mask |= BIT_DUMMY
    return mask


#: ``KIND_MASKS[kind][has_element]`` — precomputed state bits.
KIND_MASKS = [
    (mask_for(kind, False), mask_for(kind, True))
    for kind in (R_EMPTY, F_SLOT, BUFFER)
]

#: ``MASK_KIND[mask]`` — slot kind recovered from the packed state.
MASK_KIND = [
    F_SLOT if mask & BIT_F else (BUFFER if mask & BIT_NONEMPTY else R_EMPTY)
    for mask in range(16)
]

__all__ = [
    "R_EMPTY",
    "F_SLOT",
    "BUFFER",
    "KIND_NAMES",
    "LANE_F",
    "LANE_NONEMPTY",
    "LANE_REAL",
    "LANE_DUMMY",
    "NUM_LANES",
    "BIT_F",
    "BIT_NONEMPTY",
    "BIT_REAL",
    "BIT_DUMMY",
    "mask_for",
    "KIND_MASKS",
    "MASK_KIND",
]
