"""The seed's list-backed physical array, preserved as a differential oracle.

:class:`ReferencePhysicalArray` is the original pure-python implementation of
the embedding's shared array ``A`` (parallel ``list`` slabs, four independent
:class:`~repro.core.fenwick.FenwickTree` indexes refreshed with four ``set``
calls per mutation, and an ``O(hi - lo)`` linear scan in
:meth:`ReferencePhysicalArray.chain_positions`).  The slab-backed
:class:`repro.core.physical.PhysicalArray` replaced it on every hot path; this
copy survives so that

* the differential suite can replay recorded workload traces on both
  implementations and assert *move-log equality* (element, source,
  destination — not just final state), and
* the ``repro.perf`` benchmarks can quantify the slab backend's speedup
  against the seed behaviour on identical operation sequences.

The algorithms in this module are intentionally kept byte-for-byte equivalent
to the seed; do not "improve" them — their value is being the fixed point the
fast implementation is measured and verified against.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

from repro.core.exceptions import InvariantViolation
from repro.core.fenwick import FenwickTree
from repro.core.operations import Move
from repro.core.physical_kinds import BUFFER, F_SLOT, R_EMPTY


class ReferencePhysicalArray:
    """The seed's array ``A``: list slabs + four independent Fenwick trees."""

    def __init__(self, num_slots: int) -> None:
        self._m = num_slots
        self._kinds: list[int] = [R_EMPTY] * num_slots
        self._elems: list[Hashable | None] = [None] * num_slots
        self._fen_f = FenwickTree(num_slots)         # kind == F_SLOT
        self._fen_nonempty = FenwickTree(num_slots)  # kind != R_EMPTY
        self._fen_real = FenwickTree(num_slots)      # element present
        self._fen_dummy_buf = FenwickTree(num_slots)  # BUFFER and no element
        self._pos_of: dict[Hashable, int] = {}
        #: Where recorded moves are appended during an operation (or None).
        self.move_sink = None
        #: Per-element count of deadweight moves (Lemma 5 accounting).
        self.deadweight_by_element: dict[Hashable, int] = {}
        self.total_deadweight_moves = 0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return self._m

    def kind(self, position: int) -> int:
        return self._kinds[position]

    def element(self, position: int) -> Hashable | None:
        return self._elems[position]

    def kinds(self) -> Sequence[int]:
        return tuple(self._kinds)

    def slots(self) -> Sequence[Hashable | None]:
        """Physical contents, one entry per slot (``None`` = no element)."""
        return tuple(self._elems)

    def elements(self) -> list[Hashable]:
        """All stored elements in physical (= rank) order."""
        return [item for item in self._elems if item is not None]

    def position_of(self, element: Hashable) -> int:
        try:
            return self._pos_of[element]
        except KeyError:
            raise KeyError(f"element {element!r} is not stored") from None

    def contains(self, element: Hashable) -> bool:
        return element in self._pos_of

    @property
    def element_count(self) -> int:
        return self._fen_real.total

    def element_at_rank(self, rank: int) -> Hashable:
        """The ``rank``-th (1-based) stored element."""
        position = self._fen_real.select(rank)
        element = self._elems[position]
        assert element is not None
        return element

    def position_of_rank(self, rank: int) -> int:
        """Physical position of the ``rank``-th (1-based) stored element."""
        return self._fen_real.select(rank)

    def elements_at_ranks(self, ranks: Iterable[int]) -> list[Hashable]:
        """Batched :meth:`element_at_rank` — one answer per requested rank."""
        return [self.element_at_rank(rank) for rank in ranks]

    def iter_elements_from(self, rank: int):
        """Lazily yield the stored elements of ranks ``rank, rank+1, …``.

        The reference twin of
        :meth:`repro.core.physical.PhysicalArray.iter_elements_from`:
        one Fenwick select seeks the start, then the element list is walked
        directly.  Additive read-only API — the seed mutation paths above
        stay untouched.
        """
        if rank > self._fen_real.total:
            return
        elems = self._elems
        for position in range(self._fen_real.select(rank), self._m):
            element = elems[position]
            if element is not None:
                yield element

    # ------------------------------------------------------------------
    # Counting helpers
    # ------------------------------------------------------------------
    def real_between(self, lo: int, hi: int) -> int:
        """Number of stored elements at positions in ``[lo, hi)``."""
        return self._fen_real.count(lo, hi)

    def nonempty_between(self, lo: int, hi: int) -> int:
        """Number of non-``R_EMPTY`` slots at positions in ``[lo, hi)``."""
        return self._fen_nonempty.count(lo, hi)

    def token_rank(self, position: int) -> int:
        """1-based R-shell rank of the (non-empty) slot at ``position``."""
        if self._kinds[position] == R_EMPTY:
            raise ValueError(f"slot {position} is an R-empty slot, not a token")
        return self._fen_nonempty.prefix(position) + 1

    @property
    def f_slot_count(self) -> int:
        return self._fen_f.total

    @property
    def buffer_count(self) -> int:
        return self._fen_nonempty.total - self._fen_f.total

    @property
    def dummy_buffer_count(self) -> int:
        return self._fen_dummy_buf.total

    @property
    def buffered_element_count(self) -> int:
        """Number of real elements currently living in buffer slots."""
        return self.buffer_count - self.dummy_buffer_count

    # ------------------------------------------------------------------
    # F-coordinate translation
    # ------------------------------------------------------------------
    def f_position(self, f_index: int) -> int:
        """Physical position of the ``f_index``-th (0-based) F-slot."""
        return self._fen_f.select(f_index + 1)

    def f_index_of(self, position: int) -> int:
        """0-based F-index of the F-slot at ``position``."""
        if self._kinds[position] != F_SLOT:
            raise ValueError(f"slot {position} is not an F-slot")
        return self._fen_f.prefix(position)

    def f_contents(self) -> list[Hashable | None]:
        """Contents of the F-slots in F-order (the array ``Ẽ_F`` of Section 3)."""
        return [self._elems[p] for p, k in enumerate(self._kinds) if k == F_SLOT]

    # ------------------------------------------------------------------
    # Dummy-buffer queries (needed by the slow path, Lemma 4 compatible)
    # ------------------------------------------------------------------
    def nearest_dummy_buffer(self, position: int) -> int | None:
        """Position of the dummy buffer slot nearest to ``position``.

        "Nearest" is measured in *truncated-state order* (number of non-empty
        slots in between), which depends only on the truncated state ``T`` and
        therefore keeps the R-shell's input independent of its random bits
        (Lemma 4).  Ties prefer the left neighbour.
        """
        if self._fen_dummy_buf.total == 0:
            return None
        before = self._fen_dummy_buf.prefix(position + 1)
        left = self._fen_dummy_buf.select(before) if before > 0 else None
        right = (
            self._fen_dummy_buf.select(before + 1)
            if before < self._fen_dummy_buf.total
            else None
        )
        if left is None:
            return right
        if right is None:
            return left
        left_distance = self.nonempty_between(left, position + 1)
        right_distance = self.nonempty_between(position, right + 1)
        return left if left_distance <= right_distance else right

    # ------------------------------------------------------------------
    # Low-level mutation (records moves, keeps every index consistent)
    # ------------------------------------------------------------------
    def _record(self, element: Hashable, source: int | None, destination: int | None) -> None:
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, source, destination))
            else:
                sink.record(element, source, destination)

    def _refresh_indexes(self, position: int) -> None:
        kind = self._kinds[position]
        element = self._elems[position]
        self._fen_f.set(position, 1 if kind == F_SLOT else 0)
        self._fen_nonempty.set(position, 1 if kind != R_EMPTY else 0)
        self._fen_real.set(position, 1 if element is not None else 0)
        self._fen_dummy_buf.set(
            position, 1 if (kind == BUFFER and element is None) else 0
        )

    def set_kind(self, position: int, kind: int) -> None:
        """Relabel a slot (free of charge — no element moves)."""
        self._kinds[position] = kind
        self._refresh_indexes(position)

    def put_element(self, position: int, element: Hashable, *, deadweight: bool = False) -> None:
        """Place ``element`` into the empty slot at ``position`` (cost 1)."""
        if self._elems[position] is not None:
            raise InvariantViolation(
                f"slot {position} already holds {self._elems[position]!r}"
            )
        self._elems[position] = element
        self._pos_of[element] = position
        self._refresh_indexes(position)
        self._record(element, None, position)
        if deadweight:
            self._note_deadweight(element)

    def take_element(self, position: int) -> Hashable:
        """Remove and return the element at ``position`` (cost 0)."""
        element = self._elems[position]
        if element is None:
            raise InvariantViolation(f"slot {position} holds no element")
        self._elems[position] = None
        del self._pos_of[element]
        self._refresh_indexes(position)
        self._record(element, position, None)
        return element

    def move_element(self, src: int, dst: int, *, deadweight: bool = False) -> None:
        """Move the element at ``src`` to the element-free slot ``dst`` (cost 1)."""
        if src == dst:
            return
        element = self._elems[src]
        if element is None:
            raise InvariantViolation(f"slot {src} holds no element")
        if self._elems[dst] is not None:
            raise InvariantViolation(f"slot {dst} already holds an element")
        self._elems[src] = None
        self._elems[dst] = element
        self._pos_of[element] = dst
        self._refresh_indexes(src)
        self._refresh_indexes(dst)
        self._record(element, src, dst)
        if deadweight:
            self._note_deadweight(element)

    def _note_deadweight(self, element: Hashable) -> None:
        self.total_deadweight_moves += 1
        self.deadweight_by_element[element] = (
            self.deadweight_by_element.get(element, 0) + 1
        )

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize_kinds(self, positions_and_kinds: Iterable[tuple[int, int]]) -> None:
        """Bulk-set the slot kinds at construction time (no cost recorded)."""
        for position, kind in positions_and_kinds:
            self._kinds[position] = kind
            self._refresh_indexes(position)

    # ------------------------------------------------------------------
    # The R-shell primitive: replay shell moves
    # ------------------------------------------------------------------
    def apply_shell_moves(self, moves: Iterable[Move]) -> int:
        """Replay a move sequence of the R-shell on the physical array.

        The R-shell moves whole *slots*: when it relocates one of its tokens
        from physical position ``src`` to ``dst``, the slot's kind and
        content travel together and ``dst`` must currently be an ``R_EMPTY``
        slot.  Token placements create a fresh ``BUFFER`` slot; token
        removals turn the position back into ``R_EMPTY``.  Returns the number
        of *real element* moves incurred (the embedding's cost for the
        replayed work — dummy and free slots move for free).
        """
        cost = 0
        lifted: dict[Hashable, tuple[int, Hashable | None]] = {}
        for move in moves:
            if move.is_placement:
                position = move.destination
                if self._kinds[position] != R_EMPTY:
                    raise InvariantViolation(
                        f"R-shell placed a token on non-empty slot {position}"
                    )
                if move.element in lifted:
                    # A token the shell removed earlier in this very operation
                    # (remove-and-replace rebalancing): restore its content.
                    kind, element = lifted.pop(move.element)
                    self.set_kind(position, kind)
                    if element is not None:
                        self.put_element(position, element)
                        cost += 1
                else:
                    self.set_kind(position, BUFFER)
                continue
            if move.is_removal:
                position = move.source
                if self._kinds[position] == R_EMPTY:
                    raise InvariantViolation(
                        f"R-shell removed a token from empty slot {position}"
                    )
                carried = self._elems[position]
                if carried is not None:
                    # Token removed while carrying an element: the shell is
                    # doing a remove-and-replace rebalance; lift the content
                    # and wait for the matching placement.
                    self.take_element(position)
                lifted[move.element] = (self._kinds[position], carried)
                self.set_kind(position, R_EMPTY)
                continue
            src, dst = move.source, move.destination
            if self._kinds[dst] != R_EMPTY:
                raise InvariantViolation(
                    f"R-shell moved a token onto non-empty slot {dst}"
                )
            kind = self._kinds[src]
            element = self._elems[src]
            self._kinds[dst] = kind
            self._kinds[src] = R_EMPTY
            if element is not None:
                self._elems[src] = None
                self._elems[dst] = element
                self._pos_of[element] = dst
                self._record(element, src, dst)
                cost += 1
            self._refresh_indexes(src)
            self._refresh_indexes(dst)
        return cost

    # ------------------------------------------------------------------
    # The F-emulator primitive: chain moves with deadweight (Figure 2)
    # ------------------------------------------------------------------
    def chain_positions(self, lo: int, hi: int) -> list[int]:
        """Non-``R_EMPTY`` positions in ``[lo, hi]`` in increasing order.

        This is the seed's ``O(hi - lo)`` linear scan — the behaviour the
        slab backend's Fenwick select-walk is differentially tested and
        benchmarked against.
        """
        return [
            position
            for position in range(lo, hi + 1)
            if self._kinds[position] != R_EMPTY
        ]

    def chain_move(self, source: int, target_f_index: int) -> int:
        """Move the element at ``source`` so it occupies F-index ``target_f_index``.

        ``source`` may be an F-slot (a plain F-emulator move) or a buffer
        slot (an incorporation).  The target F-slot must currently be free of
        elements, and every F-slot between the source and the target must be
        element-free as well (the rebuild planner and the fast path only
        generate such moves).  Buffered elements physically in between are
        shifted by one chain position each — the deadweight moves of
        Figure 2 — and slot kinds are relabelled so the element ends up on an
        F-slot that reads at exactly ``target_f_index`` while the R-shell's
        view (which slots are occupied) is unchanged.

        Returns the cost (1 + number of deadweight moves); 0 when the element
        is already in place.
        """
        element = self._elems[source]
        if element is None:
            raise InvariantViolation(f"slot {source} holds no element")
        target_pos = self.f_position(target_f_index)
        if target_pos == source:
            return 0
        if self._elems[target_pos] is not None:
            raise InvariantViolation(
                f"target F-slot {target_f_index} (position {target_pos}) is occupied"
            )

        if source < target_pos:
            return self._chain_move_right(source, target_pos)
        return self._chain_move_left(source, target_pos)

    def _chain_move_right(self, source: int, target_pos: int) -> int:
        chain = self.chain_positions(source, target_pos)
        reals = [p for p in chain if self._elems[p] is not None]
        if reals[0] != source:
            raise InvariantViolation("chain_move source must be the leftmost element")
        # Final layout: prefix of element-free slots, then the moved element,
        # then the buffered (deadweight) elements, each shifted to the last
        # len(reals) chain positions.  Execute right-to-left so every move
        # lands on an element-free slot and never crosses another element.
        suffix = chain[len(chain) - len(reals):]
        f_labels_needed = sum(1 for p in chain if self._kinds[p] == F_SLOT)
        cost = 0
        for old, new in zip(reversed(reals), reversed(suffix)):
            if old != new:
                self.move_element(old, new, deadweight=(old != source))
                cost += 1
        element_pos = suffix[0]
        self._relabel_chain(chain, element_pos, f_labels_needed)
        return cost

    def _chain_move_left(self, source: int, target_pos: int) -> int:
        chain = self.chain_positions(target_pos, source)
        reals = [p for p in chain if self._elems[p] is not None]
        if reals[-1] != source:
            raise InvariantViolation("chain_move source must be the rightmost element")
        prefix = chain[: len(reals)]
        f_labels_needed = sum(1 for p in chain if self._kinds[p] == F_SLOT)
        cost = 0
        for old, new in zip(reals, prefix):
            if old != new:
                self.move_element(old, new, deadweight=(old != source))
                cost += 1
        element_pos = prefix[-1]
        self._relabel_chain(chain, element_pos, f_labels_needed, element_first=False)
        return cost

    def _relabel_chain(
        self,
        chain: list[int],
        element_pos: int,
        f_labels_needed: int,
        element_first: bool = True,
    ) -> None:
        """Reassign slot kinds along ``chain`` after a chain move.

        The moved element's position becomes an F-slot.  For a rightward
        move (``element_first``) the remaining F-labels go to the earliest
        chain positions so the freed F-slots read *before* the element; for a
        leftward move they go to the latest positions so they read *after*
        it.  The number of F-labels (and hence of buffer slots) in the chain
        is preserved, so the R-shell's occupied set and the global slot-kind
        counts never change.
        """
        others = [p for p in chain if p != element_pos]
        if element_first:
            f_positions = set(others[: f_labels_needed - 1])
        else:
            f_positions = set(others[len(others) - (f_labels_needed - 1):])
        f_positions.add(element_pos)
        for position in chain:
            desired = F_SLOT if position in f_positions else BUFFER
            if self._kinds[position] != desired:
                # Only positions without a *mis-kinded* element may flip: an
                # F-slot may not end up holding a buffered element.
                self._kinds[position] = desired
                self._refresh_indexes(position)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self, key: Callable[[Hashable], object] | None = None) -> None:
        """Raise :class:`InvariantViolation` if any structural invariant fails."""
        previous = None
        for position, element in enumerate(self._elems):
            if element is None:
                continue
            if self._kinds[position] == R_EMPTY:
                raise InvariantViolation(
                    f"element {element!r} stored in an R-empty slot {position}"
                )
            value = key(element) if key is not None else element
            if previous is not None and not value > previous:
                raise InvariantViolation(
                    f"physical order violated at slot {position}: {value!r} after {previous!r}"
                )
            previous = value
            if self._pos_of.get(element) != position:
                raise InvariantViolation(
                    f"position index out of date for element {element!r}"
                )
