"""The embedding ``F ⊳ R`` of a fast algorithm into a reliable one (Section 3).

:class:`Embedding` is itself a list-labeling data structure (Theorem 2): all
elements appear in sorted order in one array of ``(1 + 3ε)n`` slots.  It is
built from factories for the two component algorithms so it can size them
the way the paper does:

* ``F`` runs on ``(1 + ε)n`` slots and capacity ``n`` (the simulated copy);
* ``R`` runs on the whole ``(1 + 3ε)n``-slot array and holds
  ``(1 + 2ε)n`` tokens (every F-slot and every buffer slot).

Each operation takes the **fast path** (emulate ``F`` directly) when there is
no pending rebuild and the simulated copy's cost for the operation is at most
``E_R``; otherwise it takes the **slow path**: the element is buffered in the
R-shell and ``Θ(E_R)`` of rebuild work is performed on the F-emulator,
following steps (a)/(b) of Section 3 verbatim.

The class exposes the statistics the paper's lemmas talk about
(:attr:`fast_operations`, :attr:`slow_operations`, buffer occupancy,
deadweight counts, rebuild spans) so the experiments can check Lemmas 5–7
empirically.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Sequence

from repro.core.emulator import FEmulator
from repro.core.exceptions import InvariantViolation
from repro.core.interface import ListLabeler
from repro.core.operations import MoveRecorder, Operation, OperationResult
from repro.core.physical import BUFFER, F_SLOT, PhysicalArray, R_EMPTY
from repro.core.shell import RShell

#: Type of the factories used to build the component algorithms: they receive
#: ``(capacity, num_slots)`` and return a ready list labeler.
LabelerFactory = Callable[[int, int], ListLabeler]

#: Type of the factory building the shared physical array from its slot
#: count.  The default is :class:`repro.core.physical.PhysicalArray`; the
#: perf/differential harnesses inject tracing or reference implementations.
PhysicalFactory = Callable[[int], PhysicalArray]


def default_expected_cost(capacity: int) -> int:
    """Default ``E_R`` bound: ``ceil(log₂² n)``, the classical PMA guarantee."""
    log = math.log2(max(4, capacity))
    return max(4, int(math.ceil(log * log)))


class Embedding(ListLabeler):
    """The list-labeling algorithm ``F ⊳ R`` ("F in R")."""

    def __init__(
        self,
        capacity: int,
        fast_factory: LabelerFactory,
        reliable_factory: LabelerFactory,
        *,
        epsilon: float = 0.25,
        num_slots: int | None = None,
        reliable_expected_cost: int | None = None,
        rebuild_work_factor: float = 1.0,
        physical_factory: PhysicalFactory | None = None,
        physical_backend: str | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if physical_factory is None:
            # Deferred import: physical_backends imports the optional vector
            # module, which this core module must not force at import time.
            from repro.core.physical_backends import resolve_physical_factory

            physical_factory = resolve_physical_factory(physical_backend)
        elif physical_backend is not None:
            raise ValueError(
                "pass physical_factory or physical_backend, not both"
            )
        if num_slots is None:
            f_slots = max(capacity + 1, int(math.ceil((1.0 + epsilon) * capacity)))
            buffer_slots = max(2, int(math.ceil(epsilon * capacity)))
            r_empty_slots = max(2, int(math.ceil(epsilon * capacity)))
            num_slots = f_slots + buffer_slots + r_empty_slots
        else:
            # A prescribed array size (e.g. when this embedding itself plays
            # the role of R inside an outer embedding): split the available
            # slack (num_slots - capacity) into the ε n of extra F-slots, the
            # ε n buffer slots and the ε n R-empty slots.
            slack = num_slots - capacity
            if slack < 6:
                raise ValueError(
                    "an embedding needs at least 6 slots of slack "
                    f"(capacity {capacity}, num_slots {num_slots})"
                )
            buffer_slots = max(2, slack // 3)
            r_empty_slots = max(2, slack // 3)
            f_slots = num_slots - buffer_slots - r_empty_slots
            epsilon = slack / (3.0 * capacity)
        super().__init__(capacity, num_slots)

        self.epsilon = epsilon
        self.e_r = (
            reliable_expected_cost
            if reliable_expected_cost is not None
            else default_expected_cost(capacity)
        )
        if self.e_r < 1:
            raise ValueError("reliable_expected_cost must be at least 1")
        self.rebuild_work_factor = rebuild_work_factor
        # Lemma 7 requires the rebuild to complete before the ~εn dummy
        # buffer slots run out: a rebuild costs up to (1 + ε)n moves while
        # only ~εn slow operations can be buffered, so the per-operation
        # budget needs a floor of ~(1 + ε)/ε units (with a factor-2 safety
        # margin for the small-n integer effects) no matter how small the
        # caller's E_R is.  For the default E_R = Θ(log² n) the floor is
        # inactive.
        lemma7_floor = int(math.ceil(2.0 * (1.0 + self.epsilon) / self.epsilon))
        self._work_budget = max(
            lemma7_floor, int(math.ceil(rebuild_work_factor * self.e_r))
        )

        self._physical = physical_factory(num_slots)
        self._shell = RShell(
            reliable_factory,
            f_slots=f_slots,
            buffer_slots=buffer_slots,
            physical=self._physical,
        )
        self._emulator = FEmulator(fast_factory(capacity, f_slots), self._physical)

        # --- statistics ---------------------------------------------------
        self.fast_operations = 0
        self.slow_operations = 0
        self.max_buffered_elements = 0
        #: The operation sequence handed to the R-shell, recorded as
        #: ``(kind, token_rank)`` pairs — used by the Lemma 4 experiments.
        self.shell_input_trace: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Component access (read-only; useful for experiments and figures)
    # ------------------------------------------------------------------
    @property
    def physical(self) -> PhysicalArray:
        return self._physical

    @property
    def physical_backend(self) -> str:
        """Registry name of the physical-array backend in use."""
        from repro.core.physical_backends import backend_name_of

        return backend_name_of(self._physical)

    @property
    def emulator(self) -> FEmulator:
        return self._emulator

    @property
    def shell(self) -> RShell:
        return self._shell

    @property
    def f_slot_count(self) -> int:
        return self._physical.f_slot_count

    @property
    def buffered_elements(self) -> int:
        return self._physical.buffered_element_count

    @property
    def deadweight_moves(self) -> int:
        return self._physical.total_deadweight_moves

    # ------------------------------------------------------------------
    # ListLabeler interface
    # ------------------------------------------------------------------
    def slots(self) -> Sequence[Hashable | None]:
        return self._physical.slots()

    def slot_of(self, element: Hashable) -> int:
        return self._physical.position_of(element)

    def rank_of(self, element: Hashable) -> int:
        """1-based rank via the physical array's indexes (``O(log m)``)."""
        return (
            self._physical.real_between(0, self._physical.position_of(element)) + 1
        )

    # ------------------------------------------------------------------
    # Read path: served by the shared physical array's Fenwick lanes
    # ------------------------------------------------------------------
    def select(self, rank: int) -> Hashable:
        """The ``rank``-th element (one select on the element lane)."""
        self._check_read_rank(rank, "select")
        return self._physical.element_at_rank(rank)

    def _iter_from(self, rank: int):
        return self._physical.iter_elements_from(rank)

    def count_range(self, lo: int, hi: int) -> int:
        """Stored elements at physical positions in ``[lo, hi)``."""
        lo = max(0, lo)
        hi = min(self.num_slots, hi)
        if hi <= lo:
            return 0
        return self._physical.real_between(lo, hi)

    def slot_of_rank(self, rank: int) -> int:
        self._check_read_rank(rank, "select")
        return self._physical.position_of_rank(rank)

    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        # The recorder-backed sink keeps the hot path allocation-free; the
        # result still exposes the Move API through it.
        result = OperationResult(Operation.insert(rank), MoveRecorder())
        self._physical.move_sink = result.moves
        try:
            simulated_result = self._emulator.simulated.insert(rank, element)
            fast = (
                not self._emulator.has_pending_rebuild
                and simulated_result.cost <= self.e_r
            )
            if fast:
                self.fast_operations += 1
                self._emulator.apply_fast(simulated_result.moves)
            else:
                self.slow_operations += 1
                self._buffer_insert(rank, element)
                self._perform_rebuild_work()
            self._emulator.note_operation()
        finally:
            self._physical.move_sink = None
        self.max_buffered_elements = max(
            self.max_buffered_elements, self._physical.buffered_element_count
        )
        return result

    def _delete(self, rank: int) -> OperationResult:
        result = OperationResult(Operation.delete(rank), MoveRecorder())
        self._physical.move_sink = result.moves
        try:
            element = self._physical.element_at_rank(rank)
            simulated_result = self._emulator.simulated.delete(rank)
            fast = (
                not self._emulator.has_pending_rebuild
                and simulated_result.cost <= self.e_r
            )
            if fast:
                self.fast_operations += 1
                self._emulator.apply_fast(simulated_result.moves)
            else:
                self.slow_operations += 1
                position = self._physical.position_of(element)
                was_f_slot = self._physical.kind(position) == F_SLOT
                self._physical.take_element(position)
                if was_f_slot:
                    self._emulator.mark_deleted(element)
                self._perform_rebuild_work()
            self._emulator.note_operation()
        finally:
            self._physical.move_sink = None
        return result

    # ------------------------------------------------------------------
    # Slow path, part (a): buffering an insertion in the R-shell
    # ------------------------------------------------------------------
    def _buffer_insert(self, rank: int, element: Hashable) -> None:
        physical = self._physical
        if physical.dummy_buffer_count == 0:
            raise InvariantViolation(
                "no dummy buffer slot available — the halting condition of "
                "Section 4 occurred, contradicting Lemma 7"
            )
        # The element's rank predecessor anchors both the dummy choice and
        # the new buffer slot's R-rank; everything is derived from the
        # truncated state only (Lemma 4).
        predecessor = (
            physical.element_at_rank(rank - 1) if rank > 1 else None
        )
        anchor_position = (
            physical.position_of(predecessor) if predecessor is not None else 0
        )

        dummy_position = physical.nearest_dummy_buffer(anchor_position)
        assert dummy_position is not None
        dummy_rank = physical.token_rank(dummy_position)
        self.shell_input_trace.append(("delete", dummy_rank))
        self._shell.delete_token(dummy_rank)

        if predecessor is not None:
            insert_rank = physical.token_rank(physical.position_of(predecessor)) + 1
        else:
            insert_rank = 1
        self.shell_input_trace.append(("insert", insert_rank))
        new_position = self._shell.insert_token(insert_rank)
        physical.put_element(new_position, element)

    # ------------------------------------------------------------------
    # Slow path, part (b): rebuild work on the F-emulator
    # ------------------------------------------------------------------
    def _perform_rebuild_work(self) -> None:
        emulator = self._emulator
        if not emulator.has_pending_rebuild:
            if not emulator.diverged():
                return
            emulator.start_rebuild()

        # (i) perform Θ(E_R) rebuild work.
        emulator.rebuild_work(self._work_budget)
        # (ii) finish the rebuild if it is nearly done.
        if (
            emulator.has_pending_rebuild
            and emulator.estimated_remaining_cost() < self.e_r
        ):
            emulator.rebuild_work(0, finish=True)
        # (iii) if complete, open the next checkpoint …
        if not emulator.has_pending_rebuild and emulator.diverged():
            emulator.start_rebuild()
            # (iv) … and finish it too if it is cheap.
            if emulator.estimated_remaining_cost() < self.e_r:
                emulator.rebuild_work(0, finish=True)

    # ------------------------------------------------------------------
    # Validation and rendering
    # ------------------------------------------------------------------
    def check_consistency(self, key=None) -> None:
        """Run every structural invariant of the embedding (used by tests)."""
        self._physical.check_consistency(key=key)
        self._emulator.check_consistency()
        self._shell.check_consistency()
        counts = {R_EMPTY: 0, F_SLOT: 0, BUFFER: 0}
        for kind in self._physical.kinds():
            counts[kind] += 1
        if counts[F_SLOT] != self._emulator.simulated.num_slots:
            raise InvariantViolation("the number of F-slots drifted")
        expected = [
            item for item in self._emulator.simulated.slots() if item is not None
        ]
        actual = self._physical.elements()
        if expected != actual:
            raise InvariantViolation(
                "the embedding's contents diverged from the simulated copy of F"
            )

    def render_views(self) -> dict[str, str]:
        """Render the three views of Figure 1 as strings (see examples/)."""
        kind_chars = {F_SLOT: "F", BUFFER: "B", R_EMPTY: "."}
        embedding_view = []
        f_view = []
        shell_view = []
        for position in range(self.num_slots):
            kind = self._physical.kind(position)
            occupied = self._physical.element(position) is not None
            symbol = kind_chars[kind]
            embedding_view.append(symbol if occupied else symbol.lower())
            if kind == F_SLOT:
                f_view.append("F" if occupied else "f")
            shell_view.append("." if kind == R_EMPTY else "X")
        return {
            "embedding": "".join(embedding_view),
            "f_emulator": "".join(f_view),
            "r_shell": "".join(shell_view),
        }
