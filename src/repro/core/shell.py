"""The R-shell: the reliable algorithm driving the whole array.

The R-shell is an ordinary list-labeling algorithm ``R`` whose "elements"
are *tokens*: one token per F-emulator slot and one per buffer slot.  From
R's point of view every token is an occupied slot (Figure 1, bottom view);
the only free slots it sees are the ``R_EMPTY`` positions.  The shell never
learns what a token carries — the embedding replays R's token moves onto the
physical array (slots travel with their contents) and only pays for the
tokens that actually carry elements.

Per the slow path of Section 3, each buffered insertion costs the shell one
token deletion (an arbitrary dummy buffer slot) plus one token insertion (a
fresh buffer slot at the new element's rank).  The shell records its own
token-level cost separately so Lemma 10's comparison (the embedding's
R-side cost is bounded by R's own guarantees) can be checked empirically.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.core.exceptions import InvariantViolation
from repro.core.interface import ListLabeler
from repro.core.operations import Move
from repro.core.physical import BUFFER, F_SLOT, PhysicalArray


class RShell:
    """Wraps the reliable algorithm ``R`` and keeps it in sync with the array."""

    def __init__(
        self,
        reliable_factory: Callable[[int, int], ListLabeler],
        *,
        f_slots: int,
        buffer_slots: int,
        physical: PhysicalArray,
    ) -> None:
        self._physical = physical
        self._token_ids = itertools.count()
        tokens = f_slots + buffer_slots
        self._reliable = reliable_factory(tokens, physical.num_slots)
        if self._reliable.num_slots != physical.num_slots:
            raise InvariantViolation(
                "the reliable algorithm must operate on the embedding's array: "
                f"expected {physical.num_slots} slots, got {self._reliable.num_slots}"
            )
        #: Token-level cost of initializing R with the Θ(n) F-slot/buffer tokens.
        self.initialization_cost = 0
        #: Token-level cost charged to R after initialization (R's own metric).
        self.token_cost = 0
        #: Real-element cost actually incurred on the physical array by replays.
        self.element_cost = 0
        self._initialize(f_slots, buffer_slots)

    # ------------------------------------------------------------------
    @property
    def reliable(self) -> ListLabeler:
        """The underlying reliable list-labeling instance (read-only use)."""
        return self._reliable

    def _initialize(self, f_slots: int, buffer_slots: int) -> None:
        """Insert the Θ(n) initial tokens into R and imprint the slot kinds.

        The first ``f_slots`` tokens become F-emulator slots and the rest
        become (dummy) buffer slots; their physical placement is whatever
        layout R chose, read back from R's slot array.
        """
        tokens = [next(self._token_ids) for _ in range(f_slots + buffer_slots)]
        kinds = [
            F_SLOT if index < f_slots else BUFFER for index in range(len(tokens))
        ]
        self.initialization_cost += self._reliable.bulk_load(tokens)
        occupied_positions = [
            position
            for position, item in enumerate(self._reliable.slots())
            if item is not None
        ]
        if len(occupied_positions) != len(kinds):
            raise InvariantViolation("R lost track of its initialization tokens")
        self._physical.initialize_kinds(zip(occupied_positions, kinds))

    # ------------------------------------------------------------------
    def delete_token(self, token_rank: int) -> None:
        """Delete the token of the given R-rank and replay the moves."""
        result = self._reliable.delete(token_rank)
        self.token_cost += result.cost
        self.element_cost += self._physical.apply_shell_moves(result.moves)

    def insert_token(self, token_rank: int) -> int:
        """Insert a fresh buffer token at ``token_rank``; returns its position."""
        token = next(self._token_ids)
        result = self._reliable.insert(token_rank, token)
        self.token_cost += result.cost
        self.element_cost += self._physical.apply_shell_moves(result.moves)
        return self._reliable.slot_of(token)

    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Check that R's occupied slots coincide with the non-empty slots."""
        shell_occupied = [
            position
            for position, item in enumerate(self._reliable.slots())
            if item is not None
        ]
        array_nonempty = [
            position
            for position in range(self._physical.num_slots)
            if self._physical.kind(position) != 0
        ]
        if shell_occupied != array_nonempty:
            raise InvariantViolation(
                "the R-shell's occupied slots diverged from the physical array"
            )
