"""Named registry of the embedding's physical-array backends.

Three interchangeable implementations of the shared array ``A`` exist —
``reference`` (:class:`repro.core.physical_reference.ReferencePhysicalArray`,
the seed oracle), ``slab`` (:class:`repro.core.physical.PhysicalArray`, the
packed-Fenwick rewrite and the no-dependency default) and ``vector``
(:class:`repro.core.physical_vector.VectorPhysicalArray`, numpy bitboards).
All three produce bit-identical move logs; they differ only in speed, so
backend selection is a deployment knob, not a semantic one.

Selection precedence, mirroring the store's other knobs:

1. an explicit ``physical_backend=`` argument (or a direct
   ``physical_factory=`` callable, which bypasses this module entirely);
2. the ``REPRO_PHYSICAL_BACKEND`` environment variable;
3. the ``slab`` default.

The ``vector`` backend needs numpy.  Asking for it *explicitly* without
numpy raises immediately with the underlying import error — silent
downgrades on an explicit request hide real misconfiguration.  Asking via
the *environment variable* degrades gracefully: one warning, then the slab
backend, so a fleet-wide ``REPRO_PHYSICAL_BACKEND=vector`` rollout cannot
brick hosts whose image lacks numpy.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable

from repro.core.physical import PhysicalArray
from repro.core.physical_reference import ReferencePhysicalArray

__all__ = [
    "DEFAULT_PHYSICAL_BACKEND",
    "PHYSICAL_BACKEND_ENV_VAR",
    "PHYSICAL_BACKENDS",
    "available_physical_backends",
    "backend_name_of",
    "resolve_physical_factory",
    "vector_available",
]

#: Environment variable consulted when no explicit backend is passed.
PHYSICAL_BACKEND_ENV_VAR = "REPRO_PHYSICAL_BACKEND"

#: The no-dependency default.
DEFAULT_PHYSICAL_BACKEND = "slab"

#: Every recognized backend name (not all necessarily importable here).
PHYSICAL_BACKENDS = ("reference", "slab", "vector")

_VECTOR_IMPORT_ERROR: str | None
try:
    from repro.core.physical_vector import VectorPhysicalArray
except ImportError as exc:  # pragma: no cover - exercised via fallback tests
    VectorPhysicalArray = None  # type: ignore[assignment]
    _VECTOR_IMPORT_ERROR = str(exc)
else:
    _VECTOR_IMPORT_ERROR = None


def vector_available() -> bool:
    """Whether the numpy-backed ``vector`` backend imported successfully."""
    return VectorPhysicalArray is not None


def available_physical_backends() -> tuple[str, ...]:
    """The backend names usable in this interpreter, in registry order."""
    return tuple(
        name
        for name in PHYSICAL_BACKENDS
        if name != "vector" or VectorPhysicalArray is not None
    )


def resolve_physical_factory(
    backend: str | None = None,
) -> Callable[[int], PhysicalArray]:
    """``num_slots -> physical array`` factory for ``backend``.

    ``backend=None`` consults :data:`PHYSICAL_BACKEND_ENV_VAR`, then falls
    back to :data:`DEFAULT_PHYSICAL_BACKEND`.  See the module docstring for
    the numpy-missing semantics (explicit request raises, environment
    request warns and degrades to ``slab``).
    """
    from_env = False
    if backend is None:
        backend = os.environ.get(PHYSICAL_BACKEND_ENV_VAR) or None
        from_env = backend is not None
    if backend is None:
        backend = DEFAULT_PHYSICAL_BACKEND
    if backend not in PHYSICAL_BACKENDS:
        raise ValueError(
            f"unknown physical backend {backend!r} (recognized: "
            f"{', '.join(PHYSICAL_BACKENDS)})"
        )
    if backend == "reference":
        return ReferencePhysicalArray
    if backend == "vector":
        if VectorPhysicalArray is None:
            if from_env:
                warnings.warn(
                    f"{PHYSICAL_BACKEND_ENV_VAR}=vector requested but numpy "
                    f"is unavailable ({_VECTOR_IMPORT_ERROR}); falling back "
                    f"to the {DEFAULT_PHYSICAL_BACKEND!r} backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return PhysicalArray
            raise RuntimeError(
                "physical backend 'vector' requires numpy "
                f"({_VECTOR_IMPORT_ERROR}); install numpy (pip install "
                "repro[vector]) or select the 'slab' backend"
            )
        return VectorPhysicalArray
    return PhysicalArray


def backend_name_of(array: object) -> str:
    """The registry name of the backend ``array`` was built by.

    Subclasses map to their base backend (``TracingPhysicalArray`` — a
    :class:`PhysicalArray` subclass used by the perf tracer — reports as
    ``slab``); anything unrecognized reports as its class name.
    """
    if VectorPhysicalArray is not None and isinstance(array, VectorPhysicalArray):
        return "vector"
    if isinstance(array, ReferencePhysicalArray):
        return "reference"
    if isinstance(array, PhysicalArray):
        return "slab"
    return type(array).__name__
