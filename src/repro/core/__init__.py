"""Core list-labeling framework and the layered embedding.

This subpackage contains the problem framework (operations, cost model,
validation helpers) shared by every algorithm in :mod:`repro.algorithms`,
and the paper's primary contribution: the embedding ``F ⊳ R`` of a fast
list-labeling algorithm into a reliable one (:mod:`repro.core.embedding`)
together with its repeated composition ``X ⊳ (Y ⊳ Z)``
(:mod:`repro.core.layered`).
"""

from repro.core.exceptions import (
    BatchError,
    CapacityError,
    InvariantViolation,
    LabelerError,
    RankError,
)
from repro.core.operations import (
    COUNT_RANGE,
    DELETE,
    INSERT,
    LOOKUP,
    RANGE,
    READ_KINDS,
    SELECT,
    BatchResult,
    Move,
    MoveRecorder,
    Operation,
    OperationResult,
    move_triples,
)
from repro.core.interface import Cursor, ListLabeler
from repro.core.physical import PhysicalArray, ReferencePhysicalArray
from repro.core.cost import (
    LATENCY_KEY_ALIASES,
    CostTracker,
    WindowStatistics,
)
from repro.core.embedding import Embedding
from repro.core.layered import (
    LayeredLabeler,
    make_corollary11_labeler,
    make_corollary12_labeler,
)
from repro.core.interleaved import InterleavedComposition
from repro.core.parallel import ShardPool
from repro.core.sharded import ShardedLabeler

__all__ = [
    "BatchError",
    "BatchResult",
    "COUNT_RANGE",
    "CapacityError",
    "CostTracker",
    "LATENCY_KEY_ALIASES",
    "Cursor",
    "DELETE",
    "Embedding",
    "INSERT",
    "LOOKUP",
    "RANGE",
    "READ_KINDS",
    "SELECT",
    "InterleavedComposition",
    "InvariantViolation",
    "LabelerError",
    "LayeredLabeler",
    "ListLabeler",
    "Move",
    "MoveRecorder",
    "Operation",
    "OperationResult",
    "PhysicalArray",
    "RankError",
    "ReferencePhysicalArray",
    "ShardPool",
    "ShardedLabeler",
    "WindowStatistics",
    "make_corollary11_labeler",
    "make_corollary12_labeler",
    "move_triples",
]
