"""Checkpointed rebuilds of the F-emulator (Figures 3 and 4).

A *rebuild* transforms the F-emulator's actual array ``Ẽ_F`` into the frozen
checkpoint state ``C = F(t₀)`` of the simulated copy of ``F``.  Following the
paper, the plan is computed once when the rebuild starts:

1. ``Q`` is the set of elements whose slot differs between ``Ẽ_F`` and ``C``
   (including elements present in only one of the two states);
2. the F-emulator's array is split into maximal *dirty intervals* — runs of
   F-slots containing only elements of ``Q``, delimited by clean occupied
   slots (Figure 3);
3. each interval is rewritten by a sequence of per-element steps (Figure 4):
   ghost clean-ups, then elements moving to a lower-or-equal F-index in
   increasing rank order, then elements moving to a higher F-index together
   with buffered-element incorporations in decreasing rank order.  This
   ordering guarantees that every step's target F-slot (and every F-slot on
   the way) is element-free when the step runs, so each step is realized by
   a single :meth:`repro.core.physical.PhysicalArray.chain_move`.

The plan is *incremental*: the embedding executes it in ``Θ(E_R)``-cost
chunks across the slow-path operations (Section 3, slow path, part (b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

#: Step kinds.
CLEANUP = "cleanup"          # remove a ghost / stale entry from Ẽ_F (cost 0)
PLACE = "place"              # move an element already in Ẽ_F to a new F-index
INCORPORATE = "incorporate"  # move a buffered element into its F-slot


@dataclass(frozen=True)
class RebuildStep:
    """One per-element action of a rebuild plan."""

    kind: str
    element: Hashable
    target_f_index: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RebuildStep({self.kind}, {self.element!r}, target={self.target_f_index})"


class RebuildPlan:
    """An ordered list of :class:`RebuildStep` realizing one checkpoint."""

    def __init__(self, steps: Sequence[RebuildStep], checkpoint: Sequence[Hashable | None]):
        self._steps: list[RebuildStep] = list(steps)
        self._cursor = 0
        #: The checkpoint state this plan converges to (kept for debugging
        #: and for the Figure 3/4 rendering examples).
        self.checkpoint: tuple[Hashable | None, ...] = tuple(checkpoint)

    # ------------------------------------------------------------------
    @property
    def total_steps(self) -> int:
        return len(self._steps)

    @property
    def remaining_steps(self) -> int:
        return len(self._steps) - self._cursor

    @property
    def is_complete(self) -> bool:
        return self._cursor >= len(self._steps)

    def peek(self) -> RebuildStep | None:
        if self.is_complete:
            return None
        return self._steps[self._cursor]

    def advance(self) -> RebuildStep:
        step = self._steps[self._cursor]
        self._cursor += 1
        return step

    def pending_steps(self) -> list[RebuildStep]:
        """Remaining steps, in execution order (read-only copy)."""
        return list(self._steps[self._cursor:])


def _interval_boundaries(
    shadow: Sequence[Hashable | None], checkpoint: Sequence[Hashable | None]
) -> list[tuple[int, int]]:
    """Maximal dirty intervals of F-indices, delimited by clean occupied slots.

    A position is *clean* when both states agree on it; intervals are runs of
    positions containing no clean occupied slot, trimmed to runs that contain
    at least one dirty position (Figure 3).
    """
    assert len(shadow) == len(checkpoint)
    intervals: list[tuple[int, int]] = []
    run_start: int | None = None
    run_dirty = False
    for index in range(len(shadow)):
        same = shadow[index] == checkpoint[index]
        clean_occupied = same and shadow[index] is not None
        if clean_occupied:
            if run_start is not None and run_dirty:
                intervals.append((run_start, index - 1))
            run_start = None
            run_dirty = False
            continue
        if run_start is None:
            run_start = index
        if not same:
            run_dirty = True
    if run_start is not None and run_dirty:
        intervals.append((run_start, len(shadow) - 1))
    return intervals


def build_plan(
    shadow: Sequence[Hashable | None],
    checkpoint: Sequence[Hashable | None],
) -> RebuildPlan:
    """Construct the rebuild plan that turns ``shadow`` (``Ẽ_F``) into ``checkpoint``.

    Steps are grouped per dirty interval and ordered so that every step's
    target F-slot is element-free by the time the step executes (see the
    module docstring); elements never cross interval boundaries because the
    delimiting slots are clean in both states.
    """
    if len(shadow) != len(checkpoint):
        raise ValueError("shadow and checkpoint must have the same length")

    shadow_pos = {item: idx for idx, item in enumerate(shadow) if item is not None}
    checkpoint_pos = {item: idx for idx, item in enumerate(checkpoint) if item is not None}

    steps: list[RebuildStep] = []
    for lo, hi in _interval_boundaries(shadow, checkpoint):
        cleanup: list[RebuildStep] = []
        lowering: list[tuple[int, RebuildStep]] = []
        raising_or_new: list[tuple[int, RebuildStep]] = []

        # Elements leaving Ẽ_F entirely (ghost clean-ups).
        for index in range(lo, hi + 1):
            item = shadow[index]
            if item is not None and item not in checkpoint_pos:
                cleanup.append(RebuildStep(CLEANUP, item))

        # Elements of the checkpoint interval, by target position.
        for target in range(lo, hi + 1):
            item = checkpoint[target]
            if item is None:
                continue
            source = shadow_pos.get(item)
            if source is None:
                raising_or_new.append(
                    (target, RebuildStep(INCORPORATE, item, target))
                )
            elif source == target:
                continue
            elif target <= source:
                lowering.append((target, RebuildStep(PLACE, item, target)))
            else:
                raising_or_new.append((target, RebuildStep(PLACE, item, target)))

        steps.extend(cleanup)
        steps.extend(step for _, step in sorted(lowering, key=lambda pair: pair[0]))
        steps.extend(
            step
            for _, step in sorted(raising_or_new, key=lambda pair: pair[0], reverse=True)
        )

    return RebuildPlan(steps, checkpoint)
