"""The shared physical array of the embedding ``F ⊳ R`` — slab-backed.

Section 3 of the paper describes one array ``A`` of ``(1 + 3ε)n`` slots in
which three kinds of slots coexist (Figure 1):

* ``F_SLOT`` — the ``(1 + ε)n`` slots the F-emulator knows about (blue);
* ``BUFFER`` — the ``εn`` R-shell buffer slots (green), holding either a
  buffered element or a *buffer dummy*;
* ``R_EMPTY`` — the ``εn`` slots only the R-shell sees as free (white).

:class:`PhysicalArray` stores the kinds and contents, maintains the Fenwick
indexes needed to translate between the three coordinate systems (physical
position, F-emulator index, R-shell token rank), records element moves for
cost accounting, and implements the two physical primitives of the paper:

* :meth:`apply_shell_moves` — replay a move sequence produced by the R-shell
  (slots travel with their contents; the F-emulator's view is unchanged);
* :meth:`chain_move` — move an element to a target F-slot by shifting the
  buffered elements in between (the deadweight mechanism of Figure 2) and
  relabelling slot kinds so that neither the sorted order nor the R-shell's
  view of which slots are occupied ever changes.

**Storage layout.**  This is the wire-speed rewrite of the seed
implementation (which survives as
:class:`repro.core.physical_reference.ReferencePhysicalArray` and is the
move-for-move differential oracle for this class):

* slot state lives in one packed bitmask per slot inside a
  :class:`repro.core.fenwick.PackedFenwick` — one ``array('B')`` slab plus
  four Fenwick lanes (F-slot / non-empty / element-present / dummy-buffer),
  so a mutation performs a *single* combined tree walk instead of four
  independent ``FenwickTree.set`` refreshes;
* contents live in an ``array('q')`` slab of interned element ids
  (``-1`` = empty) with an id → position ``array('q')`` replacing the
  per-element position dict on the hot paths;
* :meth:`chain_positions` is a Fenwick select-walk (``O(k log m)`` for ``k``
  tokens found) instead of the seed's ``O(hi - lo)`` linear scan;
* move recording goes through the ``move_sink`` protocol: a plain
  ``list[Move]`` (seed behaviour, used by tests) or a zero-allocation
  :class:`repro.core.operations.MoveRecorder` (the fast path — three slab
  appends per move, no :class:`Move` objects).
"""

from __future__ import annotations

from array import array
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from repro import obs
from repro.core.exceptions import InvariantViolation
from repro.core.fenwick import PackedFenwick
from repro.core.operations import Move, MoveRecorder
from repro.core.physical_kinds import (
    BIT_DUMMY as _BIT_DUMMY,
    BIT_F as _BIT_F,
    BIT_NONEMPTY as _BIT_NONEMPTY,
    BIT_REAL as _BIT_REAL,
    BUFFER,
    F_SLOT,
    KIND_MASKS as _KIND_MASKS,
    KIND_NAMES,
    LANE_DUMMY as _LANE_DUMMY,
    LANE_F as _LANE_F,
    LANE_NONEMPTY as _LANE_NONEMPTY,
    LANE_REAL as _LANE_REAL,
    MASK_KIND as _MASK_KIND,
    R_EMPTY,
    mask_for as _mask_for,
)
from repro.core.physical_reference import ReferencePhysicalArray

__all__ = [
    "BUFFER",
    "F_SLOT",
    "KIND_NAMES",
    "PhysicalArray",
    "R_EMPTY",
    "ReferencePhysicalArray",
]

#: Spans at most this wide are scanned directly in :meth:`chain_positions`;
#: wider (sparse) spans take the Fenwick select-walk.  The results are
#: identical — this only bounds the constant for the short dense chains the
#: fast path produces.
_CHAIN_SCAN_CUTOFF = 64


class PhysicalArray:
    """The embedding's array ``A`` with slot kinds, contents, and indexes."""

    # Defaults so instances materialized without ``__init__`` (object graphs
    # rebuilt via ``__new__``) never trip on missing observability state.
    _obs_enabled = False

    def __init__(self, num_slots: int) -> None:
        self._m = num_slots
        self._fen = PackedFenwick(num_slots, 4)
        #: Direct view of the Fenwick's per-slot bitmask slab (hot-path reads).
        self._masks = self._fen.masks()
        #: Interned element id per slot; -1 marks an element-free slot.
        self._eid = array("q", b"\xff" * (8 * num_slots)) if num_slots else array("q")
        #: id → element object and element → id (the interning table).
        self._elem_of: list[Hashable | None] = []
        self._id_of: dict[Hashable, int] = {}
        #: id → physical position (-1 while the element is off the array).
        self._pos = array("q")
        #: Ids released by :meth:`take_element`, ready for reuse — keeps the
        #: interning table sized by the *live* set, not every element ever seen.
        self._free_ids: list[int] = []
        #: Where recorded moves go during an operation: ``None``, a plain
        #: ``list[Move]``, or a :class:`MoveRecorder` (the zero-alloc path).
        self.move_sink: list[Move] | MoveRecorder | None = None
        #: Per-element count of deadweight moves (Lemma 5 accounting).
        self.deadweight_by_element: dict[Hashable, int] = {}
        self.total_deadweight_moves = 0
        reg = obs.get_registry()
        if reg.enabled:
            self._obs_enabled = True
            self._obs_chain_moves = reg.counter("physical.chain_moves")
            self._obs_shell_moves = reg.counter("physical.shell_moves")
            self._obs_relabel_flips = reg.counter("physical.relabel_flips")
            # Index into PHYSICAL_BACKENDS: 0=reference, 1=slab, 2=vector
            # (the reference backend stays seed-pure and never reports).
            reg.gauge("physical.backend").set(1.0)

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def _intern(self, element: Hashable) -> int:
        eid = self._id_of.get(element)
        if eid is None:
            free = self._free_ids
            if free:
                eid = free.pop()
                self._elem_of[eid] = element
            else:
                eid = len(self._elem_of)
                self._elem_of.append(element)
                self._pos.append(-1)
            self._id_of[element] = eid
        return eid

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return self._m

    def kind(self, position: int) -> int:
        return _MASK_KIND[self._masks[position]]

    def element(self, position: int) -> Hashable | None:
        eid = self._eid[position]
        return None if eid < 0 else self._elem_of[eid]

    def kinds(self) -> Sequence[int]:
        return tuple(_MASK_KIND[mask] for mask in self._masks)

    def slots(self) -> Sequence[Hashable | None]:
        """Physical contents, one entry per slot (``None`` = no element)."""
        elem_of = self._elem_of
        return tuple(None if eid < 0 else elem_of[eid] for eid in self._eid)

    def elements(self) -> list[Hashable]:
        """All stored elements in physical (= rank) order."""
        elem_of = self._elem_of
        return [elem_of[eid] for eid in self._eid if eid >= 0]

    def position_of(self, element: Hashable) -> int:
        eid = self._id_of.get(element, -1)
        if eid >= 0:
            position = self._pos[eid]
            if position >= 0:
                return position
        raise KeyError(f"element {element!r} is not stored")

    def contains(self, element: Hashable) -> bool:
        eid = self._id_of.get(element, -1)
        return eid >= 0 and self._pos[eid] >= 0

    @property
    def element_count(self) -> int:
        return self._fen.total(_LANE_REAL)

    def element_at_rank(self, rank: int) -> Hashable:
        """The ``rank``-th (1-based) stored element."""
        position = self._fen.select(_LANE_REAL, rank)
        eid = self._eid[position]
        assert eid >= 0
        return self._elem_of[eid]

    def position_of_rank(self, rank: int) -> int:
        """Physical position of the ``rank``-th (1-based) stored element."""
        return self._fen.select(_LANE_REAL, rank)

    def elements_at_ranks(self, ranks: Iterable[int]) -> list[Hashable]:
        """Batched :meth:`element_at_rank` — one answer per requested rank."""
        return [self.element_at_rank(rank) for rank in ranks]

    def iter_elements_from(self, rank: int) -> Iterator[Hashable]:
        """Lazily yield the stored elements of ranks ``rank, rank+1, …``.

        One ``O(log m)`` select seeks the start position; from there the
        element-id slab is walked directly, yielding as the consumer
        advances — nothing is materialized.  ``rank`` past the element
        count yields nothing.
        """
        if rank > self._fen.total(_LANE_REAL):
            return
        eids = self._eid
        elem_of = self._elem_of
        for position in range(self._fen.select(_LANE_REAL, rank), self._m):
            eid = eids[position]
            if eid >= 0:
                yield elem_of[eid]

    # ------------------------------------------------------------------
    # Counting helpers
    # ------------------------------------------------------------------
    def real_between(self, lo: int, hi: int) -> int:
        """Number of stored elements at positions in ``[lo, hi)``."""
        return self._fen.count(_LANE_REAL, lo, hi)

    def nonempty_between(self, lo: int, hi: int) -> int:
        """Number of non-``R_EMPTY`` slots at positions in ``[lo, hi)``."""
        return self._fen.count(_LANE_NONEMPTY, lo, hi)

    def token_rank(self, position: int) -> int:
        """1-based R-shell rank of the (non-empty) slot at ``position``."""
        if not self._masks[position] & _BIT_NONEMPTY:
            raise ValueError(f"slot {position} is an R-empty slot, not a token")
        return self._fen.prefix(_LANE_NONEMPTY, position) + 1

    @property
    def f_slot_count(self) -> int:
        return self._fen.total(_LANE_F)

    @property
    def buffer_count(self) -> int:
        return self._fen.total(_LANE_NONEMPTY) - self._fen.total(_LANE_F)

    @property
    def dummy_buffer_count(self) -> int:
        return self._fen.total(_LANE_DUMMY)

    @property
    def buffered_element_count(self) -> int:
        """Number of real elements currently living in buffer slots."""
        return self.buffer_count - self.dummy_buffer_count

    # ------------------------------------------------------------------
    # F-coordinate translation
    # ------------------------------------------------------------------
    def f_position(self, f_index: int) -> int:
        """Physical position of the ``f_index``-th (0-based) F-slot."""
        return self._fen.select(_LANE_F, f_index + 1)

    def f_index_of(self, position: int) -> int:
        """0-based F-index of the F-slot at ``position``."""
        if not self._masks[position] & _BIT_F:
            raise ValueError(f"slot {position} is not an F-slot")
        return self._fen.prefix(_LANE_F, position)

    def f_contents(self) -> list[Hashable | None]:
        """Contents of the F-slots in F-order (the array ``Ẽ_F`` of Section 3)."""
        eid = self._eid
        elem_of = self._elem_of
        return [
            None if eid[p] < 0 else elem_of[eid[p]]
            for p, mask in enumerate(self._masks)
            if mask & _BIT_F
        ]

    # ------------------------------------------------------------------
    # Dummy-buffer queries (needed by the slow path, Lemma 4 compatible)
    # ------------------------------------------------------------------
    def nearest_dummy_buffer(self, position: int) -> int | None:
        """Position of the dummy buffer slot nearest to ``position``.

        "Nearest" is measured in *truncated-state order* (number of non-empty
        slots in between), which depends only on the truncated state ``T`` and
        therefore keeps the R-shell's input independent of its random bits
        (Lemma 4).  Ties prefer the left neighbour.
        """
        fen = self._fen
        total = fen.total(_LANE_DUMMY)
        if total == 0:
            return None
        before = fen.prefix(_LANE_DUMMY, position + 1)
        left = fen.select(_LANE_DUMMY, before) if before > 0 else None
        right = fen.select(_LANE_DUMMY, before + 1) if before < total else None
        if left is None:
            return right
        if right is None:
            return left
        left_distance = self.nonempty_between(left, position + 1)
        right_distance = self.nonempty_between(position, right + 1)
        return left if left_distance <= right_distance else right

    # ------------------------------------------------------------------
    # Low-level mutation (records moves, keeps every index consistent)
    # ------------------------------------------------------------------
    def _record(self, element: Hashable, source: int | None, destination: int | None) -> None:
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, source, destination))
            else:
                sink.record(element, source, destination)

    def set_kind(self, position: int, kind: int) -> None:
        """Relabel a slot (free of charge — no element moves)."""
        self._fen.set_mask(position, _KIND_MASKS[kind][self._eid[position] >= 0])

    def put_element(self, position: int, element: Hashable, *, deadweight: bool = False) -> None:
        """Place ``element`` into the empty slot at ``position`` (cost 1)."""
        eids = self._eid
        if eids[position] >= 0:
            raise InvariantViolation(
                f"slot {position} already holds {self._elem_of[eids[position]]!r}"
            )
        eid = self._intern(element)
        eids[position] = eid
        self._pos[eid] = position
        self._fen.set_mask(
            position, (self._masks[position] | _BIT_REAL) & ~_BIT_DUMMY
        )
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, None, position))
            else:
                sink.record(element, None, position)
        if deadweight:
            self._note_deadweight(element)

    def take_element(self, position: int) -> Hashable:
        """Remove and return the element at ``position`` (cost 0)."""
        eids = self._eid
        eid = eids[position]
        if eid < 0:
            raise InvariantViolation(f"slot {position} holds no element")
        element = self._elem_of[eid]
        eids[position] = -1
        self._pos[eid] = -1
        self._elem_of[eid] = None
        del self._id_of[element]
        self._free_ids.append(eid)
        mask = self._masks[position] & ~_BIT_REAL
        if mask & _BIT_NONEMPTY and not mask & _BIT_F:
            mask |= _BIT_DUMMY
        self._fen.set_mask(position, mask)
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, position, None))
            else:
                sink.record(element, position, None)
        return element

    def move_element(self, src: int, dst: int, *, deadweight: bool = False) -> None:
        """Move the element at ``src`` to the element-free slot ``dst`` (cost 1)."""
        if src == dst:
            return
        eids = self._eid
        eid = eids[src]
        if eid < 0:
            raise InvariantViolation(f"slot {src} holds no element")
        if eids[dst] >= 0:
            raise InvariantViolation(f"slot {dst} already holds an element")
        eids[src] = -1
        eids[dst] = eid
        self._pos[eid] = dst
        fen = self._fen
        masks = self._masks
        mask = masks[src] & ~_BIT_REAL
        if mask & _BIT_NONEMPTY and not mask & _BIT_F:
            mask |= _BIT_DUMMY
        fen.set_mask(src, mask)
        fen.set_mask(dst, (masks[dst] | _BIT_REAL) & ~_BIT_DUMMY)
        element = self._elem_of[eid]
        sink = self.move_sink
        if sink is not None:
            if isinstance(sink, list):
                sink.append(Move(element, src, dst))
            else:
                sink.record(element, src, dst)
        if deadweight:
            self._note_deadweight(element)

    def _note_deadweight(self, element: Hashable) -> None:
        self.total_deadweight_moves += 1
        self.deadweight_by_element[element] = (
            self.deadweight_by_element.get(element, 0) + 1
        )

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize_kinds(self, positions_and_kinds: Iterable[tuple[int, int]]) -> None:
        """Bulk-set the slot kinds at construction time (no cost recorded)."""
        for position, kind in positions_and_kinds:
            self.set_kind(position, kind)

    # ------------------------------------------------------------------
    # The R-shell primitive: replay shell moves
    # ------------------------------------------------------------------
    def apply_shell_moves(self, moves: Iterable[Move]) -> int:
        """Replay a move sequence of the R-shell on the physical array.

        The R-shell moves whole *slots*: when it relocates one of its tokens
        from physical position ``src`` to ``dst``, the slot's kind and
        content travel together and ``dst`` must currently be an ``R_EMPTY``
        slot.  Token placements create a fresh ``BUFFER`` slot; token
        removals turn the position back into ``R_EMPTY``.  Returns the number
        of *real element* moves incurred (the embedding's cost for the
        replayed work — dummy and free slots move for free).
        """
        if self._obs_enabled:
            self._obs_shell_moves.inc()
        cost = 0
        lifted: dict[Hashable, tuple[int, Hashable | None]] = {}
        fen = self._fen
        masks = self._masks
        eids = self._eid
        for move in moves:
            if move.is_placement:
                position = move.destination
                if masks[position] & _BIT_NONEMPTY:
                    raise InvariantViolation(
                        f"R-shell placed a token on non-empty slot {position}"
                    )
                if move.element in lifted:
                    # A token the shell removed earlier in this very operation
                    # (remove-and-replace rebalancing): restore its content.
                    kind, element = lifted.pop(move.element)
                    self.set_kind(position, kind)
                    if element is not None:
                        self.put_element(position, element)
                        cost += 1
                else:
                    self.set_kind(position, BUFFER)
                continue
            if move.is_removal:
                position = move.source
                if not masks[position] & _BIT_NONEMPTY:
                    raise InvariantViolation(
                        f"R-shell removed a token from empty slot {position}"
                    )
                kind = _MASK_KIND[masks[position]]
                carried = None if eids[position] < 0 else self._elem_of[eids[position]]
                if carried is not None:
                    # Token removed while carrying an element: the shell is
                    # doing a remove-and-replace rebalance; lift the content
                    # and wait for the matching placement.
                    self.take_element(position)
                lifted[move.element] = (kind, carried)
                self.set_kind(position, R_EMPTY)
                continue
            src, dst = move.source, move.destination
            if masks[dst] & _BIT_NONEMPTY:
                raise InvariantViolation(
                    f"R-shell moved a token onto non-empty slot {dst}"
                )
            kind = _MASK_KIND[masks[src]]
            eid = eids[src]
            if eid >= 0:
                eids[src] = -1
                eids[dst] = eid
                self._pos[eid] = dst
                self._record(self._elem_of[eid], src, dst)
                cost += 1
            fen.set_mask(src, 0)
            fen.set_mask(dst, _KIND_MASKS[kind][eid >= 0])
        return cost

    # ------------------------------------------------------------------
    # The F-emulator primitive: chain moves with deadweight (Figure 2)
    # ------------------------------------------------------------------
    def chain_positions(self, lo: int, hi: int) -> list[int]:
        """Non-``R_EMPTY`` positions in ``[lo, hi]`` in increasing order.

        The seed scanned the whole span unconditionally — ``O(hi - lo)``
        even when it contained a handful of tokens, which dominated chain
        moves across sparse regions.  Here the token count ``k`` is read
        from the Fenwick index first: dense spans (``k log m`` comparable to
        the span) keep the direct slab scan, sparse spans take the
        select-walk at ``O(k log m)``.  Results are identical either way.
        """
        span = hi + 1 - lo
        scan = span <= _CHAIN_SCAN_CUTOFF
        if not scan:
            fen = self._fen
            first = fen.prefix(_LANE_NONEMPTY, lo)
            found = fen.prefix(_LANE_NONEMPTY, hi + 1) - first
            # A select costs ~log m slab reads; the scan costs one read per
            # slot.  Walk only when the span is sparse enough to win.
            scan = found * (max(2, self._m.bit_length()) + 4) >= span
        if scan:
            masks = self._masks
            return [
                position
                for position in range(lo, hi + 1)
                if masks[position] & _BIT_NONEMPTY
            ]
        select = fen.select
        return [
            select(_LANE_NONEMPTY, k) for k in range(first + 1, first + found + 1)
        ]

    def chain_move(self, source: int, target_f_index: int) -> int:
        """Move the element at ``source`` so it occupies F-index ``target_f_index``.

        ``source`` may be an F-slot (a plain F-emulator move) or a buffer
        slot (an incorporation).  The target F-slot must currently be free of
        elements, and every F-slot between the source and the target must be
        element-free as well (the rebuild planner and the fast path only
        generate such moves).  Buffered elements physically in between are
        shifted by one chain position each — the deadweight moves of
        Figure 2 — and slot kinds are relabelled so the element ends up on an
        F-slot that reads at exactly ``target_f_index`` while the R-shell's
        view (which slots are occupied) is unchanged.

        Returns the cost (1 + number of deadweight moves); 0 when the element
        is already in place.
        """
        if self._eid[source] < 0:
            raise InvariantViolation(f"slot {source} holds no element")
        target_pos = self.f_position(target_f_index)
        if target_pos == source:
            return 0
        if self._eid[target_pos] >= 0:
            raise InvariantViolation(
                f"target F-slot {target_f_index} (position {target_pos}) is occupied"
            )
        if self._obs_enabled:
            self._obs_chain_moves.inc()

        # Short dense chains (the steady-state fast-path moves) are cheapest
        # as one direct slab sweep; long chains take the Fenwick-guided path
        # whose cost scales with the tokens and flips found, not the span.
        if source < target_pos:
            if target_pos - source <= _CHAIN_SCAN_CUTOFF:
                return self._chain_move_scan(source, target_pos, True)
            return self._chain_move_right(source, target_pos)
        if source - target_pos <= _CHAIN_SCAN_CUTOFF:
            return self._chain_move_scan(target_pos, source, False)
        return self._chain_move_left(source, target_pos)

    def _chain_move_scan(self, lo: int, hi: int, rightward: bool) -> int:
        """Seed-parity chain move over a short span: one slab sweep collects
        the chain, its elements and the F-label count, then the seed's move
        and relabel logic runs on the materialized chain."""
        masks = self._masks
        eids = self._eid
        chain: list[int] = []
        reals: list[int] = []
        f_count = 0
        for position in range(lo, hi + 1):
            mask = masks[position]
            if mask & _BIT_NONEMPTY:
                chain.append(position)
                if mask & _BIT_F:
                    f_count += 1
                if eids[position] >= 0:
                    reals.append(position)
        cost = 0
        if rightward:
            source = lo
            if reals[0] != source:
                raise InvariantViolation(
                    "chain_move source must be the leftmost element"
                )
            suffix = chain[len(chain) - len(reals):]
            for old, new in zip(reversed(reals), reversed(suffix)):
                if old != new:
                    self.move_element(old, new, deadweight=(old != source))
                    cost += 1
            element_pos = suffix[0]
        else:
            source = hi
            if reals[-1] != source:
                raise InvariantViolation(
                    "chain_move source must be the rightmost element"
                )
            prefix = chain[: len(reals)]
            for old, new in zip(reals, prefix):
                if old != new:
                    self.move_element(old, new, deadweight=(old != source))
                    cost += 1
            element_pos = prefix[-1]
        others = [p for p in chain if p != element_pos]
        if rightward:
            f_positions = set(others[: f_count - 1])
        else:
            f_positions = set(others[len(others) - (f_count - 1):])
        f_positions.add(element_pos)
        flips = 0
        for position in chain:
            desired = F_SLOT if position in f_positions else BUFFER
            if _MASK_KIND[masks[position]] != desired:
                self.set_kind(position, desired)
                flips += 1
        if self._obs_enabled and flips:
            self._obs_relabel_flips.inc(flips)
        return cost

    def _chain_move_right(self, source: int, target_pos: int) -> int:
        fen = self._fen
        lo, hi = source, target_pos
        f_lo, first_ne, first_real = fen.prefix3(
            _LANE_F, _LANE_NONEMPTY, _LANE_REAL, lo
        )
        f_hi, ne_hi, real_hi = fen.prefix3(
            _LANE_F, _LANE_NONEMPTY, _LANE_REAL, hi + 1
        )
        total = ne_hi - first_ne
        count = real_hi - first_real
        f_count = f_hi - f_lo
        select = fen.select
        reals = [
            select(_LANE_REAL, k)
            for k in range(first_real + 1, first_real + count + 1)
        ]
        if reals[0] != source:
            raise InvariantViolation("chain_move source must be the leftmost element")
        # Final layout: prefix of element-free slots, then the moved element,
        # then the buffered (deadweight) elements, each shifted to the last
        # ``count`` chain positions.  The chain itself is never materialized:
        # its suffix is read off the non-empty lane directly.  Execute
        # right-to-left so every move lands on an element-free slot and never
        # crosses another element.  Token positions are stable under
        # move_element, so the selects stay valid throughout.
        suffix = [
            select(_LANE_NONEMPTY, k)
            for k in range(first_ne + total - count + 1, first_ne + total + 1)
        ]
        cost = 0
        for old, new in zip(reversed(reals), reversed(suffix)):
            if old != new:
                self.move_element(old, new, deadweight=(old != source))
                cost += 1
        self._relabel_span(lo, hi, first_ne, total, total - count, f_count, suffix[0], True, suffix)
        return cost

    def _chain_move_left(self, source: int, target_pos: int) -> int:
        fen = self._fen
        lo, hi = target_pos, source
        f_lo, first_ne, first_real = fen.prefix3(
            _LANE_F, _LANE_NONEMPTY, _LANE_REAL, lo
        )
        f_hi, ne_hi, real_hi = fen.prefix3(
            _LANE_F, _LANE_NONEMPTY, _LANE_REAL, hi + 1
        )
        total = ne_hi - first_ne
        count = real_hi - first_real
        f_count = f_hi - f_lo
        select = fen.select
        reals = [
            select(_LANE_REAL, k)
            for k in range(first_real + 1, first_real + count + 1)
        ]
        if reals[-1] != source:
            raise InvariantViolation("chain_move source must be the rightmost element")
        prefix = [
            select(_LANE_NONEMPTY, k)
            for k in range(first_ne + 1, first_ne + count + 1)
        ]
        cost = 0
        for old, new in zip(reals, prefix):
            if old != new:
                self.move_element(old, new, deadweight=(old != source))
                cost += 1
        self._relabel_span(lo, hi, first_ne, total, count - 1, f_count, prefix[-1], False, prefix)
        return cost

    def _relabel_span(
        self,
        lo: int,
        hi: int,
        first_ne: int,
        total: int,
        k_e: int,
        f_count: int,
        element_pos: int,
        element_first: bool,
        occupied: list[int],
    ) -> None:
        """Reassign slot kinds along the chain span after a chain move.

        Semantically identical to the seed's relabel (the moved element's
        position becomes an F-slot; for a rightward move the remaining
        F-labels go to the earliest chain positions, for a leftward move to
        the latest; F-label and buffer counts are preserved so the R-shell's
        occupied set never changes) — but instead of sweeping every chain
        position, the *flips* are enumerated directly: the contiguous
        physical interval that must be all-F is known from the label
        budget, buffer slots inside it come off the dummy lane (after the
        moves every empty buffer slot is a dummy), occupied slots inside it
        are checked against ``occupied`` (the *post-move* element positions
        — the compaction prefix/suffix), and stray F-labels outside it come
        off the F lane.  The work is ``O(flips · log m)`` instead of
        ``O(span)``.
        """
        fen = self._fen
        masks = self._masks
        if element_first:
            if f_count - 1 <= k_e:
                head, extra = f_count - 1, element_pos
            else:
                # Only reachable through the public chain_move API (legal
                # embedding chains keep the deadweight count within the
                # chain's buffer count); exact parity with the reference
                # relabel — the element lands inside the all-F interval.
                head, extra = f_count, None
            f_lo = lo
            f_hi = fen.select(_LANE_NONEMPTY, first_ne + head) if head else lo - 1
            b_lo, b_hi = f_hi + 1, hi
        else:
            last_ne = first_ne + total
            if total - f_count >= k_e:
                tail, extra = f_count - 1, element_pos
            else:
                tail, extra = f_count, None
            f_hi = hi
            f_lo = (
                fen.select(_LANE_NONEMPTY, last_ne - tail + 1)
                if tail
                else hi + 1
            )
            b_lo, b_hi = lo, f_lo - 1
        flips = 0
        if f_lo <= f_hi:
            # Buffer-kind slots inside the all-F interval flip to F: the
            # empty ones are exactly the dummy-lane hits, the occupied ones
            # are checked against the post-move element positions.
            for position in fen.select_range(_LANE_DUMMY, f_lo, f_hi):
                self.set_kind(position, F_SLOT)
                flips += 1
            for position in occupied:
                if f_lo <= position <= f_hi and not masks[position] & _BIT_F:
                    self.set_kind(position, F_SLOT)
                    flips += 1
        if extra is not None and not masks[extra] & _BIT_F:
            self.set_kind(extra, F_SLOT)
            flips += 1
        if b_lo <= b_hi:
            # Stray F-labels outside the interval flip to buffer (the moved
            # element's slot excepted — it just received the target label).
            for position in fen.select_range(_LANE_F, b_lo, b_hi):
                if position != extra:
                    self.set_kind(position, BUFFER)
                    flips += 1
        if self._obs_enabled and flips:
            self._obs_relabel_flips.inc(flips)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self, key: Callable[[Hashable], object] | None = None) -> None:
        """Raise :class:`InvariantViolation` if any structural invariant fails."""
        previous = None
        masks = self._masks
        for position, eid in enumerate(self._eid):
            if eid < 0:
                continue
            element = self._elem_of[eid]
            if not masks[position] & _BIT_NONEMPTY:
                raise InvariantViolation(
                    f"element {element!r} stored in an R-empty slot {position}"
                )
            value = key(element) if key is not None else element
            if previous is not None and not value > previous:
                raise InvariantViolation(
                    f"physical order violated at slot {position}: {value!r} after {previous!r}"
                )
            previous = value
            if self._pos[eid] != position:
                raise InvariantViolation(
                    f"position index out of date for element {element!r}"
                )
            if self._id_of.get(element) != eid:
                raise InvariantViolation(
                    f"interning table out of date for element {element!r}"
                )
            if not masks[position] & _BIT_REAL:
                raise InvariantViolation(
                    f"occupied slot {position} missing from the element index"
                )
