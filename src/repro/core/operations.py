"""Operations, element moves, and per-operation results.

The paper's cost model (Definition 1) charges one unit per *element move*:
whenever an element is written into an array slot different from the one it
currently occupies.  Every algorithm in this library reports the moves it
performs through :class:`OperationResult`, which both drives the cost
accounting in :mod:`repro.core.cost` and lets the embedding of Section 3
replay a fast algorithm's moves on the shared physical array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Sequence

#: Marker for insert operations (``σ`` in the paper's ``x_t = (r, σ)``).
INSERT = "insert"

#: Marker for delete operations.
DELETE = "delete"

_VALID_KINDS = (INSERT, DELETE)


@dataclass(frozen=True)
class Operation:
    """A single list-labeling operation ``x_t = (r, σ)``.

    Parameters
    ----------
    kind:
        Either :data:`INSERT` or :data:`DELETE`.
    rank:
        The 1-based rank at which the operation applies.  An insertion at
        rank ``r`` makes the new element the ``r``-th smallest; a deletion at
        rank ``r`` removes the ``r``-th smallest element.
    key:
        Optional application-level payload carried by an insertion (for
        example a database key).  The list-labeling algorithms never inspect
        it — per Section 2 the elements are black boxes.
    """

    kind: str
    rank: int
    key: Hashable | None = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.rank < 1:
            raise ValueError(f"ranks are 1-based; got {self.rank}")

    @property
    def is_insert(self) -> bool:
        return self.kind == INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind == DELETE

    @staticmethod
    def insert(rank: int, key: Hashable | None = None) -> "Operation":
        """Convenience constructor for an insertion."""
        return Operation(INSERT, rank, key)

    @staticmethod
    def delete(rank: int) -> "Operation":
        """Convenience constructor for a deletion."""
        return Operation(DELETE, rank)


@dataclass(frozen=True)
class Move:
    """One element move performed while serving an operation.

    ``source is None`` records the initial placement of a newly inserted
    element; ``destination is None`` records the removal of a deleted
    element.  Following the paper, placements count one unit of cost and
    removals count zero.
    """

    element: Hashable
    source: int | None
    destination: int | None

    @property
    def is_placement(self) -> bool:
        return self.source is None and self.destination is not None

    @property
    def is_removal(self) -> bool:
        return self.destination is None

    @property
    def cost(self) -> int:
        """Cost of this move under the paper's element-move metric."""
        if self.is_removal:
            return 0
        if self.source == self.destination:
            return 0
        return 1


@dataclass
class OperationResult:
    """The outcome of a single insert/delete on a list-labeling structure."""

    operation: Operation
    moves: list[Move] = field(default_factory=list)

    @property
    def cost(self) -> int:
        """Total element-move cost of the operation."""
        return sum(move.cost for move in self.moves)

    def moved_elements(self) -> list[Hashable]:
        """Elements that physically moved (or were placed), in move order."""
        return [move.element for move in self.moves if move.cost > 0]

    def extend(self, moves: Iterable[Move]) -> None:
        """Append additional moves (used by composite structures)."""
        self.moves.extend(moves)

    def __iter__(self) -> Iterator[Move]:
        return iter(self.moves)


def total_cost(results: Sequence[OperationResult]) -> int:
    """Sum of costs over a sequence of operation results."""
    return sum(result.cost for result in results)


@dataclass
class BatchResult:
    """The outcome of one ``insert_batch`` / ``delete_batch`` call.

    ``count`` is the number of *logical* operations the batch contained;
    ``results`` holds the physical work performed.  A loop fallback produces
    one :class:`OperationResult` per logical operation, while an optimized
    implementation that services the whole batch with a single merged pass
    may report fewer results than operations — only the totals are
    comparable across implementations.
    """

    count: int
    results: list[OperationResult] = field(default_factory=list)

    @property
    def cost(self) -> int:
        """Total element-move cost of the whole batch."""
        return sum(result.cost for result in self.results)

    @property
    def amortized(self) -> float:
        """Average element-move cost per logical operation of the batch."""
        return self.cost / self.count if self.count else 0.0

    @property
    def moves(self) -> list[Move]:
        """All moves performed while serving the batch, in execution order."""
        return [move for result in self.results for move in result.moves]

    def moved_elements(self) -> list[Hashable]:
        """Elements that physically moved (or were placed), in move order."""
        return [move.element for move in self.moves if move.cost > 0]

    def __iter__(self) -> Iterator[OperationResult]:
        return iter(self.results)
