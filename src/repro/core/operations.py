"""Operations, element moves, and per-operation results.

The paper's cost model (Definition 1) charges one unit per *element move*:
whenever an element is written into an array slot different from the one it
currently occupies.  Every algorithm in this library reports the moves it
performs through :class:`OperationResult`, which both drives the cost
accounting in :mod:`repro.core.cost` and lets the embedding of Section 3
replay a fast algorithm's moves on the shared physical array.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Sequence

#: Marker for insert operations (``σ`` in the paper's ``x_t = (r, σ)``).
INSERT = "insert"

#: Marker for delete operations.
DELETE = "delete"

#: Key-addressed point read: find the label/rank of a stored element.  The
#: rank names which element is probed; the runner resolves it to a key and
#: routes the read through ``slot_of``/``rank_of`` (the routing-index path).
LOOKUP = "lookup"

#: Rank-addressed point read (select-kth): return the ``rank``-th element.
SELECT = "select"

#: Streaming read of the elements with ranks in ``[rank, end_rank]``.
RANGE = "range"

#: Count of the stored elements with ranks in ``[rank, end_rank]``, served
#: through the occupancy indexes (a Fenwick slot-window count).
COUNT_RANGE = "count_range"

#: The query (side-effect-free) operation kinds.
READ_KINDS = frozenset({LOOKUP, SELECT, RANGE, COUNT_RANGE})

#: Kinds whose addressing is a rank *interval* rather than a single rank.
_SPAN_KINDS = (RANGE, COUNT_RANGE)

_VALID_KINDS = (INSERT, DELETE, LOOKUP, SELECT, RANGE, COUNT_RANGE)


@dataclass(frozen=True)
class Operation:
    """A single list-labeling operation ``x_t = (r, σ)``.

    Parameters
    ----------
    kind:
        One of :data:`INSERT`, :data:`DELETE` (the mutating kinds of
        Definition 1) or the read kinds :data:`LOOKUP`, :data:`SELECT`,
        :data:`RANGE`, :data:`COUNT_RANGE` (the query surface the labels
        exist to serve).
    rank:
        The 1-based rank at which the operation applies.  An insertion at
        rank ``r`` makes the new element the ``r``-th smallest; a deletion at
        rank ``r`` removes the ``r``-th smallest element; a read at rank
        ``r`` addresses the ``r``-th smallest element (the *first* one, for
        the interval kinds).
    key:
        Optional application-level payload carried by an insertion (for
        example a database key).  The list-labeling algorithms never inspect
        it — per Section 2 the elements are black boxes.
    end_rank:
        Last rank (inclusive) of a :data:`RANGE` / :data:`COUNT_RANGE`
        interval; required for those kinds, disallowed for all others.
    """

    kind: str
    rank: int
    key: Hashable | None = None
    end_rank: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.rank < 1:
            raise ValueError(f"ranks are 1-based; got {self.rank}")
        if self.kind in _SPAN_KINDS:
            if self.end_rank is None:
                raise ValueError(f"{self.kind} operations need an end_rank")
            if self.end_rank < self.rank:
                raise ValueError(
                    f"end_rank {self.end_rank} precedes rank {self.rank}"
                )
        elif self.end_rank is not None:
            raise ValueError(f"{self.kind} operations carry no end_rank")

    @property
    def is_insert(self) -> bool:
        return self.kind == INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind == DELETE

    @property
    def is_read(self) -> bool:
        """True for the side-effect-free query kinds."""
        return self.kind in READ_KINDS

    @property
    def is_write(self) -> bool:
        return self.kind == INSERT or self.kind == DELETE

    @property
    def span(self) -> int:
        """Number of ranks an interval read addresses (1 for point kinds)."""
        if self.end_rank is None:
            return 1
        return self.end_rank - self.rank + 1

    @staticmethod
    def insert(rank: int, key: Hashable | None = None) -> "Operation":
        """Convenience constructor for an insertion."""
        return Operation(INSERT, rank, key)

    @staticmethod
    def delete(rank: int) -> "Operation":
        """Convenience constructor for a deletion."""
        return Operation(DELETE, rank)

    @staticmethod
    def lookup(rank: int, key: Hashable | None = None) -> "Operation":
        """A key-addressed point lookup of the ``rank``-th element."""
        return Operation(LOOKUP, rank, key)

    @staticmethod
    def select(rank: int) -> "Operation":
        """A rank-addressed point read (select-kth)."""
        return Operation(SELECT, rank)

    @staticmethod
    def range(rank: int, end_rank: int) -> "Operation":
        """A streaming read of ranks ``[rank, end_rank]``."""
        return Operation(RANGE, rank, None, end_rank)

    @staticmethod
    def count_range(rank: int, end_rank: int) -> "Operation":
        """A count of the stored elements with ranks in ``[rank, end_rank]``."""
        return Operation(COUNT_RANGE, rank, None, end_rank)


@dataclass(frozen=True)
class Move:
    """One element move performed while serving an operation.

    ``source is None`` records the initial placement of a newly inserted
    element; ``destination is None`` records the removal of a deleted
    element.  Following the paper, placements count one unit of cost and
    removals count zero.
    """

    element: Hashable
    source: int | None
    destination: int | None

    @property
    def is_placement(self) -> bool:
        return self.source is None and self.destination is not None

    @property
    def is_removal(self) -> bool:
        return self.destination is None

    @property
    def cost(self) -> int:
        """Cost of this move under the paper's element-move metric."""
        if self.is_removal:
            return 0
        if self.source == self.destination:
            return 0
        return 1


class MoveRecorder:
    """An append-only, allocation-free move log (the fast-path ``move_sink``).

    The paper's cost metric only needs the *count* of element moves, yet the
    seed implementation materialized one frozen :class:`Move` dataclass per
    move even on paths where nobody ever reads the log.  The recorder stores
    the raw ``(element, source, destination)`` triple in parallel slabs — a
    plain object list plus two ``array('q')`` columns with ``-1`` standing in
    for ``None`` — and keeps :attr:`total_cost` incrementally, so recording a
    move is three appends and an integer add.

    The :class:`Move` API is preserved for tests and analysis: iterating,
    indexing or comparing a recorder materializes `Move` objects on demand,
    so any consumer written against ``list[Move]`` keeps working.
    """

    __slots__ = ("_elements", "_sources", "_destinations", "total_cost")

    def __init__(self) -> None:
        self._elements: list[Hashable] = []
        self._sources = array("q")
        self._destinations = array("q")
        #: Element-move cost of everything recorded so far (Definition 1).
        self.total_cost = 0

    def record(
        self, element: Hashable, source: int | None, destination: int | None
    ) -> None:
        """Record one move given as raw coordinates (``None`` = off-array)."""
        self._elements.append(element)
        self._sources.append(-1 if source is None else source)
        self._destinations.append(-1 if destination is None else destination)
        if destination is not None and source != destination:
            self.total_cost += 1

    def append(self, move: Move) -> None:
        """Accept a materialized :class:`Move` (list-API compatibility)."""
        self.record(move.element, move.source, move.destination)

    def extend(self, moves: Iterable[Move]) -> None:
        for move in moves:
            self.record(move.element, move.source, move.destination)

    def clear(self) -> None:
        self._elements.clear()
        del self._sources[:]
        del self._destinations[:]
        self.total_cost = 0

    def __len__(self) -> int:
        return len(self._elements)

    def __bool__(self) -> bool:
        return bool(self._elements)

    def __iter__(self) -> Iterator[Move]:
        for element, source, destination in zip(
            self._elements, self._sources, self._destinations
        ):
            yield Move(
                element,
                None if source < 0 else source,
                None if destination < 0 else destination,
            )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        source = self._sources[index]
        destination = self._destinations[index]
        return Move(
            self._elements[index],
            None if source < 0 else source,
            None if destination < 0 else destination,
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (MoveRecorder, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def moves(self) -> list[Move]:
        """Materialize the log as a plain list of :class:`Move` objects."""
        return list(self)

    def triples(self) -> list[tuple[Hashable, int | None, int | None]]:
        """The raw log as ``(element, source, destination)`` tuples."""
        return [
            (
                element,
                None if source < 0 else source,
                None if destination < 0 else destination,
            )
            for element, source, destination in zip(
                self._elements, self._sources, self._destinations
            )
        ]

    def moved_elements(self) -> list[Hashable]:
        """Elements that physically moved (or were placed), in move order."""
        return [
            element
            for element, source, destination in zip(
                self._elements, self._sources, self._destinations
            )
            if destination >= 0 and source != destination
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MoveRecorder(moves={len(self)}, total_cost={self.total_cost})"


def move_triples(moves: Iterable[Move]) -> list[tuple[Hashable, int | None, int | None]]:
    """Normalize any move log to ``(element, source, destination)`` tuples.

    The differential suite compares move logs across physical-array
    implementations; this helper gives both the list-of-:class:`Move` and the
    :class:`MoveRecorder` representations a common comparable form.
    """
    if isinstance(moves, MoveRecorder):
        return moves.triples()
    return [(move.element, move.source, move.destination) for move in moves]


@dataclass
class OperationResult:
    """The outcome of a single insert/delete on a list-labeling structure.

    ``moves`` is either a plain ``list[Move]`` or a :class:`MoveRecorder`;
    the recorder keeps its cost pre-aggregated, so :attr:`cost` is ``O(1)``
    on the fast path instead of a sum over materialized moves.
    """

    operation: Operation
    moves: list[Move] | MoveRecorder = field(default_factory=list)

    @property
    def cost(self) -> int:
        """Total element-move cost of the operation."""
        moves = self.moves
        total = getattr(moves, "total_cost", None)
        if total is not None:
            return total
        return sum(move.cost for move in moves)

    def moved_elements(self) -> list[Hashable]:
        """Elements that physically moved (or were placed), in move order."""
        moves = self.moves
        if isinstance(moves, MoveRecorder):
            return moves.moved_elements()
        return [move.element for move in moves if move.cost > 0]

    def extend(self, moves: Iterable[Move]) -> None:
        """Append additional moves (used by composite structures)."""
        self.moves.extend(moves)

    def __iter__(self) -> Iterator[Move]:
        return iter(self.moves)


def total_cost(results: Sequence[OperationResult]) -> int:
    """Sum of costs over a sequence of operation results."""
    return sum(result.cost for result in results)


@dataclass
class BatchResult:
    """The outcome of one ``insert_batch`` / ``delete_batch`` call.

    ``count`` is the number of *logical* operations the batch contained;
    ``results`` holds the physical work performed.  A loop fallback produces
    one :class:`OperationResult` per logical operation, while an optimized
    implementation that services the whole batch with a single merged pass
    may report fewer results than operations — only the totals are
    comparable across implementations.
    """

    count: int
    results: list[OperationResult] = field(default_factory=list)

    @property
    def cost(self) -> int:
        """Total element-move cost of the whole batch."""
        return sum(result.cost for result in self.results)

    @property
    def amortized(self) -> float:
        """Average element-move cost per logical operation of the batch."""
        return self.cost / self.count if self.count else 0.0

    @property
    def moves(self) -> list[Move]:
        """All moves performed while serving the batch, in execution order."""
        return [move for result in self.results for move in result.moves]

    def moved_elements(self) -> list[Hashable]:
        """Elements that physically moved (or were placed), in move order."""
        return [move.element for move in self.moves if move.cost > 0]

    def __iter__(self) -> Iterator[OperationResult]:
        return iter(self.results)
