"""Layered compositions: Theorem 3 and Corollaries 11–12.

Theorem 2 builds one embedding ``F ⊳ R``; Theorem 3 observes that the
construction composes — given three algorithms ``X`` (adaptive guarantee),
``Y`` (expected-cost guarantee) and ``Z`` (worst-case guarantee), the
doubly-layered structure ``X ⊳ (Y ⊳ Z)`` achieves all three simultaneously.
This module provides:

* :func:`embedding_factory` — turn an existing ``(F, R)`` pair of factories
  into a factory usable as the reliable side of an *outer* embedding, which
  is exactly how the theorem is applied twice;
* :class:`LayeredLabeler` — the ``X ⊳ (Y ⊳ Z)`` structure;
* :func:`make_corollary11_labeler` — the concrete instantiation of
  Corollary 11 (adaptive PMA ⊳ (randomized PMA ⊳ deamortized PMA));
* :func:`make_corollary12_labeler` — the learning-augmented instantiation of
  Corollary 12 (learned labeler ⊳ (randomized PMA ⊳ deamortized PMA)).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.algorithms.adaptive import AdaptivePMA
from repro.algorithms.deamortized import DeamortizedPMA
from repro.algorithms.learned import LearnedLabeler
from repro.algorithms.predictions import RankPredictor
from repro.algorithms.randomized import RandomizedPMA
from repro.core.embedding import Embedding, LabelerFactory


def embedding_factory(
    fast_factory: LabelerFactory,
    reliable_factory: LabelerFactory,
    *,
    reliable_expected_cost: int | None = None,
    rebuild_work_factor: float = 1.0,
    physical_backend: str | None = None,
) -> LabelerFactory:
    """A factory producing ``F ⊳ R`` instances sized by the caller.

    The returned callable has the ``(capacity, num_slots)`` signature every
    component factory uses, so the embedding it builds can in turn serve as
    the reliable algorithm of an outer embedding (the double application of
    Theorem 2 that proves Theorem 3).  ``physical_backend`` selects the
    physical-array implementation of every embedding built (see
    :mod:`repro.core.physical_backends`).
    """

    def build(capacity: int, num_slots: int) -> Embedding:
        return Embedding(
            capacity,
            fast_factory,
            reliable_factory,
            num_slots=num_slots,
            reliable_expected_cost=reliable_expected_cost,
            rebuild_work_factor=rebuild_work_factor,
            physical_backend=physical_backend,
        )

    return build


class LayeredLabeler(Embedding):
    """The triple composition ``X ⊳ (Y ⊳ Z)`` of Theorem 3.

    ``X`` should carry an input-adaptive amortized guarantee, ``Y`` an
    expected-cost guarantee on any input, and ``Z`` a worst-case guarantee;
    the layered structure then enjoys all three (Theorem 3), which experiment
    E-TRIPLE verifies empirically.
    """

    def __init__(
        self,
        capacity: int,
        adaptive_factory: LabelerFactory,
        expected_factory: LabelerFactory,
        worst_case_factory: LabelerFactory,
        *,
        epsilon: float = 0.4,
        expected_cost_bound: int | None = None,
        worst_case_cost_bound: int | None = None,
        rebuild_work_factor: float = 1.0,
        physical_backend: str | None = None,
    ) -> None:
        if expected_cost_bound is None:
            # Y's guarantee: the O(log^{3/2} n) bound of [8].
            log = math.log2(max(4, capacity))
            expected_cost_bound = max(4, int(math.ceil(log**1.5)))
        if worst_case_cost_bound is None:
            # Z's guarantee: the O(log² n) bound of [49].
            log = math.log2(max(4, capacity))
            worst_case_cost_bound = max(4, int(math.ceil(log * log)))
        inner = embedding_factory(
            expected_factory,
            worst_case_factory,
            reliable_expected_cost=worst_case_cost_bound,
            rebuild_work_factor=rebuild_work_factor,
            physical_backend=physical_backend,
        )
        super().__init__(
            capacity,
            adaptive_factory,
            inner,
            epsilon=epsilon,
            reliable_expected_cost=expected_cost_bound,
            rebuild_work_factor=rebuild_work_factor,
            physical_backend=physical_backend,
        )

    @property
    def inner_embedding(self) -> Embedding:
        """The inner ``Y ⊳ Z`` embedding (the outer structure's R-shell)."""
        reliable = self.shell.reliable
        assert isinstance(reliable, Embedding)
        return reliable


def corollary11_worst_case_bound(capacity: int) -> int:
    """Per-operation worst-case envelope of the Corollary 11 structure.

    Derived from the structure's own constants instead of an eyeballed
    fraction of ``n``: a slow-path operation performs at most two token
    operations on the inner ``Y ⊳ Z`` embedding — each bounded by the inner
    rebuild budget plus one finish step (``≤ 2·E_Z``) plus the deamortized
    shell's own ``O(log² n)`` rebalance (``≤ E_Z``) — and the outer rebuild
    budget plus its finish step (``≤ 2·E_Y``).  With ``E_Z = ⌈log² n⌉``
    (Willard's worst-case bound) and ``E_Y = ⌈log^{3/2} n⌉`` (the expected
    bound of [8]) that totals ``6·E_Z + 2·E_Y``; a further ×4/3 margin
    absorbs the small-``n`` constants observed empirically across seeds.
    The bound is ``Θ(log² n)`` — genuinely ``o(n)`` — so the benchmark's
    "worst case never approaches n" claim is checked against a quantity
    that tightens, not loosens, as ``n`` grows.
    """
    log = math.log2(max(4, capacity))
    e_z = math.ceil(log * log)
    e_y = math.ceil(log**1.5)
    return math.ceil((6 * e_z + 2 * e_y) * 4 / 3)


def make_corollary11_labeler(
    capacity: int,
    *,
    seed: int | None = None,
    epsilon: float = 0.4,
    rebuild_work_factor: float = 1.0,
    physical_backend: str | None = None,
) -> LayeredLabeler:
    """The Corollary 11 structure: adaptive ⊳ (randomized ⊳ deamortized).

    * ``X`` = :class:`AdaptivePMA` — amortized ``O(log n)`` on hammer-insert
      workloads (the algorithm of [18]);
    * ``Y`` = :class:`RandomizedPMA` — the expected-cost algorithm (stand-in
      for [8]);
    * ``Z`` = :class:`DeamortizedPMA` — the worst-case algorithm (stand-in
      for [49]).
    """
    return LayeredLabeler(
        capacity,
        adaptive_factory=lambda cap, slots: AdaptivePMA(cap, slots),
        expected_factory=lambda cap, slots: RandomizedPMA(cap, slots, seed=seed),
        worst_case_factory=lambda cap, slots: DeamortizedPMA(cap, slots),
        epsilon=epsilon,
        rebuild_work_factor=rebuild_work_factor,
        physical_backend=physical_backend,
    )


def make_corollary12_labeler(
    capacity: int,
    predictor: RankPredictor,
    *,
    seed: int | None = None,
    epsilon: float = 0.4,
    rebuild_work_factor: float = 1.0,
    physical_backend: str | None = None,
) -> LayeredLabeler:
    """The Corollary 12 structure: learned ⊳ (randomized ⊳ deamortized).

    ``X`` is the learning-augmented labeler of [35] equipped with the given
    rank ``predictor``; ``Y`` and ``Z`` are as in Corollary 11.  The layered
    structure keeps the ``O(log² η)`` good-case cost of ``X`` while capping
    the damage of bad predictions at ``Y``/``Z``'s input-independent bounds.
    """
    return LayeredLabeler(
        capacity,
        adaptive_factory=lambda cap, slots: LearnedLabeler(
            cap, slots, predictor=predictor
        ),
        expected_factory=lambda cap, slots: RandomizedPMA(cap, slots, seed=seed),
        worst_case_factory=lambda cap, slots: DeamortizedPMA(cap, slots),
        epsilon=epsilon,
        rebuild_work_factor=rebuild_work_factor,
        physical_backend=physical_backend,
    )
