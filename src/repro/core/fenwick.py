"""A Fenwick (binary indexed) tree over slot occupancy.

Every array-based list-labeling algorithm in this library needs two
primitives that are awkward on a plain Python list:

* ``count(lo, hi)`` — how many occupied slots lie in ``[lo, hi)``;
* ``select(k)`` — the position of the ``k``-th occupied slot (1-based).

Both are ``O(log m)`` with a Fenwick tree, which keeps the pure-Python
implementations fast enough to run the paper's experiments at
``n`` up to a few hundred thousand elements.

The tree also supports general non-negative integer weights via
:meth:`FenwickTree.add`: position ``i`` may hold any count, ``prefix`` sums
counts, and ``select(k)`` finds the position containing the ``k``-th unit.
This is what the shard directory of :class:`repro.core.sharded.ShardedLabeler`
uses — one position per shard holding that shard's element count, so a
global rank routes to its shard in ``O(log K)``.  The 0/1 :meth:`set` /
:meth:`rank_of` occupancy API is unchanged and keeps its strict validation.
"""

from __future__ import annotations


class FenwickTree:
    """Fenwick tree over a fixed-size vector of non-negative counts.

    The common use is as a 0/1 occupancy vector (:meth:`set`); the weighted
    :meth:`add` API generalizes it to arbitrary non-negative counts.
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._tree = [0] * (size + 1)
        self._values = [0] * size
        # Highest power of two <= size, used by the select binary lift.
        self._top_bit = 1
        while self._top_bit * 2 <= size:
            self._top_bit *= 2

    @classmethod
    def from_values(cls, values: "list[int]") -> "FenwickTree":
        """Build a tree over ``values`` in ``O(size)`` (vs ``O(size log size)``
        via repeated :meth:`add`) — the shard directory rebuilds through
        this on every split/merge."""
        tree = cls(len(values))
        for value in values:
            if value < 0:
                raise ValueError("counts must be non-negative")
        tree._values = list(values)
        table = tree._tree
        for i in range(1, tree._size + 1):
            table[i] += values[i - 1]
            parent = i + (i & (-i))
            if parent <= tree._size:
                table[parent] += table[i]
        return tree

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def value(self, index: int) -> int:
        """Current count at ``index`` (0 or 1 under the occupancy API)."""
        return self._values[index]

    def set(self, index: int, value: int) -> None:
        """Set position ``index`` to ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise ValueError("occupancy values must be 0 or 1")
        self._apply_delta(index, value - self._values[index])

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the count at ``index`` (weighted API).

        The resulting count must stay non-negative; ``select``/``prefix``
        then operate over units rather than occupied slots.
        """
        if self._values[index] + delta < 0:
            raise ValueError(
                f"count at {index} would become negative "
                f"({self._values[index]} + {delta})"
            )
        self._apply_delta(index, delta)

    def _apply_delta(self, index: int, delta: int) -> None:
        if delta == 0:
            return
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range (size {self._size})")
        self._values[index] += delta
        tree = self._tree
        i = index + 1
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    # ------------------------------------------------------------------
    def prefix(self, end: int) -> int:
        """Number of occupied slots in ``[0, end)``."""
        total = 0
        tree = self._tree
        i = end
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def count(self, lo: int, hi: int) -> int:
        """Number of occupied slots in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.prefix(hi) - self.prefix(lo)

    @property
    def total(self) -> int:
        """Total number of units (= occupied slots under the 0/1 API)."""
        return self.prefix(self._size)

    # ------------------------------------------------------------------
    def select(self, k: int) -> int:
        """Position of the ``k``-th (1-based) occupied slot.

        Under the weighted API this is the position whose count contains the
        ``k``-th unit, i.e. the smallest ``p`` with ``prefix(p + 1) >= k`` —
        exactly the rank→shard lookup the shard directory needs.

        Raises :class:`IndexError` when fewer than ``k`` units are stored.
        """
        if k < 1 or k > self.total:
            raise IndexError(f"select({k}) out of range (total={self.total})")
        position = 0
        remaining = k
        bit = self._top_bit
        tree = self._tree
        while bit:
            nxt = position + bit
            if nxt <= self._size and tree[nxt] < remaining:
                position = nxt
                remaining -= tree[nxt]
            bit >>= 1
        return position  # 0-based index of the k-th occupied slot

    def rank_of(self, index: int) -> int:
        """1-based rank of the occupied slot at ``index``.

        Raises :class:`ValueError` when the slot is not occupied.
        """
        if self._values[index] != 1:
            raise ValueError(f"slot {index} is not occupied")
        return self.prefix(index) + 1
