"""A Fenwick (binary indexed) tree over slot occupancy.

Every array-based list-labeling algorithm in this library needs two
primitives that are awkward on a plain Python list:

* ``count(lo, hi)`` — how many occupied slots lie in ``[lo, hi)``;
* ``select(k)`` — the position of the ``k``-th occupied slot (1-based).

Both are ``O(log m)`` with a Fenwick tree, which keeps the pure-Python
implementations fast enough to run the paper's experiments at
``n`` up to a few hundred thousand elements.
"""

from __future__ import annotations


class FenwickTree:
    """Fenwick tree over a fixed-size 0/1 occupancy vector."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._tree = [0] * (size + 1)
        self._values = [0] * size
        # Highest power of two <= size, used by the select binary lift.
        self._top_bit = 1
        while self._top_bit * 2 <= size:
            self._top_bit *= 2

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def value(self, index: int) -> int:
        """Current 0/1 value at ``index``."""
        return self._values[index]

    def set(self, index: int, value: int) -> None:
        """Set position ``index`` to ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise ValueError("occupancy values must be 0 or 1")
        delta = value - self._values[index]
        if delta == 0:
            return
        self._values[index] = value
        tree = self._tree
        i = index + 1
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    # ------------------------------------------------------------------
    def prefix(self, end: int) -> int:
        """Number of occupied slots in ``[0, end)``."""
        total = 0
        tree = self._tree
        i = end
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def count(self, lo: int, hi: int) -> int:
        """Number of occupied slots in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.prefix(hi) - self.prefix(lo)

    @property
    def total(self) -> int:
        """Total number of occupied slots."""
        return self.prefix(self._size)

    # ------------------------------------------------------------------
    def select(self, k: int) -> int:
        """Position of the ``k``-th (1-based) occupied slot.

        Raises :class:`IndexError` when fewer than ``k`` slots are occupied.
        """
        if k < 1 or k > self.total:
            raise IndexError(f"select({k}) out of range (total={self.total})")
        position = 0
        remaining = k
        bit = self._top_bit
        tree = self._tree
        while bit:
            nxt = position + bit
            if nxt <= self._size and tree[nxt] < remaining:
                position = nxt
                remaining -= tree[nxt]
            bit >>= 1
        return position  # 0-based index of the k-th occupied slot

    def rank_of(self, index: int) -> int:
        """1-based rank of the occupied slot at ``index``.

        Raises :class:`ValueError` when the slot is not occupied.
        """
        if self._values[index] != 1:
            raise ValueError(f"slot {index} is not occupied")
        return self.prefix(index) + 1
