"""A Fenwick (binary indexed) tree over slot occupancy.

Every array-based list-labeling algorithm in this library needs two
primitives that are awkward on a plain Python list:

* ``count(lo, hi)`` — how many occupied slots lie in ``[lo, hi)``;
* ``select(k)`` — the position of the ``k``-th occupied slot (1-based).

Both are ``O(log m)`` with a Fenwick tree, which keeps the pure-Python
implementations fast enough to run the paper's experiments at
``n`` up to a few hundred thousand elements.

The tree also supports general non-negative integer weights via
:meth:`FenwickTree.add`: position ``i`` may hold any count, ``prefix`` sums
counts, and ``select(k)`` finds the position containing the ``k``-th unit.
This is what the shard directory of :class:`repro.core.sharded.ShardedLabeler`
uses — one position per shard holding that shard's element count, so a
global rank routes to its shard in ``O(log K)``.  The 0/1 :meth:`set` /
:meth:`rank_of` occupancy API is unchanged and keeps its strict validation.
"""

from __future__ import annotations

from array import array


class FenwickTree:
    """Fenwick tree over a fixed-size vector of non-negative counts.

    The common use is as a 0/1 occupancy vector (:meth:`set`); the weighted
    :meth:`add` API generalizes it to arbitrary non-negative counts.
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._tree = [0] * (size + 1)
        self._values = [0] * size
        # Highest power of two <= size, used by the select binary lift.
        self._top_bit = 1
        while self._top_bit * 2 <= size:
            self._top_bit *= 2

    @classmethod
    def from_values(cls, values: "list[int]") -> "FenwickTree":
        """Build a tree over ``values`` in ``O(size)`` (vs ``O(size log size)``
        via repeated :meth:`add`) — the shard directory rebuilds through
        this on every split/merge."""
        tree = cls(len(values))
        for value in values:
            if value < 0:
                raise ValueError("counts must be non-negative")
        tree._values = list(values)
        table = tree._tree
        for i in range(1, tree._size + 1):
            table[i] += values[i - 1]
            parent = i + (i & (-i))
            if parent <= tree._size:
                table[parent] += table[i]
        return tree

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def value(self, index: int) -> int:
        """Current count at ``index`` (0 or 1 under the occupancy API)."""
        return self._values[index]

    def set(self, index: int, value: int) -> None:
        """Set position ``index`` to ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise ValueError("occupancy values must be 0 or 1")
        self._apply_delta(index, value - self._values[index])

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the count at ``index`` (weighted API).

        The resulting count must stay non-negative; ``select``/``prefix``
        then operate over units rather than occupied slots.
        """
        if self._values[index] + delta < 0:
            raise ValueError(
                f"count at {index} would become negative "
                f"({self._values[index]} + {delta})"
            )
        self._apply_delta(index, delta)

    def _apply_delta(self, index: int, delta: int) -> None:
        if delta == 0:
            return
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range (size {self._size})")
        self._values[index] += delta
        tree = self._tree
        i = index + 1
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    # ------------------------------------------------------------------
    def prefix(self, end: int) -> int:
        """Number of occupied slots in ``[0, end)``."""
        total = 0
        tree = self._tree
        i = end
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def count(self, lo: int, hi: int) -> int:
        """Number of occupied slots in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.prefix(hi) - self.prefix(lo)

    @property
    def total(self) -> int:
        """Total number of units (= occupied slots under the 0/1 API)."""
        return self.prefix(self._size)

    # ------------------------------------------------------------------
    def select(self, k: int) -> int:
        """Position of the ``k``-th (1-based) occupied slot.

        Under the weighted API this is the position whose count contains the
        ``k``-th unit, i.e. the smallest ``p`` with ``prefix(p + 1) >= k`` —
        exactly the rank→shard lookup the shard directory needs.

        Raises :class:`IndexError` when fewer than ``k`` units are stored.
        """
        if k < 1 or k > self.total:
            raise IndexError(f"select({k}) out of range (total={self.total})")
        position = 0
        remaining = k
        bit = self._top_bit
        tree = self._tree
        while bit:
            nxt = position + bit
            if nxt <= self._size and tree[nxt] < remaining:
                position = nxt
                remaining -= tree[nxt]
            bit >>= 1
        return position  # 0-based index of the k-th occupied slot

    def rank_of(self, index: int) -> int:
        """1-based rank of the occupied slot at ``index``.

        Raises :class:`ValueError` when the slot is not occupied.
        """
        if self._values[index] != 1:
            raise ValueError(f"slot {index} is not occupied")
        return self.prefix(index) + 1


class PackedFenwick:
    """Several 0/1 Fenwick trees over one packed per-slot bitmask.

    The embedding's physical array maintains four occupancy views of the
    same slot vector (F-slots, non-empty slots, stored elements, dummy
    buffers).  Refreshing them as four independent :class:`FenwickTree`\\ s
    costs four tree walks per mutation; this structure stores the per-slot
    state as one bitmask in an ``array('B')`` slab and keeps one ``array('q')``
    Fenwick table per bit ("lane"), so a state change performs a *single*
    index walk that applies the deltas of every changed lane at once.

    Lanes are addressed by index; per-lane totals are maintained
    incrementally so :meth:`total` is ``O(1)``.
    """

    __slots__ = ("_size", "_lanes", "_masks", "_trees", "_totals", "_top_bit")

    def __init__(self, size: int, lanes: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        if not 1 <= lanes <= 8:
            raise ValueError("lanes must lie in [1, 8] (one bit per lane)")
        self._size = size
        self._lanes = lanes
        self._masks = array("B", bytes(size))
        self._trees = [array("q", bytes(8 * (size + 1))) for _ in range(lanes)]
        self._totals = [0] * lanes
        self._top_bit = 1
        while self._top_bit * 2 <= size:
            self._top_bit *= 2

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    @property
    def lanes(self) -> int:
        return self._lanes

    def mask(self, position: int) -> int:
        """Current packed state bits of ``position``."""
        return self._masks[position]

    def masks(self) -> array:
        """The raw per-slot bitmask slab (read-only use)."""
        return self._masks

    def set_mask(self, position: int, mask: int) -> None:
        """Set the packed state of ``position``, updating every changed lane
        with one combined tree walk.

        The one- and two-lane cases (the steady-state mutations: an element
        placed, taken, or moved) are unrolled into allocation-free walks;
        only kind relabels touching three or more lanes take the generic
        loop.
        """
        masks = self._masks
        old = masks[position]
        changed = old ^ mask
        if not changed:
            return
        if mask >> self._lanes:
            raise ValueError(f"mask {mask:#x} has bits beyond lane {self._lanes - 1}")
        masks[position] = mask
        totals = self._totals
        trees = self._trees
        size = self._size
        index = position + 1

        bit1 = changed & (-changed)
        rest = changed - bit1
        lane1 = bit1.bit_length() - 1
        delta1 = 1 if mask & bit1 else -1
        totals[lane1] += delta1
        tree1 = trees[lane1]
        if not rest:
            while index <= size:
                tree1[index] += delta1
                index += index & (-index)
            return

        bit2 = rest & (-rest)
        rest -= bit2
        lane2 = bit2.bit_length() - 1
        delta2 = 1 if mask & bit2 else -1
        totals[lane2] += delta2
        tree2 = trees[lane2]
        if not rest:
            while index <= size:
                tree1[index] += delta1
                tree2[index] += delta2
                index += index & (-index)
            return

        updates = [(tree1, delta1), (tree2, delta2)]
        while rest:
            bit = rest & (-rest)
            rest -= bit
            lane = bit.bit_length() - 1
            delta = 1 if mask & bit else -1
            totals[lane] += delta
            updates.append((trees[lane], delta))
        while index <= size:
            for tree, delta in updates:
                tree[index] += delta
            index += index & (-index)

    # ------------------------------------------------------------------
    def prefix(self, lane: int, end: int) -> int:
        """Number of slots with the lane bit set in ``[0, end)``."""
        total = 0
        tree = self._trees[lane]
        index = end
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total

    def count(self, lane: int, lo: int, hi: int) -> int:
        """Number of slots with the lane bit set in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.prefix(lane, hi) - self.prefix(lane, lo)

    def prefix3(self, lane_a: int, lane_b: int, lane_c: int, end: int) -> tuple[int, int, int]:
        """Three lane prefixes of ``[0, end)`` in a single combined walk.

        The walk indexes are lane-independent, so reading three trees in
        one traversal costs one walk instead of three — the chain-move hot
        path queries the F / non-empty / element lanes at both span
        boundaries on every call.
        """
        tree_a = self._trees[lane_a]
        tree_b = self._trees[lane_b]
        tree_c = self._trees[lane_c]
        a = b = c = 0
        index = end
        while index > 0:
            a += tree_a[index]
            b += tree_b[index]
            c += tree_c[index]
            index -= index & (-index)
        return a, b, c

    def total(self, lane: int) -> int:
        """Number of slots with the lane bit set (``O(1)``)."""
        return self._totals[lane]

    def select(self, lane: int, k: int) -> int:
        """Position of the ``k``-th (1-based) slot with the lane bit set."""
        if k < 1 or k > self._totals[lane]:
            raise IndexError(
                f"select({k}) out of range (lane {lane} total={self._totals[lane]})"
            )
        position = 0
        remaining = k
        bit = self._top_bit
        size = self._size
        tree = self._trees[lane]
        while bit:
            nxt = position + bit
            if nxt <= size and tree[nxt] < remaining:
                position = nxt
                remaining -= tree[nxt]
            bit >>= 1
        return position

    def select_range(self, lane: int, lo: int, hi: int) -> list[int]:
        """Positions with the lane bit set in ``[lo, hi]``, increasing.

        A select-walk: ``O(k log m)`` for ``k`` hits, independent of the
        span ``hi - lo`` — this is what makes sparse chain scans cheap.
        """
        first = self.prefix(lane, lo)
        last = self.prefix(lane, hi + 1)
        return [self.select(lane, k) for k in range(first + 1, last + 1)]

    def rank_of(self, lane: int, position: int) -> int:
        """1-based rank of ``position`` among the lane's set slots."""
        if not self._masks[position] & (1 << lane):
            raise ValueError(f"slot {position} does not have lane {lane} set")
        return self.prefix(lane, position) + 1
