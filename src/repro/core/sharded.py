"""Sharded list labeling: unbounded capacity from fixed-capacity shards.

Every algorithm in :mod:`repro.algorithms` is a fixed-capacity structure —
``insert`` fails once ``capacity`` elements are stored.  The
:class:`ShardedLabeler` removes that ceiling by composing many fixed-size
instances ("shards") behind a rank directory:

* **Directory** — a weighted :class:`repro.core.fenwick.FenwickTree` with
  one position per shard holding that shard's element count.  A global rank
  routes to its shard with ``select(rank)`` and localizes with
  ``rank - prefix(shard)``, both ``O(log K)`` for ``K`` shards.
* **Shards** — any registered algorithm, built through a
  ``factory(capacity)`` callable (the ``ALGORITHM_FACTORIES`` signature used
  throughout the test-suite), each with the same fixed ``shard_capacity``.
* **Split** — a shard reaching the density ceiling (``split_density ×
  shard_capacity``) is rewritten into two half-full shards, growing the
  directory; total capacity therefore grows with the data and no insert is
  ever refused.
* **Merge** — a shard underflowing ``merge_density × shard_capacity`` is
  combined with an adjacent neighbour (re-split evenly when the union would
  itself exceed the ceiling), so sparse regions do not accumulate
  near-empty shards.

**Labels.**  Globally, an element's label is composed as
``(shard_index << shift) | local_label`` where ``shift`` covers the widest
shard's slot count; shard order follows rank order, so composed labels are
monotone across shard boundaries (:meth:`ShardedLabeler.labels`).  The flat
:meth:`slots` view is the concatenation of the shard arrays, which keeps
:func:`repro.core.validation.check_labeler` applicable unchanged.  A
structural rewrite moves only the elements of the affected shards — elements
of later shards change shard *index* (the label's high bits), not physical
position, which is exactly the economy the directory buys.

**Batches.**  ``insert_batch`` / ``delete_batch`` override the hooks of
:class:`repro.core.interface.ListLabeler`: a pre-batch-rank batch is
partitioned through the directory into per-shard sub-batches (the pre-batch
semantics make the sub-batches independent), each executed as the shard's
own merged rebalance; a sub-batch that would overflow its shard is instead
interleaved with the shard's contents and rewritten into evenly-loaded
fresh shards in one pass.

**Parallel execution.**  The non-overflowing per-shard sub-batches touch
disjoint shard objects, so with a :class:`repro.core.parallel.ShardPool`
attached (the ``parallel=`` / ``max_workers=`` knobs) they fan out across
worker threads; every piece of shared state — the Fenwick directory, the
element→shard reverse index, and split/merge/rewrite restructures — stays
on the calling thread, and the lifted results merge back in descending
pre-batch shard order, bit-identical to the serial path.  Wide reads
(:meth:`ShardedLabeler.range_ranks`, :meth:`ShardedLabeler.count_ranges`)
fan their fully-covered shards out the same way.

The cost model stays the paper's: every physical element move — including
the rewrites performed by splits and merges — is reported through the
returned :class:`~repro.core.operations.OperationResult` moves, and the
restructuring traffic is additionally itemized in :attr:`restructure_log`
(drained by :func:`repro.analysis.runner.run_workload` into the
:class:`~repro.core.cost.CostTracker`).
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from itertools import islice

from repro import obs
from repro.core.exceptions import BatchError, LabelerError
from repro.core.fenwick import FenwickTree
from repro.core.interface import ListLabeler
from repro.core.operations import BatchResult, Move, Operation, OperationResult
from repro.core.parallel import ShardPool, resolve_pool

#: Factory signature of the shard building blocks: ``factory(capacity)``.
ShardFactory = Callable[[int], ListLabeler]


class ShardedLabeler(ListLabeler):
    """A list labeler of effectively unbounded capacity.

    Parameters
    ----------
    shard_factory:
        Builds one shard from its capacity; any registered algorithm
        factory works (``lambda cap: ClassicalPMA(cap)``, …).
    shard_capacity:
        Fixed capacity of every shard (``≥ 8``).
    split_density:
        A shard whose size reaches ``split_density × shard_capacity`` is
        split before it can refuse an insertion.
    merge_density:
        A shard whose size falls below ``merge_density × shard_capacity``
        is merged with a neighbour.  Must leave ``merge`` strictly below
        half the split threshold so a merge never immediately re-splits
        back below the floor.
    parallel:
        An injected (shared) :class:`~repro.core.parallel.ShardPool` for
        per-shard fan-out; the caller owns its lifetime.  Mutually
        exclusive with ``max_workers``.
    max_workers:
        Build an owned pool with this many workers (``<= 1`` means the
        pure serial path; :meth:`close_parallel` tears it down).
    """

    def __init__(
        self,
        shard_factory: ShardFactory,
        *,
        shard_capacity: int = 64,
        split_density: float = 0.75,
        merge_density: float = 0.15,
        parallel: ShardPool | None = None,
        max_workers: int | None = None,
        registry=None,
    ) -> None:
        if shard_capacity < 8:
            raise ValueError("shard_capacity must be at least 8")
        if not 0.0 < split_density <= 1.0:
            raise ValueError("split_density must lie in (0, 1]")
        if merge_density < 0.0:
            raise ValueError("merge_density must be non-negative")
        self._shard_capacity = shard_capacity
        self._split_threshold = max(
            4, min(int(split_density * shard_capacity), shard_capacity - 1)
        )
        self._merge_floor = max(1, int(merge_density * shard_capacity))
        self._fill_target = self._split_threshold // 2
        # Every rewrite produces chunks of at least fill_target // 2
        # elements; the merge floor must not exceed that or freshly
        # rebuilt shards would immediately count as underflowing.
        if self._merge_floor > self._fill_target // 2:
            raise ValueError(
                f"merge floor ({self._merge_floor}) must stay at or below a "
                f"quarter of the split threshold ({self._split_threshold})"
            )
        self._shard_factory = shard_factory
        first = shard_factory(shard_capacity)
        super().__init__(first.capacity, first.num_slots)
        self._shards: list[ListLabeler] = [first]
        #: Element → owning shard (the routing reverse index).  Shard
        #: *objects*, not indices: a split/merge shifts the indices of every
        #: later shard, but never which object owns an untouched element, so
        #: maintenance stays proportional to the rewritten region.  The
        #: object → index step goes through :attr:`_shard_pos`, rebuilt with
        #: the directory on every structural change (``O(K)``, already paid
        #: there).
        self._elem_shard: dict[Hashable, ListLabeler] = {}
        self._rebuild_directory()
        self._pool, self._owns_pool = resolve_pool(parallel, max_workers)

        #: Structural-change counters and per-event move log
        #: (``(kind, moved)`` pairs, ``kind`` in {"split", "merge",
        #: "borrow", "rewrite"}): a *split* halves one overfull shard, a
        #: *merge* combines an underfull pair, a *borrow* re-splits a pair
        #: whose union would overflow (nothing is merged), and a *rewrite*
        #: absorbs an overflowing sub-batch into evenly-loaded fresh shards.
        self.splits = 0
        self.merges = 0
        self.borrows = 0
        self.rewrites = 0
        self.restructure_moves = 0
        self.restructure_log: list[tuple[str, int]] = []
        self.set_registry(registry)

    # ------------------------------------------------------------------
    # Geometry and directory
    # ------------------------------------------------------------------
    @property
    def shard_capacity(self) -> int:
        return self._shard_capacity

    @property
    def split_threshold(self) -> int:
        return self._split_threshold

    @property
    def merge_floor(self) -> int:
        return self._merge_floor

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def pool(self) -> ShardPool | None:
        """The attached shard pool, if any (``None`` = pure serial path)."""
        return self._pool

    def set_parallel(self, pool: ShardPool | None) -> None:
        """Attach (or detach) a shared pool; an owned pool is closed first."""
        if self._owns_pool and self._pool is not None and pool is not self._pool:
            self._pool.close()
        self._pool = pool
        self._owns_pool = False

    def close_parallel(self) -> None:
        """Detach the pool, shutting it down when this engine owns it."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
        self._pool = None
        self._owns_pool = False

    @property
    def shards(self) -> Sequence[ListLabeler]:
        """Read-only view of the shard list (rank order)."""
        return tuple(self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self._shards]

    @property
    def physical_backend(self) -> str | None:
        """Backend name of the shards' physical arrays (``None`` when the
        shard algorithm has no physical-array layer, e.g. a plain PMA)."""
        for shard in self._shards:
            backend = getattr(shard, "physical_backend", None)
            if backend is not None:
                return backend
        return None

    def shard_statistics(self) -> dict[str, float]:
        """Aggregate per-shard statistics for reports and the runner."""
        sizes = self.shard_sizes()
        stats = {
            "shards": float(len(sizes)),
            "splits": float(self.splits),
            "merges": float(self.merges),
            "borrows": float(self.borrows),
            "rewrites": float(self.rewrites),
            "restructure_moves": float(self.restructure_moves),
            "max_shard_size": float(max(sizes, default=0)),
            "min_shard_size": float(min(sizes, default=0)),
        }
        backend = self.physical_backend
        if backend is not None:
            # The one non-numeric entry: which physical-array backend the
            # shards run on (reports, STATS over the wire).
            stats["physical_backend"] = backend
        return stats

    def set_registry(self, registry) -> None:
        """Bind observability instruments to ``registry``.

        Restructure counters mirror the lifetime attributes
        (:attr:`splits` …) into a shared :class:`~repro.obs.MetricsRegistry`
        where they can be read over the wire; the shard-count gauge and the
        per-shard density histogram are refreshed on every restructure.
        Called by :class:`~repro.store.store.DurableStore` to adopt its
        labeler into the store's registry after construction.
        """
        reg = obs.resolve(registry)
        self._obs_enabled = reg.enabled
        self._obs_restructures = {
            kind: reg.counter(f"sharded.{name}")
            for kind, name in self._RESTRUCTURE_COUNTERS.items()
        }
        self._obs_restructure_moves = reg.counter("sharded.restructure_moves")
        self._obs_shards = reg.gauge("sharded.shard_count")
        # Density lives in (0, 1]; doubling buckets from 1/128 give 8
        # meaningful bands ending exactly at a full shard.
        self._obs_density = reg.histogram(
            "sharded.shard_density", start=1.0 / 128.0, factor=2.0, count=8
        )
        if self._obs_enabled:
            self._obs_shards.set(len(self._shards))

    def _rebuild_directory(self) -> None:
        """Rebuild the rank directory and the aggregate geometry.

        Called after every structural change; ``O(K)`` via the bulk Fenwick
        constructor, amortized to ``O(K / shard_capacity)`` per operation by
        the ``Θ(shard_capacity)`` operations between changes.  Shard slot
        counts only change here too, so the global slot offsets are cached
        as a prefix-sum list and every per-operation lookup stays ``O(1)``.
        """
        sizes: list[int] = []
        offsets: list[int] = []
        capacity = 0
        num_slots = 0
        for shard in self._shards:
            sizes.append(len(shard))
            offsets.append(num_slots)
            capacity += shard.capacity
            num_slots += shard.num_slots
        self._directory = FenwickTree.from_values(sizes)
        self._slot_offsets = offsets
        self._capacity = capacity
        self._num_slots = num_slots
        self._shard_pos = {
            id(shard): index for index, shard in enumerate(self._shards)
        }

    def _slot_offset(self, index: int) -> int:
        """First global slot of shard ``index`` in the concatenated view."""
        return self._slot_offsets[index]

    def _locate(self, rank: int) -> tuple[int, int]:
        """Shard index and local rank of the stored element at ``rank``."""
        index = self._directory.select(rank)
        return index, rank - self._directory.prefix(index)

    def _locate_insert(self, rank: int) -> tuple[int, int]:
        """Shard index and local insertion rank for global rank ``rank``."""
        if self._size == 0 or rank > self._size:
            index = len(self._shards) - 1
            return index, rank - self._directory.prefix(index)
        return self._locate(rank)

    # ------------------------------------------------------------------
    # Structural changes (split / merge)
    # ------------------------------------------------------------------
    def _rewrite_region(
        self,
        lo: int,
        hi: int,
        chunks: Sequence[Sequence[Hashable]],
        fresh: frozenset | set = frozenset(),
    ) -> list[Move]:
        """Replace shards ``[lo, hi)`` by fresh shards holding ``chunks``.

        ``chunks`` lists the new shards' contents in global rank order and
        must cover exactly the elements of the replaced shards plus the
        (new) elements in ``fresh``.  Returns one move per element of the
        region: a relocation for survivors, a placement for fresh ones.
        """
        old_positions: dict[Hashable, int] = {}
        for j in range(lo, hi):
            offset = self._slot_offset(j)
            shard = self._shards[j]
            for element in shard.elements():
                old_positions[element] = offset + shard.slot_of(element)
        replacements: list[ListLabeler] = []
        for chunk in chunks:
            shard = self._shard_factory(self._shard_capacity)
            shard.bulk_load(chunk)
            replacements.append(shard)
        if not replacements and hi - lo >= len(self._shards):
            # Rewriting the whole structure away: the canonical empty
            # state is one fresh shard (the constructor's), never zero
            # shards — every rank-routing path assumes at least one.
            replacements = [self._shard_factory(self._shard_capacity)]
        self._shards[lo:hi] = replacements
        self._rebuild_directory()
        moves: list[Move] = []
        elem_shard = self._elem_shard
        for position, shard in enumerate(replacements, start=lo):
            offset = self._slot_offset(position)
            for element in shard.elements():
                source = None if element in fresh else old_positions[element]
                moves.append(Move(element, source, offset + shard.slot_of(element)))
                elem_shard[element] = shard
        return moves

    #: Restructure kind → counter attribute.  Distinct kinds because they
    #: answer different tuning questions: splits/merges track the density
    #: policy, borrows flag a floor/ceiling gap too narrow to merge into,
    #: and rewrites are batch-absorption traffic, not organic growth.
    _RESTRUCTURE_COUNTERS = {
        "split": "splits",
        "merge": "merges",
        "borrow": "borrows",
        "rewrite": "rewrites",
    }

    #: Restructures between full shard-density sweeps (see
    #: :meth:`_record_restructure`).
    _DENSITY_SWEEP_STRIDE = 32

    def _record_restructure(self, kind: str, moves: Sequence[Move]) -> None:
        moved = sum(1 for move in moves if move.cost > 0)
        self.restructure_log.append((kind, moved))
        self.restructure_moves += moved
        counter = self._RESTRUCTURE_COUNTERS[kind]
        setattr(self, counter, getattr(self, counter) + 1)
        self._obs_restructures[kind].inc()
        if moved:
            self._obs_restructure_moves.inc(moved)
        if self._obs_enabled:
            self._obs_shards.set(len(self._shards))
            # A full density sweep is O(K) with a locked observe per
            # shard; amortize it to one sweep per stride restructures so
            # a restructure-heavy ingest never pays a K-proportional
            # instrumentation tax on every split.
            if len(self.restructure_log) % self._DENSITY_SWEEP_STRIDE == 1:
                capacity = float(self._shard_capacity)
                for shard in self._shards:
                    self._obs_density.observe(len(shard) / capacity)

    def _even_chunks(self, contents: Sequence[Hashable]) -> list[list[Hashable]]:
        """Partition ``contents`` into evenly-loaded shard-sized chunks.

        Empty contents partition into *no* chunks: a drained region is
        spliced out of the shard list, never rebuilt as an empty shard
        (which would sit below the merge floor and corrupt the density
        invariant the moment it survived a rebalance).
        """
        total = len(contents)
        if total == 0:
            return []
        count = max(1, math.ceil(total / self._fill_target))
        base, extra = divmod(total, count)
        chunks: list[list[Hashable]] = []
        start = 0
        for j in range(count):
            size = base + (1 if j < extra else 0)
            chunks.append(list(contents[start : start + size]))
            start += size
        return chunks

    def _split_shard(self, index: int) -> list[Move]:
        """Split shard ``index`` into two half-full shards."""
        elements = self._shards[index].elements()
        half = len(elements) // 2
        moves = self._rewrite_region(
            index, index + 1, [elements[:half], elements[half:]]
        )
        self._record_restructure("split", moves)
        return moves

    def _merge_step(self, index: int) -> list[Move]:
        """Merge shard ``index`` with its smaller adjacent neighbour.

        When the union would exceed the split threshold the combined
        contents are instead re-split evenly (a borrow), which still lifts
        the underflowing shard back above the floor.
        """
        if index > 0 and (
            index + 1 >= len(self._shards)
            or len(self._shards[index - 1]) <= len(self._shards[index + 1])
        ):
            lo, hi = index - 1, index + 1
        else:
            lo, hi = index, index + 2
        combined = self._shards[lo].elements() + self._shards[lo + 1].elements()
        if len(combined) > self._split_threshold:
            # Borrow: the union would overflow, so the pair is re-split
            # evenly instead — nothing is merged, and the event is
            # recorded under its own kind.
            half = len(combined) // 2
            chunks: list[list[Hashable]] = [combined[:half], combined[half:]]
            kind = "borrow"
        else:
            # A fully drained pair contributes no chunks and is spliced
            # out (see _even_chunks) instead of rebuilt as an empty shard.
            chunks = [combined] if combined else []
            kind = "merge"
        moves = self._rewrite_region(lo, hi, chunks)
        self._record_restructure(kind, moves)
        return moves

    def _rebalance_underflows(self) -> list[Move]:
        """Merge every underflowing shard, cascading until the policy holds."""
        moves: list[Move] = []
        index = 0
        while index < len(self._shards):
            if (
                len(self._shards) > 1
                and len(self._shards[index]) < self._merge_floor
            ):
                moves.extend(self._merge_step(index))
                index = max(index - 1, 0)
            else:
                index += 1
        return moves

    # ------------------------------------------------------------------
    # Singleton operations
    # ------------------------------------------------------------------
    def _lift_moves(self, moves: Iterable[Move], offset: int) -> list[Move]:
        """Translate shard-local move coordinates into the global view."""
        return [
            Move(
                move.element,
                None if move.source is None else move.source + offset,
                None if move.destination is None else move.destination + offset,
            )
            for move in moves
        ]

    def _insert(self, rank: int, element: Hashable) -> OperationResult:
        result = OperationResult(Operation.insert(rank))
        index, local = self._locate_insert(rank)
        shard = self._shards[index]
        if len(shard) >= self._split_threshold or shard.is_full:
            result.extend(self._split_shard(index))
            index, local = self._locate_insert(rank)
            shard = self._shards[index]
        inner = shard.insert(local, element)
        self._elem_shard[element] = shard
        self._directory.add(index, 1)
        result.extend(self._lift_moves(inner.moves, self._slot_offset(index)))
        return result

    def _delete(self, rank: int) -> OperationResult:
        result = OperationResult(Operation.delete(rank))
        index, local = self._locate(rank)
        shard = self._shards[index]
        del self._elem_shard[shard.select(local)]
        inner = shard.delete(local)
        self._directory.add(index, -1)
        result.extend(self._lift_moves(inner.moves, self._slot_offset(index)))
        if len(self._shards) > 1 and len(shard) < self._merge_floor:
            result.extend(self._rebalance_underflows())
        return result

    # ------------------------------------------------------------------
    # Batched operations: per-shard sub-batches, merged rebalances
    # ------------------------------------------------------------------
    def _prepare_insert_batch(
        self, items: Sequence[tuple[int, Hashable]]
    ) -> list[tuple[int, Hashable]]:
        """Validate ranks and sort stably — capacity grows on demand."""
        prepared = [(rank, element) for rank, element in items]
        for rank, _ in prepared:
            if not 1 <= rank <= self._size + 1:
                raise BatchError(
                    f"insert_batch rank {rank} out of range for a structure "
                    f"holding {self._size} element(s)"
                )
        prepared.sort(key=lambda item: item[0])
        return prepared

    def _insert_batch(
        self, prepared: Sequence[tuple[int, Hashable]]
    ) -> list[OperationResult]:
        groups: dict[int, list[tuple[int, Hashable]]] = {}
        for rank, element in prepared:
            index, local = self._locate_insert(rank)
            groups.setdefault(index, []).append((local, element))
        # Descending shard order: a rewrite replaces one shard by several,
        # which would shift the indices of every group after it.  The
        # serial schedule runs group i before any restructure at a lower
        # index, and a restructure at a higher index never moves shard i
        # or its slot offset — so running every overflow restructure first
        # (still descending) and then the independent non-overflowing
        # groups sees exactly the serial path's state: pre-batch shard
        # objects and pre-batch offsets.  That reordering is what lets the
        # plain groups fan out across the pool.
        order = sorted(groups, reverse=True)
        shard_at = {index: self._shards[index] for index in order}
        offsets = self._slot_offsets  # replaced, never mutated, on rebuild
        restructured: dict[int, OperationResult] = {}
        plain: list[int] = []
        for index in order:
            if len(shard_at[index]) + len(groups[index]) > self._split_threshold:
                restructured[index] = self._absorb_overflowing_batch(
                    index, groups[index]
                )
            else:
                plain.append(index)
        tasks = [
            (lambda shard=shard_at[i], sub=groups[i]: shard.insert_batch(sub))
            for i in plain
        ]
        inners = self._pool.run(tasks) if self._pool else [task() for task in tasks]
        results: list[OperationResult] = []
        inner_at = dict(zip(plain, inners))
        for index in order:
            if index in restructured:
                results.append(restructured[index])
                continue
            sub = groups[index]
            shard = shard_at[index]
            for _, element in sub:
                self._elem_shard[element] = shard
            # The restructures above may have shifted this shard's index;
            # the directory update targets its *current* position, while
            # moves lift with the pre-batch offset the serial path saw.
            self._directory.add(self._shard_pos[id(shard)], len(sub))
            offset = offsets[index]
            for item in inner_at[index].results:
                lifted = OperationResult(item.operation)
                lifted.extend(self._lift_moves(item.moves, offset))
                results.append(lifted)
        self._size += len(prepared)
        return results

    def _absorb_overflowing_batch(
        self, index: int, sub: Sequence[tuple[int, Hashable]]
    ) -> OperationResult:
        """Interleave ``sub`` with shard ``index`` and rewrite evenly.

        The per-shard analogue of the dense merged rebalance: a sub-batch
        item of local pre-batch rank ``r`` goes immediately before the
        shard element holding rank ``r``, and the union is laid out into
        ``ceil(total / fill_target)`` fresh half-full shards in one pass.
        """
        window = self._shards[index].elements()
        contents: list[Hashable] = []
        fresh: set = set()
        consumed = 0
        for local, element in sub:
            while consumed < local - 1:
                contents.append(window[consumed])
                consumed += 1
            fresh.add(element)
            contents.append(element)
        contents.extend(window[consumed:])
        result = OperationResult(Operation.insert(sub[0][0]))
        moves = self._rewrite_region(
            index, index + 1, self._even_chunks(contents), fresh=fresh
        )
        self._record_restructure("rewrite", moves)
        result.extend(moves)
        return result

    def _delete_batch(self, prepared: Sequence[int]) -> list[OperationResult]:
        groups: dict[int, list[int]] = {}
        for rank in prepared:  # descending, so per-shard locals stay sorted
            index, local = self._locate(rank)
            groups.setdefault(index, []).append(local)
        # Per-shard drains touch disjoint shard objects and no delete
        # restructures mid-batch (underflows rebalance once at the end),
        # so every group fans out; each task reads its victims before
        # mutating, and the shared bookkeeping (reverse index, directory)
        # replays on this thread in descending shard order.
        order = sorted(groups, reverse=True)

        def drain(
            shard: ListLabeler, locals_: Sequence[int]
        ) -> tuple[list[Hashable], BatchResult]:
            victims = [shard.select(local) for local in locals_]
            return victims, shard.delete_batch(locals_)

        tasks = [
            (lambda shard=self._shards[i], sub=groups[i]: drain(shard, sub))
            for i in order
        ]
        drained = self._pool.run(tasks) if self._pool else [task() for task in tasks]
        results: list[OperationResult] = []
        for index, (victims, inner) in zip(order, drained):
            for element in victims:
                del self._elem_shard[element]
            self._directory.add(index, -len(groups[index]))
            offset = self._slot_offset(index)
            for item in inner.results:
                lifted = OperationResult(item.operation)
                lifted.extend(self._lift_moves(item.moves, offset))
                results.append(lifted)
        self._size -= len(prepared)
        rebalance = self._rebalance_underflows()
        if rebalance:
            trailer = OperationResult(Operation.delete(prepared[-1]))
            trailer.extend(rebalance)
            results.append(trailer)
        return results

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, elements: Sequence[Hashable]) -> int:
        """Load sorted ``elements`` into evenly-filled fresh shards."""
        elements = list(elements)
        if self._size:
            raise LabelerError("bulk_load requires an empty structure")
        replacements: list[ListLabeler] = []
        total = 0
        self._elem_shard = {}
        # _even_chunks([]) is no chunks; the canonical empty structure is
        # still one fresh shard.
        for chunk in self._even_chunks(elements) or [[]]:
            shard = self._shard_factory(self._shard_capacity)
            total += shard.bulk_load(chunk)
            for element in chunk:
                self._elem_shard[element] = shard
            replacements.append(shard)
        self._shards = replacements
        self._rebuild_directory()
        self._size = len(elements)
        return total

    # ------------------------------------------------------------------
    # Serialization (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Per-shard snapshot: one entry per shard, plus engine counters.

        Each shard contributes its own :meth:`ListLabeler.snapshot`
        document (exact dense layout for every registered algorithm), so a
        restore reproduces not just the element sequence but the shard
        boundaries and every shard's physical slot assignment — which is
        what makes composed labels identical after recovery.
        """
        return {
            "format": "sharded",
            "size": self._size,
            "shard_capacity": self._shard_capacity,
            "shards": [shard.snapshot() for shard in self._shards],
            "counters": {
                "splits": self.splits,
                "merges": self.merges,
                "borrows": self.borrows,
                "rewrites": self.rewrites,
                "restructure_moves": self.restructure_moves,
            },
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` document into this (empty) engine.

        Empty-state round-trips are first-class: restoring a snapshot with
        no shards (or only empty shards) leaves the engine with its single
        fresh shard, exactly like a newly constructed instance, so
        ``snapshot → restore → insert`` works from any state and
        :meth:`check_consistency` holds immediately after the restore.
        """
        if state.get("format") != "sharded":
            super().restore(state)
            return
        if self._size:
            raise LabelerError("restore requires an empty structure")
        if state["shard_capacity"] != self._shard_capacity:
            raise LabelerError(
                f"snapshot shard capacity {state['shard_capacity']} does not "
                f"match this engine's {self._shard_capacity}"
            )
        shards: list[ListLabeler] = []
        self._elem_shard = {}
        for shard_state in state["shards"]:
            shard = self._shard_factory(self._shard_capacity)
            shard.restore(shard_state)
            for element in shard.elements():
                self._elem_shard[element] = shard
            shards.append(shard)
        if not shards:
            # A zero-shard engine would break every rank-routing path; the
            # canonical empty state is one fresh shard (the constructor's).
            shards = [self._shard_factory(self._shard_capacity)]
        self._shards = shards
        self._rebuild_directory()
        self._size = sum(len(shard) for shard in shards)
        if self._size != state["size"]:
            raise LabelerError(
                f"snapshot records {state['size']} element(s) but its shards "
                f"hold {self._size}"
            )
        counters = state.get("counters") or {}
        self.splits = counters.get("splits", 0)
        self.merges = counters.get("merges", 0)
        self.borrows = counters.get("borrows", 0)
        self.rewrites = counters.get("rewrites", 0)
        self.restructure_moves = counters.get("restructure_moves", 0)
        self.restructure_log = []

    # ------------------------------------------------------------------
    # Physical views
    # ------------------------------------------------------------------
    def slots(self) -> Sequence[Hashable | None]:
        flat: list[Hashable | None] = []
        for shard in self._shards:
            flat.extend(shard.slots())
        return tuple(flat)

    def elements(self) -> list[Hashable]:
        out: list[Hashable] = []
        for shard in self._shards:
            out.extend(shard.elements())
        return out

    def slot_of(self, element: Hashable) -> int:
        """Global slot in the concatenated view, routed in ``O(1)`` + one
        indexed shard query.

        The element → shard reverse index replaces the ``O(K)`` probe loop
        that scanned every shard until one answered (still available as
        :meth:`_slot_of_probe` for the regression benchmark): a hit costs
        two dict lookups plus the owning shard's own indexed ``slot_of``,
        independent of the shard count.
        """
        shard = self._elem_shard.get(element)
        if shard is None:
            raise KeyError(f"element {element!r} is not stored")
        index = self._shard_pos[id(shard)]
        return self._slot_offsets[index] + shard.slot_of(element)

    def rank_of(self, element: Hashable) -> int:
        """1-based global rank: reverse-index route + one directory prefix."""
        shard = self._elem_shard.get(element)
        if shard is None:
            raise KeyError(f"element {element!r} is not stored")
        index = self._shard_pos[id(shard)]
        return self._directory.prefix(index) + shard.rank_of(element)

    def contains(self, element: Hashable) -> bool:
        """Membership in ``O(1)`` through the reverse index."""
        return element in self._elem_shard

    def _slot_of_probe(self, element: Hashable) -> int:
        """The pre-index ``O(K)`` probe loop, kept as the benchmark foil.

        Probes every shard in order (via its ``contains`` when it has one)
        until one owns the element — the behaviour :meth:`slot_of` had
        before the routing index, preserved verbatim so the regression
        benchmark can measure the routed path against it on identical
        structures.
        """
        offset = 0
        for shard in self._shards:
            has = getattr(shard, "contains", None)
            if has is not None:
                if has(element):
                    return offset + shard.slot_of(element)
            else:
                try:
                    return offset + shard.slot_of(element)
                except KeyError:
                    pass
            offset += shard.num_slots
        raise KeyError(f"element {element!r} is not stored")

    def _rank_of_probe(self, element: Hashable) -> int:
        """The pre-index ``O(K)`` rank probe loop (benchmark foil)."""
        below = 0
        for shard in self._shards:
            has = getattr(shard, "contains", None)
            if has is not None:
                if has(element):
                    return below + shard.rank_of(element)
            else:
                try:
                    return below + shard.rank_of(element)
                except KeyError:
                    pass
            below += len(shard)
        raise KeyError(f"element {element!r} is not stored")

    # ------------------------------------------------------------------
    # Read path: directory-routed selects and cross-shard streaming
    # ------------------------------------------------------------------
    def select(self, rank: int) -> Hashable:
        """The ``rank``-th element: one directory select + one shard select."""
        self._check_read_rank(rank, "select")
        index, local = self._locate(rank)
        return self._shards[index].select(local)

    def _iter_from(self, rank: int) -> Iterator[Hashable]:
        """Stream across shard boundaries without concatenating shards.

        The directory routes the start rank to its shard; that shard's own
        lazy ``iter_from`` is drained, then each later shard streams from
        its first element.  No shard's contents are materialized, so
        consuming a short prefix touches only the shards it crosses.
        """
        if rank > self._size:
            return
        index, local = self._locate(rank)
        yield from self._shards[index].iter_from(local)
        for later in range(index + 1, len(self._shards)):
            shard = self._shards[later]
            if len(shard):
                yield from shard.iter_from(1)

    def count_range(self, lo: int, hi: int) -> int:
        """Stored elements in the global slot window ``[lo, hi)``.

        Fenwick-prefix composition: the boundary shards answer their
        partial windows with their own occupancy counts, and every fully
        covered shard in between contributes through one rank-directory
        prefix difference (``O(log K)``) — no per-shard iteration.
        """
        lo = max(0, lo)
        hi = min(self._num_slots, hi)
        if hi <= lo:
            return 0
        offsets = self._slot_offsets
        first = bisect.bisect_right(offsets, lo) - 1
        last = bisect.bisect_right(offsets, hi - 1) - 1
        if first == last:
            return self._shards[first].count_range(
                lo - offsets[first], hi - offsets[first]
            )
        first_shard = self._shards[first]
        total = first_shard.count_range(lo - offsets[first], first_shard.num_slots)
        total += self._directory.prefix(last) - self._directory.prefix(first + 1)
        total += self._shards[last].count_range(0, hi - offsets[last])
        return total

    def range_ranks(self, lo: int, hi: int) -> list[Hashable]:
        """Materialize the elements with ranks ``lo..hi`` (1-based, inclusive).

        The cursor path (:meth:`iter_from`) streams shard by shard on one
        thread; this is the batch-read analogue for wide scans: the two
        boundary shards answer their partial segments inline, and every
        fully covered shard in between materializes its contents as an
        independent task — fanned across the shard pool when one is
        attached — before assembly in shard order, so the result is
        identical to draining the cursor.
        """
        lo = max(1, lo)
        hi = min(self._size, hi)
        if hi < lo:
            return []
        first, first_local = self._locate(lo)
        last, last_local = self._locate(hi)
        shards = self._shards
        if first == last:
            return list(islice(shards[first].iter_from(first_local), hi - lo + 1))
        interior = shards[first + 1 : last]
        tasks = [
            (lambda segment=segment: [
                element for shard in segment for element in shard.elements()
            ])
            for segment in self._worker_segments(interior)
        ]
        parts = self._pool.run(tasks) if self._pool else [task() for task in tasks]
        out: list[Hashable] = list(shards[first].iter_from(first_local))
        for part in parts:
            out.extend(part)
        out.extend(islice(shards[last].iter_from(1), last_local))
        return out

    def _worker_segments(
        self, shards: Sequence[ListLabeler]
    ) -> list[Sequence[ListLabeler]]:
        """Split ``shards`` into one contiguous slice per pool worker.

        One task per shard would drown in dispatch overhead (a scan can
        cover hundreds of shards); one slice per worker keeps the fan-out
        wide enough to fill the pool and the per-task work coarse.
        """
        if not shards:
            return []
        workers = self._pool.max_workers if self._pool else 1
        count = min(len(shards), max(1, workers))
        base, extra = divmod(len(shards), count)
        segments: list[Sequence[ListLabeler]] = []
        start = 0
        for j in range(count):
            size = base + (1 if j < extra else 0)
            segments.append(shards[start : start + size])
            start += size
        return segments

    def count_ranges(self, windows: Sequence[tuple[int, int]]) -> list[int]:
        """Answer many :meth:`count_range` slot windows in one call.

        Each window is an independent read of the directory and at most
        two boundary shards, so the batch fans out across the shard pool
        (when attached) — one contiguous slice of windows per worker —
        and returns counts in window order.
        """
        if not self._pool or self._pool.is_serial or len(windows) < 2:
            return [self.count_range(lo, hi) for lo, hi in windows]
        workers = self._pool.max_workers
        count = min(len(windows), workers)
        base, extra = divmod(len(windows), count)
        slices: list[Sequence[tuple[int, int]]] = []
        start = 0
        for j in range(count):
            size = base + (1 if j < extra else 0)
            slices.append(windows[start : start + size])
            start += size
        tasks = [
            (lambda batch=batch: [self.count_range(lo, hi) for lo, hi in batch])
            for batch in slices
        ]
        out: list[int] = []
        for part in self._pool.run(tasks):
            out.extend(part)
        return out

    def slot_of_rank(self, rank: int) -> int:
        """Global slot of the ``rank``-th element (directory + shard index)."""
        self._check_read_rank(rank, "select")
        index, local = self._locate(rank)
        return self._slot_offsets[index] + self._shards[index].slot_of_rank(local)

    @property
    def label_shift(self) -> int:
        """Bits reserved for the local label in a composed global label."""
        return max(
            (shard.num_slots for shard in self._shards),
            default=self._shard_capacity,
        ).bit_length()

    def labels(self) -> dict[Hashable, int]:
        """Composed labels ``(shard_index << shift) | local_label``.

        Shard order follows rank order and local labels are monotone inside
        each shard, so composed labels are monotone in rank globally — the
        list-labeling contract — while a structural rewrite renumbers only
        the affected shards' elements (plus the high bits of later shards).
        """
        shift = self.label_shift
        composed: dict[Hashable, int] = {}
        for index, shard in enumerate(self._shards):
            for element, local in shard.labels().items():
                composed[element] = (index << shift) | local
        return composed

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self, key=None) -> None:
        """Check every structural invariant of the sharding engine.

        Verifies the directory against the true shard sizes, the aggregate
        geometry, the density policy (no shard above the split ceiling,
        none below the merge floor unless it is the only shard), and
        recursively the shards' own consistency where they expose it.
        """
        from repro.core.exceptions import InvariantViolation

        total = 0
        for index, shard in enumerate(self._shards):
            if self._directory.value(index) != len(shard):
                raise InvariantViolation(
                    f"directory records {self._directory.value(index)} elements "
                    f"for shard {index} which holds {len(shard)}"
                )
            if len(shard) > self._split_threshold:
                raise InvariantViolation(
                    f"shard {index} holds {len(shard)} elements, above the "
                    f"split threshold {self._split_threshold}"
                )
            if len(self._shards) > 1 and len(shard) < self._merge_floor:
                raise InvariantViolation(
                    f"shard {index} holds {len(shard)} elements, below the "
                    f"merge floor {self._merge_floor}"
                )
            total += len(shard)
            inner_check = getattr(shard, "check_consistency", None)
            if callable(inner_check):
                inner_check(key=key)
        if total != self._size:
            raise InvariantViolation(
                f"shard sizes sum to {total} but the engine reports {self._size}"
            )
        if len(self._elem_shard) != self._size:
            raise InvariantViolation(
                f"routing index holds {len(self._elem_shard)} entries for "
                f"{self._size} stored element(s)"
            )
        for index, shard in enumerate(self._shards):
            if self._shard_pos.get(id(shard)) != index:
                raise InvariantViolation(
                    f"shard position index out of date for shard {index}"
                )
            for element in shard.elements():
                if self._elem_shard.get(element) is not shard:
                    raise InvariantViolation(
                        f"routing index misroutes element {element!r} "
                        f"(expected shard {index})"
                    )
        if self._capacity != sum(shard.capacity for shard in self._shards):
            raise InvariantViolation("aggregate capacity drifted")
        if self._num_slots != sum(shard.num_slots for shard in self._shards):
            raise InvariantViolation("aggregate slot count drifted")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(shards={len(self._shards)}, "
            f"shard_capacity={self._shard_capacity}, size={self._size})"
        )
