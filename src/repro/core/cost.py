"""Cost accounting: amortized, worst-case and lightly-amortized statistics.

Section 2 of the paper defines three cost notions that the theorems
distinguish carefully:

* **amortized expected cost** ``O(C)``: on every prefix of the input the
  average cost per operation is ``O(C)``;
* **worst-case cost**: the maximum cost of any single operation;
* **lightly-amortized expected cost** ``O(C)``: on *any contiguous
  subsequence* of ``T`` operations the total cost is ``O(TC + n)``.

:class:`CostTracker` records the per-operation costs produced by a run and
exposes all three, including the windowed statistic needed to check light
amortization empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class WindowStatistics:
    """Cost statistics of the worst contiguous window of a fixed length."""

    window: int
    max_total: int
    max_start: int
    mean_total: float

    @property
    def max_average(self) -> float:
        """Average per-operation cost inside the worst window."""
        return self.max_total / self.window if self.window else 0.0


class CostTracker:
    """Accumulates per-operation costs and derives summary statistics."""

    def __init__(self) -> None:
        self._costs: list[int] = []
        self._total = 0
        self._max = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, cost: int) -> None:
        """Record the cost of one operation."""
        if cost < 0:
            raise ValueError("operation cost cannot be negative")
        self._costs.append(cost)
        self._total += cost
        if cost > self._max:
            self._max = cost

    def record_many(self, costs: Iterable[int]) -> None:
        for cost in costs:
            self.record(cost)

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    @property
    def operations(self) -> int:
        return len(self._costs)

    @property
    def total_cost(self) -> int:
        return self._total

    @property
    def worst_case(self) -> int:
        """Maximum cost of a single operation."""
        return self._max

    @property
    def amortized(self) -> float:
        """Average cost per operation over the whole run."""
        if not self._costs:
            return 0.0
        return self._total / len(self._costs)

    @property
    def costs(self) -> Sequence[int]:
        return tuple(self._costs)

    def prefix_amortized(self) -> list[float]:
        """Average cost on every prefix (the paper's amortized notion)."""
        averages: list[float] = []
        running = 0
        for index, cost in enumerate(self._costs, start=1):
            running += cost
            averages.append(running / index)
        return averages

    def max_prefix_amortized(self) -> float:
        """Largest prefix average — bounds the amortized cost of the run."""
        prefix = self.prefix_amortized()
        return max(prefix) if prefix else 0.0

    # ------------------------------------------------------------------
    # Light amortization
    # ------------------------------------------------------------------
    def window_statistics(self, window: int) -> WindowStatistics:
        """Statistics of the most expensive contiguous window of length ``window``.

        The lightly-amortized guarantee of the paper says the total cost on
        any window of ``T`` operations is ``O(TC + n)``; this method returns
        the empirical worst window so the bound can be checked.
        """
        if window < 1:
            raise ValueError("window must be positive")
        costs = self._costs
        if not costs:
            return WindowStatistics(window=window, max_total=0, max_start=0, mean_total=0.0)
        window = min(window, len(costs))
        current = sum(costs[:window])
        best = current
        best_start = 0
        totals_sum = current
        count = 1
        for start in range(1, len(costs) - window + 1):
            current += costs[start + window - 1] - costs[start - 1]
            totals_sum += current
            count += 1
            if current > best:
                best = current
                best_start = start
        return WindowStatistics(
            window=window,
            max_total=best,
            max_start=best_start,
            mean_total=totals_sum / count,
        )

    def lightly_amortized_bound(self, window: int, slack: int) -> float:
        """Empirical lightly-amortized constant.

        Returns the smallest ``C`` such that the worst window of length
        ``window`` has total cost ``≤ C * window + slack`` (``slack`` plays
        the role of the additive ``O(n)`` term).
        """
        stats = self.window_statistics(window)
        effective = max(stats.max_total - slack, 0)
        return effective / stats.window if stats.window else 0.0

    # ------------------------------------------------------------------
    # Distributional statistics
    # ------------------------------------------------------------------
    def percentile(self, fraction: float) -> int:
        """Cost percentile (``fraction`` in [0, 1]) using nearest-rank."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        if not self._costs:
            return 0
        ordered = sorted(self._costs)
        index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[index]

    def tail_fraction(self, threshold: int) -> float:
        """Fraction of operations whose cost is at least ``threshold``."""
        if not self._costs:
            return 0.0
        heavy = sum(1 for cost in self._costs if cost >= threshold)
        return heavy / len(self._costs)

    # ------------------------------------------------------------------
    # Merging and summarizing
    # ------------------------------------------------------------------
    def merge(self, other: "CostTracker") -> "CostTracker":
        """Concatenate two runs into a new tracker."""
        merged = CostTracker()
        merged.record_many(self._costs)
        merged.record_many(other._costs)
        return merged

    def summary(self) -> dict[str, float]:
        """Dictionary summary used by the benchmark report tables."""
        return {
            "operations": float(self.operations),
            "total_cost": float(self.total_cost),
            "amortized": self.amortized,
            "worst_case": float(self.worst_case),
            "p50": float(self.percentile(0.50)),
            "p99": float(self.percentile(0.99)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CostTracker(operations={self.operations}, amortized={self.amortized:.2f}, "
            f"worst_case={self.worst_case})"
        )
