"""Cost accounting: amortized, worst-case and lightly-amortized statistics.

Section 2 of the paper defines three cost notions that the theorems
distinguish carefully:

* **amortized expected cost** ``O(C)``: on every prefix of the input the
  average cost per operation is ``O(C)``;
* **worst-case cost**: the maximum cost of any single operation;
* **lightly-amortized expected cost** ``O(C)``: on *any contiguous
  subsequence* of ``T`` operations the total cost is ``O(TC + n)``.

:class:`CostTracker` records the per-operation costs produced by a run and
exposes all three, including the windowed statistic needed to check light
amortization empirically.

Two distributional views coexist:

* the **per-operation** view (:meth:`CostTracker.percentile`,
  :meth:`~CostTracker.tail_fraction`) weights every event by the number of
  logical operations it served — a batch of ``w`` operations with total
  cost ``c`` contributes ``w`` operations of cost ``c / w`` — so a batched
  run and its singleton equivalent report percentiles on the same
  per-operation scale as :attr:`~CostTracker.amortized`;
* the **per-event** view (:meth:`CostTracker.event_percentile`,
  :meth:`~CostTracker.event_tail_fraction`, :attr:`~CostTracker.worst_case`)
  treats each recorded event — a whole batch — as one sample, which is the
  right view for "how expensive can one call get".

Events may also carry a **wall-clock latency** (``latency=`` on the record
methods; the workload runner injects a clock), exposed through the same
weight-aware percentile machinery (:meth:`CostTracker.latency_percentile`)
so tail *time*, not just tail *moves*, is measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

#: Historical latency-key spellings, kept as aliases of the canonical
#: names (``latency_p*`` = per-operation view, ``latency_event_*`` =
#: whole-event view).  :meth:`CostTracker.latency_summary` emits both, so
#: committed BENCH documents written under either scheme still validate.
LATENCY_KEY_ALIASES: dict[str, str] = {
    "latency_max": "latency_event_max",
}


@dataclass(frozen=True)
class WindowStatistics:
    """Cost statistics of the worst contiguous window of a fixed length."""

    window: int
    max_total: int
    max_start: int
    mean_total: float

    @property
    def max_average(self) -> float:
        """Average per-operation cost inside the worst window."""
        return self.max_total / self.window if self.window else 0.0


class CostTracker:
    """Accumulates per-operation costs and derives summary statistics.

    The tracker records *events*: a singleton operation is an event of
    weight 1; a batch recorded via :meth:`record_batch` is a single event
    whose weight is the number of logical operations it contained.  The
    element-level statistics (:attr:`operations`, :attr:`amortized`,
    :meth:`percentile`, :meth:`tail_fraction`) weight batches by their
    size, while the event-level statistics (:attr:`worst_case`,
    :meth:`event_percentile`, windows) treat each batch as one event —
    for singleton-only runs the two views coincide, so existing callers
    are unaffected.
    """

    def __init__(self) -> None:
        self._costs: list[int] = []
        self._weights: list[int] = []
        self._latencies: list[float | None] = []
        self._operations = 0
        self._total = 0
        self._max = 0
        self._restructures: dict[str, int] = {}
        self._restructure_moves: dict[str, int] = {}
        self._query_counts: dict[str, int] = {}
        self._query_items: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, cost: int, *, latency: float | None = None) -> None:
        """Record the cost of one operation (optionally its wall-clock latency)."""
        self._record_event(cost, 1, latency)

    def record_batch(
        self, total_cost: int, operations: int, *, latency: float | None = None
    ) -> None:
        """Record a batch of ``operations`` logical ops with one total cost.

        The batch appears as a single event in the event-level statistics
        and as ``operations`` operations in the element-level ones.
        ``latency`` is the wall-clock duration of the whole batch.

        A **zero-applied batch** (``operations == 0`` — e.g. a
        ``delete_many`` whose key set was empty) is recorded as a
        weight-0 event: it contributes nothing to the per-operation views
        (there is no operation to attribute its cost to), but it *is* a
        call that happened and took wall-clock time, so it stays visible
        to the event-level statistics — :meth:`event_percentile`,
        :meth:`event_latency_percentile`, :attr:`events` — where a no-op
        stall must not be able to hide from the tail percentiles.
        """
        if operations < 0:
            raise ValueError("batch size cannot be negative")
        self._record_event(total_cost, operations, latency)

    def _record_event(
        self, cost: int, weight: int, latency: float | None = None
    ) -> None:
        if cost < 0:
            raise ValueError("operation cost cannot be negative")
        if latency is not None and latency < 0:
            raise ValueError("latency cannot be negative")
        self._costs.append(cost)
        self._weights.append(weight)
        self._latencies.append(latency)
        self._operations += weight
        self._total += cost
        if cost > self._max:
            self._max = cost

    def record_many(self, costs: Iterable[int]) -> None:
        for cost in costs:
            self.record(cost)

    def record_recorder(
        self, recorder, operations: int = 1, *, latency: float | None = None
    ) -> None:
        """Consume a :class:`repro.core.operations.MoveRecorder` directly.

        The zero-alloc counterpart of summing ``Move.cost`` over a move
        list: the recorder keeps its total pre-aggregated, so charging a
        whole recorded run (or batch) to the tracker reads one integer and
        never materializes a ``Move``.  ``operations`` is the number of
        logical operations the recorded work served (a batch weight, as in
        :meth:`record_batch`).
        """
        self.record_batch(recorder.total_cost, operations, latency=latency)

    def record_query(self, kind: str, items: int = 1) -> None:
        """Record one read operation of the given kind.

        Reads never move elements, so they live outside the element-move
        statistics entirely: a query contributes to :attr:`queries` and
        :meth:`query_statistics` but not to :attr:`operations`,
        :attr:`total_cost` or any window/percentile view.  ``items`` is the
        read's *touch count* — 1 for a point lookup/select, the number of
        elements streamed for a range, the count returned by a count-range —
        which is what the read-throughput reports aggregate.
        """
        if items < 0:
            raise ValueError("query item count cannot be negative")
        self._query_counts[kind] = self._query_counts.get(kind, 0) + 1
        self._query_items[kind] = self._query_items.get(kind, 0) + items

    def record_restructure(self, kind: str, moves: int) -> None:
        """Record one structural event (a shard split/merge, a rebuild, …).

        Restructuring moves are already part of the operation costs that
        triggered them — this records a *breakdown* by event kind, not
        additional cost, so reports can separate steady-state traffic from
        structural maintenance (the sharding engine's splits and merges).
        """
        if moves < 0:
            raise ValueError("restructure moves cannot be negative")
        self._restructures[kind] = self._restructures.get(kind, 0) + 1
        self._restructure_moves[kind] = (
            self._restructure_moves.get(kind, 0) + moves
        )

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    @property
    def operations(self) -> int:
        """Number of logical operations recorded (batches count their size)."""
        return self._operations

    @property
    def events(self) -> int:
        """Number of recorded events (a whole batch is one event)."""
        return len(self._costs)

    @property
    def total_cost(self) -> int:
        return self._total

    @property
    def worst_case(self) -> int:
        """Maximum cost of a single event (operation, or whole batch)."""
        return self._max

    @property
    def amortized(self) -> float:
        """Average cost per logical operation over the whole run."""
        if not self._operations:
            return 0.0
        return self._total / self._operations

    # ------------------------------------------------------------------
    # Batch statistics
    # ------------------------------------------------------------------
    @property
    def batches(self) -> int:
        """Number of recorded multi-operation batch events."""
        return sum(1 for weight in self._weights if weight > 1)

    def batch_statistics(self) -> dict[str, float]:
        """Per-batch cost statistics (empty dict when no batch was recorded)."""
        pairs = [
            (cost, weight)
            for cost, weight in zip(self._costs, self._weights)
            if weight > 1
        ]
        if not pairs:
            return {}
        total = sum(cost for cost, _ in pairs)
        elements = sum(weight for _, weight in pairs)
        return {
            "batches": float(len(pairs)),
            "mean_batch_size": elements / len(pairs),
            "amortized_per_batch": total / len(pairs),
            "amortized_per_element": total / elements,
            "worst_batch": float(max(cost for cost, _ in pairs)),
        }

    # ------------------------------------------------------------------
    # Query (read) statistics
    # ------------------------------------------------------------------
    @property
    def queries(self) -> int:
        """Total read operations recorded (all kinds)."""
        return sum(self._query_counts.values())

    @property
    def query_items(self) -> int:
        """Total elements touched by the recorded reads."""
        return sum(self._query_items.values())

    def query_statistics(self) -> dict[str, float]:
        """Per-kind read statistics (empty dict when no query was recorded)."""
        if not self._query_counts:
            return {}
        stats: dict[str, float] = {"queries": float(self.queries)}
        for kind in sorted(self._query_counts):
            stats[f"{kind}_queries"] = float(self._query_counts[kind])
            stats[f"{kind}_items"] = float(self._query_items[kind])
        return stats

    # ------------------------------------------------------------------
    # Structural (restructure) statistics
    # ------------------------------------------------------------------
    @property
    def restructures(self) -> int:
        """Total structural events recorded (splits + merges + …)."""
        return sum(self._restructures.values())

    @property
    def restructure_moves(self) -> int:
        """Total element moves attributed to structural events."""
        return sum(self._restructure_moves.values())

    def structure_statistics(self) -> dict[str, float]:
        """Per-kind structural statistics (empty dict when none recorded)."""
        stats: dict[str, float] = {}
        for kind in sorted(self._restructures):
            stats[f"{kind}s"] = float(self._restructures[kind])
            stats[f"{kind}_moves"] = float(self._restructure_moves[kind])
        return stats

    @property
    def costs(self) -> Sequence[int]:
        return tuple(self._costs)

    def prefix_amortized(self) -> list[float]:
        """Average cost on every prefix (the paper's amortized notion)."""
        averages: list[float] = []
        running = 0
        for index, cost in enumerate(self._costs, start=1):
            running += cost
            averages.append(running / index)
        return averages

    def max_prefix_amortized(self) -> float:
        """Largest prefix average — bounds the amortized cost of the run."""
        prefix = self.prefix_amortized()
        return max(prefix) if prefix else 0.0

    # ------------------------------------------------------------------
    # Light amortization
    # ------------------------------------------------------------------
    def window_statistics(self, window: int) -> WindowStatistics:
        """Statistics of the most expensive contiguous window of length ``window``.

        The lightly-amortized guarantee of the paper says the total cost on
        any window of ``T`` operations is ``O(TC + n)``; this method returns
        the empirical worst window so the bound can be checked.
        """
        if window < 1:
            raise ValueError("window must be positive")
        costs = self._costs
        if not costs:
            return WindowStatistics(window=window, max_total=0, max_start=0, mean_total=0.0)
        window = min(window, len(costs))
        current = sum(costs[:window])
        best = current
        best_start = 0
        totals_sum = current
        count = 1
        for start in range(1, len(costs) - window + 1):
            current += costs[start + window - 1] - costs[start - 1]
            totals_sum += current
            count += 1
            if current > best:
                best = current
                best_start = start
        return WindowStatistics(
            window=window,
            max_total=best,
            max_start=best_start,
            mean_total=totals_sum / count,
        )

    def lightly_amortized_bound(self, window: int, slack: int) -> float:
        """Empirical lightly-amortized constant.

        Returns the smallest ``C`` such that the worst window of length
        ``window`` has total cost ``≤ C * window + slack`` (``slack`` plays
        the role of the additive ``O(n)`` term).
        """
        stats = self.window_statistics(window)
        effective = max(stats.max_total - slack, 0)
        return effective / stats.window if stats.window else 0.0

    # ------------------------------------------------------------------
    # Distributional statistics
    # ------------------------------------------------------------------
    @staticmethod
    def _weighted_nearest_rank(
        pairs: list[tuple[float, int]], fraction: float
    ) -> float:
        """Nearest-rank percentile over a weighted multiset of values.

        ``pairs`` is ``(value, weight)``; the percentile is taken over the
        expanded multiset in which each value appears ``weight`` times —
        without materializing the expansion.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        if not pairs:
            return 0.0
        pairs = sorted(pairs)
        total = sum(weight for _, weight in pairs)
        target = max(1, math.ceil(fraction * total))
        cumulative = 0
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= target:
                return value
        return pairs[-1][0]

    def percentile(self, fraction: float) -> float:
        """Per-operation cost percentile (``fraction`` in [0, 1], nearest-rank).

        Weight-aware: a batch event of weight ``w`` and total cost ``c``
        contributes ``w`` operations of cost ``c / w``, so batched and
        singleton runs report percentiles on the same per-operation scale
        (the scale of :attr:`amortized`).  For singleton-only runs this is
        exactly the historical event percentile.  See
        :meth:`event_percentile` for the whole-event view.
        """
        pairs = [
            (cost / weight, weight)
            for cost, weight in zip(self._costs, self._weights)
            if weight
        ]
        return self._weighted_nearest_rank(pairs, fraction)

    def event_percentile(self, fraction: float) -> int:
        """Cost percentile over recorded *events* (a whole batch = one sample)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        if not self._costs:
            return 0
        ordered = sorted(self._costs)
        index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[index]

    def tail_fraction(self, threshold: int) -> float:
        """Fraction of logical operations whose per-op cost is ≥ ``threshold``.

        Weight-aware, like :meth:`percentile`: a batch's operations each
        carry the batch's per-operation cost ``c / w``.
        """
        if not self._operations:
            return 0.0
        heavy = sum(
            weight
            for cost, weight in zip(self._costs, self._weights)
            if weight and cost / weight >= threshold
        )
        return heavy / self._operations

    def event_tail_fraction(self, threshold: int) -> float:
        """Fraction of recorded events whose total cost is ≥ ``threshold``."""
        if not self._costs:
            return 0.0
        heavy = sum(1 for cost in self._costs if cost >= threshold)
        return heavy / len(self._costs)

    # ------------------------------------------------------------------
    # Latency statistics
    # ------------------------------------------------------------------
    @property
    def latency_events(self) -> int:
        """Number of recorded events that carried a wall-clock latency."""
        return sum(1 for latency in self._latencies if latency is not None)

    @property
    def max_latency(self) -> float:
        """Largest single-event latency recorded (0.0 when none)."""
        observed = [
            latency for latency in self._latencies if latency is not None
        ]
        return max(observed) if observed else 0.0

    def latency_percentile(self, fraction: float) -> float:
        """Per-operation latency percentile (weight-aware nearest-rank).

        A batch event of weight ``w`` that took ``t`` seconds contributes
        ``w`` operations of latency ``t / w`` — the throughput-equivalent
        per-operation view, on the same scale for batched and singleton
        runs.  Events recorded without a latency are excluded.  See
        :meth:`event_latency_percentile` for whole-event latencies.
        """
        pairs = [
            (latency / weight, weight)
            for latency, weight in zip(self._latencies, self._weights)
            if latency is not None and weight
        ]
        return self._weighted_nearest_rank(pairs, fraction)

    def event_latency_percentile(self, fraction: float) -> float:
        """Latency percentile over whole events (a batch = one sample)."""
        pairs = [
            (latency, 1)
            for latency in self._latencies
            if latency is not None
        ]
        return self._weighted_nearest_rank(pairs, fraction)

    def latency_summary(self) -> dict[str, float]:
        """Latency percentile dict (empty when no latency was recorded).

        This is the **one** place latency keys are named, for every
        producer (the runner's scenario metrics, the service's
        ``latency_statistics()``, report tables): the canonical scheme is
        ``latency_p*`` for the weight-expanded per-operation view and
        ``latency_event_*`` for the whole-event view (a batch = one
        sample).  :data:`LATENCY_KEY_ALIASES` keeps the historical
        spellings (``latency_max`` for ``latency_event_max``) emitted
        alongside, so committed BENCH documents and older dashboards keep
        validating unchanged.

        All values are seconds and wall-clock derived — the benchmark
        comparator treats every ``latency_*`` metric as machine-dependent
        (warn-only), like ``elapsed_seconds``.
        """
        if not self.latency_events:
            return {}
        summary = {
            "latency_p50": self.latency_percentile(0.50),
            "latency_p99": self.latency_percentile(0.99),
            "latency_p999": self.latency_percentile(0.999),
            "latency_event_p50": self.event_latency_percentile(0.50),
            "latency_event_p99": self.event_latency_percentile(0.99),
            "latency_event_p999": self.event_latency_percentile(0.999),
            "latency_event_max": self.max_latency,
        }
        for alias, canonical in LATENCY_KEY_ALIASES.items():
            summary[alias] = summary[canonical]
        return summary

    # ------------------------------------------------------------------
    # Merging and summarizing
    # ------------------------------------------------------------------
    def merge(self, other: "CostTracker") -> "CostTracker":
        """Concatenate two runs into a new tracker (batch weights survive)."""
        merged = CostTracker()
        for tracker in (self, other):
            for cost, weight, latency in zip(
                tracker._costs, tracker._weights, tracker._latencies
            ):
                merged._record_event(cost, weight, latency)
            for kind, count in tracker._restructures.items():
                merged._restructures[kind] = (
                    merged._restructures.get(kind, 0) + count
                )
            for kind, moves in tracker._restructure_moves.items():
                merged._restructure_moves[kind] = (
                    merged._restructure_moves.get(kind, 0) + moves
                )
            for kind, count in tracker._query_counts.items():
                merged._query_counts[kind] = (
                    merged._query_counts.get(kind, 0) + count
                )
            for kind, items in tracker._query_items.items():
                merged._query_items[kind] = (
                    merged._query_items.get(kind, 0) + items
                )
        return merged

    def summary(self) -> dict[str, float]:
        """Dictionary summary used by the benchmark report tables."""
        data = {
            "operations": float(self.operations),
            "total_cost": float(self.total_cost),
            "amortized": self.amortized,
            "worst_case": float(self.worst_case),
            "p50": float(self.percentile(0.50)),
            "p99": float(self.percentile(0.99)),
            "p999": float(self.percentile(0.999)),
        }
        data.update(self.batch_statistics())
        data.update(self.structure_statistics())
        data.update(self.query_statistics())
        data.update(self.latency_summary())
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CostTracker(operations={self.operations}, amortized={self.amortized:.2f}, "
            f"worst_case={self.worst_case})"
        )
