"""The F-emulator: a simulated copy of ``F`` plus the actual array ``Ẽ_F``.

Section 3 of the paper splits the embedding's fast side in two:

* the **simulated copy of F** — a real instance of the fast algorithm that
  receives *every* operation of the original input in the original order.
  It never touches the physical array; it exists so that (a) the original
  input sequence is preserved from F's point of view (no input
  interference, Lemma 4) and (b) the emulator knows what state it should
  eventually reach;
* the **actual state** ``Ẽ_F`` — what the F-slots of the physical array
  really contain right now.  On the fast path the simulated moves are
  replayed onto the array immediately; on the slow path ``Ẽ_F`` lags behind
  and is brought forward by checkpointed rebuilds executed in
  ``Θ(E_R)``-cost chunks.

Deleted elements whose removal the emulator has not caught up with are kept
in ``Ẽ_F`` as *ghosts* (the paper: "the F-emulator will treat that slot as
containing the deleted element"); ghosts occupy an F-slot in the
bookkeeping but no physical element, so their rebuild steps cost nothing.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.exceptions import InvariantViolation
from repro.core.interface import ListLabeler
from repro.core.operations import Move, OperationResult
from repro.core.physical import PhysicalArray
from repro.core.rebuild import CLEANUP, INCORPORATE, PLACE, RebuildPlan, build_plan


class FEmulator:
    """Keeps ``Ẽ_F`` synchronized with the simulated copy of ``F``."""

    def __init__(self, simulated: ListLabeler, physical: PhysicalArray) -> None:
        self._simulated = simulated
        self._physical = physical
        self._shadow: list[Hashable | None] = [None] * simulated.num_slots
        self._shadow_index: dict[Hashable, int] = {}
        self._ghosts: set[Hashable] = set()
        self._plan: RebuildPlan | None = None
        # --- statistics for the Lemma 5/6 experiments -------------------
        self.rebuilds_started = 0
        self.rebuilds_completed = 0
        self.rebuild_spans: list[int] = []
        self._ops_in_current_rebuild = 0
        self.rebuild_cost = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def simulated(self) -> ListLabeler:
        return self._simulated

    @property
    def shadow(self) -> Sequence[Hashable | None]:
        """The emulator's view of the F-array (``Ẽ_F``), ghosts included."""
        return tuple(self._shadow)

    @property
    def ghosts(self) -> frozenset:
        return frozenset(self._ghosts)

    @property
    def has_pending_rebuild(self) -> bool:
        return self._plan is not None

    @property
    def plan(self) -> RebuildPlan | None:
        return self._plan

    def is_ghost(self, element: Hashable) -> bool:
        return element in self._ghosts

    def in_shadow(self, element: Hashable) -> bool:
        return element in self._shadow_index

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def apply_fast(self, moves: Iterable[Move]) -> None:
        """Replay the simulated copy's moves directly onto the F-slots.

        Only legal when there is no pending rebuild, in which case there are
        no buffered elements (Lemma 10), so an element travelling between two
        F-slots crosses at most dummy buffer slots and incurs no deadweight.
        """
        if self._plan is not None:
            raise InvariantViolation("fast path taken while a rebuild is pending")
        for move in moves:
            if move.is_placement:
                f_index = move.destination
                self._physical.put_element(self._physical.f_position(f_index), move.element)
                self._shadow_set(f_index, move.element)
            elif move.is_removal:
                f_index = move.source
                self._physical.take_element(self._physical.f_position(f_index))
                self._shadow_clear(f_index)
            else:
                src, dst = move.source, move.destination
                self._physical.move_element(
                    self._physical.f_position(src), self._physical.f_position(dst)
                )
                self._shadow_clear(src)
                self._shadow_set(dst, move.element)

    # ------------------------------------------------------------------
    # Slow-path bookkeeping
    # ------------------------------------------------------------------
    def mark_deleted(self, element: Hashable) -> None:
        """Record that a shadow element was physically removed (slow-path delete)."""
        if element in self._shadow_index:
            self._ghosts.add(element)

    def note_operation(self) -> None:
        """Count one operation toward the span of the current rebuild (Lemma 6)."""
        if self._plan is not None:
            self._ops_in_current_rebuild += 1

    # ------------------------------------------------------------------
    # Rebuild lifecycle
    # ------------------------------------------------------------------
    def diverged(self) -> bool:
        """Whether ``Ẽ_F`` differs from the simulated copy's current state."""
        if self._ghosts:
            return True
        simulated = self._simulated.slots()
        if len(simulated) != len(self._shadow):
            raise InvariantViolation("simulated copy changed its array size")
        return list(simulated) != self._shadow

    def start_rebuild(self) -> RebuildPlan:
        """Freeze the current simulated state as the checkpoint and plan for it."""
        if self._plan is not None:
            raise InvariantViolation("a rebuild is already pending")
        checkpoint = tuple(self._simulated.slots())
        self._plan = build_plan(self._shadow, checkpoint)
        self.rebuilds_started += 1
        self._ops_in_current_rebuild = 0
        return self._plan

    def _finish_rebuild(self) -> None:
        self.rebuilds_completed += 1
        self.rebuild_spans.append(self._ops_in_current_rebuild)
        self._ops_in_current_rebuild = 0
        self._plan = None

    def estimated_remaining_cost(self) -> int:
        """Lower bound on the cost of finishing the pending rebuild."""
        if self._plan is None:
            return 0
        live = 0
        for step in self._plan.pending_steps():
            if step.kind == CLEANUP:
                continue
            if self._physical.contains(step.element):
                live += 1
        return live

    # ------------------------------------------------------------------
    # Rebuild execution
    # ------------------------------------------------------------------
    def rebuild_work(self, budget: int, *, finish: bool = False) -> int:
        """Execute pending rebuild steps until ``budget`` cost is spent.

        With ``finish=True`` the budget is ignored and the plan is driven to
        completion (used by steps (ii) and (iv) of the slow path, which the
        embedding only invokes when the estimated remaining cost is below
        ``E_R``).  Returns the cost incurred (deadweight included).
        """
        plan = self._plan
        if plan is None:
            return 0
        spent = 0
        while not plan.is_complete and (finish or spent < budget):
            spent += self._execute_step(plan.advance())
        self.rebuild_cost += spent
        if plan.is_complete:
            self._finish_rebuild()
        return spent

    def _execute_step(self, step) -> int:
        if step.kind == CLEANUP:
            index = self._shadow_index.get(step.element)
            if index is not None:
                self._shadow_clear(index)
            self._ghosts.discard(step.element)
            return 0

        target = step.target_f_index
        assert target is not None
        if step.kind == PLACE:
            old_index = self._shadow_index.get(step.element)
            if not self._physical.contains(step.element):
                # The element became a ghost after the plan was frozen: the
                # move is pure bookkeeping.
                if old_index is not None:
                    self._shadow_clear(old_index)
                self._shadow_set(target, step.element)
                return 0
            cost = self._physical.chain_move(
                self._physical.position_of(step.element), target
            )
            if old_index is not None:
                self._shadow_clear(old_index)
            self._shadow_set(target, step.element)
            return cost

        if step.kind == INCORPORATE:
            if not self._physical.contains(step.element):
                # Buffered then deleted before incorporation: record a ghost.
                self._shadow_set(target, step.element)
                self._ghosts.add(step.element)
                return 0
            cost = self._physical.chain_move(
                self._physical.position_of(step.element), target
            )
            self._shadow_set(target, step.element)
            return cost

        raise InvariantViolation(f"unknown rebuild step kind {step.kind!r}")

    # ------------------------------------------------------------------
    # Shadow maintenance
    # ------------------------------------------------------------------
    def _shadow_set(self, index: int, element: Hashable) -> None:
        current = self._shadow[index]
        if current is not None and current != element:
            raise InvariantViolation(
                f"shadow slot {index} already holds {current!r}; cannot store {element!r}"
            )
        self._shadow[index] = element
        self._shadow_index[element] = index

    def _shadow_clear(self, index: int) -> None:
        element = self._shadow[index]
        if element is None:
            return
        self._shadow[index] = None
        if self._shadow_index.get(element) == index:
            del self._shadow_index[element]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Check that the F-slots of the array match ``Ẽ_F`` (ghosts excepted)."""
        contents = self._physical.f_contents()
        if len(contents) != len(self._shadow):
            raise InvariantViolation("the number of F-slots changed")
        for index, (physical_item, shadow_item) in enumerate(zip(contents, self._shadow)):
            if shadow_item is None or shadow_item in self._ghosts:
                if physical_item is not None and physical_item != shadow_item:
                    raise InvariantViolation(
                        f"F-slot {index} holds {physical_item!r} but Ẽ_F expects it empty"
                    )
                continue
            if physical_item != shadow_item:
                raise InvariantViolation(
                    f"F-slot {index} holds {physical_item!r} but Ẽ_F expects {shadow_item!r}"
                )
