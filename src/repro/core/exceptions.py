"""Exception hierarchy for the list-labeling library.

All library-specific errors derive from :class:`LabelerError` so callers can
catch a single base class.  The hierarchy intentionally mirrors the three
failure modes a list-labeling data structure can hit:

* a caller supplied an out-of-range rank (:class:`RankError`);
* the structure was asked to hold more elements than its declared capacity
  (:class:`CapacityError`);
* an internal invariant was violated (:class:`InvariantViolation`) — this is
  always a bug in the implementation, never a user error, and the validation
  helpers in :mod:`repro.core.validation` raise it eagerly in tests.
"""

from __future__ import annotations


class LabelerError(Exception):
    """Base class for all errors raised by the repro library."""


class RankError(LabelerError, ValueError):
    """An operation referenced a rank outside the valid range.

    Insertion ranks must lie in ``[1, size + 1]`` and deletion ranks in
    ``[1, size]`` where ``size`` is the number of stored elements, following
    Definition 1 of the paper.
    """

    def __init__(self, rank: int, size: int, operation: str) -> None:
        self.rank = rank
        self.size = size
        self.operation = operation
        super().__init__(
            f"{operation} rank {rank} out of range for a structure holding "
            f"{size} element(s)"
        )


class BatchError(LabelerError, ValueError):
    """A batch operation was malformed.

    Raised when a batch references an out-of-range rank against the
    pre-batch state, when a delete batch names the same rank twice, or when
    an insert batch would push the structure past its capacity.  The whole
    batch is validated before any element moves, so a rejected batch leaves
    the structure untouched.
    """


class CapacityError(LabelerError):
    """The structure was asked to store more elements than its capacity."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        super().__init__(f"structure is full (capacity {capacity})")


class InvariantViolation(LabelerError, AssertionError):
    """An internal invariant of a list-labeling structure was violated."""
