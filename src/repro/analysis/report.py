"""Plain-text tables for the benchmark reports.

The benchmarks print their results as aligned ASCII tables (one per
experiment) so the EXPERIMENTS.md "measured" columns can be pasted straight
from the bench output.  No third-party dependency is used.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_cell(value: object, precision: int = 2) -> str:
    if isinstance(value, float):
        # Sub-precision magnitudes (µs-scale latencies in seconds) would
        # all render as 0.00…; switch to scientific notation instead.
        if value and abs(value) < 10.0**-precision:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [format_cell(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered_rows))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_scenario_table(document: Mapping, *, title: str | None = None) -> str:
    """Render a ``BENCH_*.json`` baseline document as one aligned table.

    One row per ``(scenario, n)`` entry; the column set is the union of the
    scenario metric dicts, with the identifying columns first.  Used by
    ``python -m repro.perf`` and to regenerate the README throughput table.
    """
    rows: list[dict] = []
    columns: list[str] = ["scenario", "n"]
    for name, entry in document.get("scenarios", {}).items():
        for size, metrics in sorted(
            entry.get("sizes", {}).items(), key=lambda item: int(item[0])
        ):
            row: dict = {"scenario": name, "n": size}
            row.update(metrics)
            rows.append(row)
            for column in metrics:
                if column not in columns:
                    columns.append(column)
    if title is None:
        suite = document.get("suite", "?")
        title = (
            f"suite={suite} seed={document.get('seed')} "
            f"schema={document.get('schema_version')} "
            f"quick={document.get('quick')}"
        )
    return format_table(rows, columns=columns, title=title, precision=4)
