"""Growth-curve analysis: which power of ``log n`` does a cost follow?

The paper's results are separations between ``log n``, ``log^{3/2} n`` and
``log² n`` amortized costs.  Absolute constants are meaningless in a pure
Python cost model, but the *exponent* of the ``log`` is measurable: fit
``cost(n) ≈ a · (log₂ n)^p`` over a sweep of ``n`` and report ``p``.  The
experiments assert, e.g., that the classical PMA's exponent is close to 2
while the adaptive PMA's exponent on hammer workloads is close to 1.
"""

from __future__ import annotations

import math
from typing import Sequence


def estimate_log_exponent(sizes: Sequence[int], costs: Sequence[float]) -> float:
    """Least-squares estimate of ``p`` in ``cost ≈ a · (log₂ n)^p``.

    Performs an ordinary linear regression of ``log(cost)`` against
    ``log(log₂ n)``.  Sizes must be at least 4 so the inner logarithm is
    bounded away from zero; non-positive costs are clamped to a small value.
    """
    if len(sizes) != len(costs):
        raise ValueError("sizes and costs must have the same length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit an exponent")
    xs = []
    ys = []
    for size, cost in zip(sizes, costs):
        if size < 4:
            raise ValueError("sizes must be at least 4")
        xs.append(math.log(math.log2(size)))
        ys.append(math.log(max(cost, 1e-9)))
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("sizes are too close together to fit an exponent")
    return sxy / sxx


def growth_ratios(sizes: Sequence[int], costs: Sequence[float]) -> list[float]:
    """Cost ratios between consecutive sweep points (diagnostic output)."""
    ratios = []
    for previous, current in zip(costs, costs[1:]):
        ratios.append(current / previous if previous else float("inf"))
    return ratios


def normalized_by_log_power(
    sizes: Sequence[int], costs: Sequence[float], power: float
) -> list[float]:
    """``cost / (log₂ n)^power`` for each sweep point.

    If the costs genuinely grow like ``(log n)^power`` the returned values
    are roughly constant, which is an easy property for a test to assert.
    """
    return [cost / (math.log2(size) ** power) for size, cost in zip(sizes, costs)]
