"""Drive a list-labeling structure through a workload and measure its cost.

The runner owns the reference model (the sorted key sequence), synthesizes
keys for rank-only operations, forwards every operation to the structure
under test, and records per-operation element-move costs.  It can optionally
re-validate the structure's full state every ``validate_every`` operations,
which is how the integration tests exercise long mixed workloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable

from repro.core.cost import CostTracker
from repro.core.exceptions import InvariantViolation
from repro.core.interface import ListLabeler
from repro.core.validation import check_labeler
from repro.workloads.base import Workload, synthesize_key


@dataclass
class RunResult:
    """Everything measured while running one workload on one structure."""

    labeler: ListLabeler
    workload_name: str
    tracker: CostTracker
    elapsed_seconds: float
    final_keys: list[Hashable] = field(default_factory=list)

    @property
    def amortized_cost(self) -> float:
        return self.tracker.amortized

    @property
    def worst_case_cost(self) -> int:
        return self.tracker.worst_case

    @property
    def total_cost(self) -> int:
        return self.tracker.total_cost

    def summary(self) -> dict[str, float]:
        data = self.tracker.summary()
        data["elapsed_seconds"] = self.elapsed_seconds
        return data


def run_workload(
    labeler: ListLabeler,
    workload: Workload,
    *,
    validate_every: int = 0,
    stop_after: int | None = None,
) -> RunResult:
    """Run ``workload`` against ``labeler`` and record the move costs.

    ``validate_every`` > 0 re-checks the full structural invariants (sorted
    order, size, contents against the reference model) every that many
    operations — slow, only used by tests.  ``stop_after`` truncates the
    workload, which lets one workload definition serve several sweep sizes.
    """
    tracker = CostTracker()
    reference: list[Hashable] = []
    started = time.perf_counter()
    executed = 0

    for operation in workload:
        if stop_after is not None and executed >= stop_after:
            break
        if operation.is_insert:
            key = operation.key
            if key is None:
                key = synthesize_key(reference, operation.rank)
            result = labeler.insert(operation.rank, key)
            reference.insert(operation.rank - 1, key)
        else:
            result = labeler.delete(operation.rank)
            reference.pop(operation.rank - 1)
        tracker.record(result.cost)
        executed += 1
        if validate_every and executed % validate_every == 0:
            check_labeler(labeler, expected=reference)
            if list(labeler.elements()) != reference:
                raise InvariantViolation("structure diverged from the reference model")

    elapsed = time.perf_counter() - started
    return RunResult(
        labeler=labeler,
        workload_name=workload.name,
        tracker=tracker,
        elapsed_seconds=elapsed,
        final_keys=reference,
    )
