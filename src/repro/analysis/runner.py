"""Drive a list-labeling structure through a workload and measure its cost.

The runner owns the reference model (the sorted key sequence), synthesizes
keys for rank-only operations, forwards every operation to the structure
under test, and records per-operation element-move costs.  It can optionally
re-validate the structure's full state every ``validate_every`` operations,
which is how the integration tests exercise long mixed workloads.

Two execution modes are provided.  The **singleton** mode (``batch_size <=
1``) forwards one operation at a time, exactly as before.  The **batched**
mode groups the stream into same-kind batches (via
:meth:`repro.workloads.base.Workload.iter_batches`), converts each batch's
sequential ranks into the pre-batch ranks :meth:`ListLabeler.insert_batch` /
:meth:`~ListLabeler.delete_batch` expect, and records one cost event per
batch through :meth:`CostTracker.record_batch`.  Both modes maintain the
reference model as a :class:`repro.analysis.reference.ChunkedList` — a
blocked sorted list with ``O(√n)`` point updates — instead of a flat Python
list whose ``O(n)`` ``insert`` dominated wall-clock at scale.

**Latency capture.**  Both modes stamp every write event with its
wall-clock duration (the structure call, plus the WAL append in durable
mode) through :meth:`CostTracker.record`'s ``latency`` argument, so
``RunResult.summary()`` reports ``latency_p50/p99/p999`` next to the
move-cost percentiles.  The clock is injectable (``clock=``) — tests pass
a deterministic fake; the default is :func:`time.perf_counter`.

**Durable mode.**  Passing ``durable_dir`` write-ahead logs every applied
operation — with its synthesized key, and batches as single atomic frames —
into ``<durable_dir>/run-wal.jsonl`` through the store's
:class:`~repro.store.wal.WriteAheadLog` *before* it reaches the structure.
An interrupted run's acknowledged prefix can then be reproduced exactly on
a fresh structure with :func:`replay_run`, which is the same op-framing the
durable store uses for crash recovery.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Hashable, Sequence

from repro.analysis.reference import ChunkedList
from repro.core.cost import CostTracker
from repro.core.exceptions import InvariantViolation
from repro.core.interface import ListLabeler
from repro.core.operations import (
    COUNT_RANGE,
    LOOKUP,
    RANGE,
    SELECT,
    Operation,
)
from repro.core.validation import check_labeler
from repro.workloads.base import Workload, synthesize_key


@dataclass
class RunResult:
    """Everything measured while running one workload on one structure."""

    labeler: ListLabeler
    workload_name: str
    tracker: CostTracker
    elapsed_seconds: float
    final_keys: list[Hashable] = field(default_factory=list)
    #: Batch size the run used (1 = singleton execution).
    batch_size: int = 1
    #: Frames written to the durable run log (0 = durable mode off).
    wal_frames: int = 0
    #: Path of the durable run log, when one was written.
    durable_path: str | None = None

    @property
    def amortized_cost(self) -> float:
        return self.tracker.amortized

    @property
    def worst_case_cost(self) -> int:
        return self.tracker.worst_case

    @property
    def total_cost(self) -> int:
        return self.tracker.total_cost

    @property
    def ops_per_second(self) -> float:
        """Logical-operation throughput of the run (wall-clock derived).

        Reads count: a read-heavy workload's throughput is dominated by its
        queries, which the tracker records separately from the move-cost
        events.  For write-only runs this is unchanged.
        """
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return (
            self.tracker.operations + self.tracker.queries
        ) / self.elapsed_seconds

    def summary(self) -> dict[str, float]:
        data = self.tracker.summary()
        data["elapsed_seconds"] = self.elapsed_seconds
        data["ops_per_second"] = self.ops_per_second
        data["batch_size"] = float(self.batch_size)
        backend = getattr(self.labeler, "physical_backend", None)
        if backend is not None:
            # The one non-numeric entry: which physical-array backend the
            # structure ran on (embedding-based labelers only).
            data["physical_backend"] = backend
        shard_statistics = getattr(self.labeler, "shard_statistics", None)
        if callable(shard_statistics):
            # Event counters (splits/merges/moves) must be run-scoped: the
            # tracker owns them (fed from the restructure-log slice of this
            # run), while the labeler's counters are lifetime totals that
            # would misattribute prior runs' work on a reused structure.
            # Only the state-shaped keys come from the labeler.
            stats = shard_statistics()
            for key in (
                "splits", "merges", "borrows", "rewrites", "restructure_moves"
            ):
                stats.pop(key, None)
            data.update(stats)
        if self.tracker.restructures:
            data["restructure_moves"] = float(self.tracker.restructure_moves)
        return data


#: File name of the durable run log inside ``durable_dir``.
RUN_WAL_FILENAME = "run-wal.jsonl"


class _RunJournal:
    """Write-ahead framing of a run's applied operations (durable mode)."""

    def __init__(self, durable_dir, sync_policy: str) -> None:
        from pathlib import Path

        from repro.store.wal import WriteAheadLog

        directory = Path(durable_dir)
        directory.mkdir(parents=True, exist_ok=True)
        self.path = directory / RUN_WAL_FILENAME
        self.wal = WriteAheadLog(self.path, sync_policy=sync_policy)
        report = self.wal.open()
        if report.frames:
            self.wal.close()
            raise ValueError(
                f"durable run log {self.path} already holds "
                f"{len(report.frames)} frame(s); replay or remove it first"
            )
        self.frames = 0

    def log(self, op: str, payload: dict) -> None:
        self.wal.append(op, payload)
        self.frames += 1

    def close(self) -> None:
        self.wal.close()


def run_workload(
    labeler: ListLabeler,
    workload: Workload,
    *,
    validate_every: int = 0,
    stop_after: int | None = None,
    batch_size: int = 1,
    durable_dir=None,
    durable_sync: str = "batch",
    clock: Callable[[], float] | None = None,
    parallel=None,
    max_workers: int | None = None,
) -> RunResult:
    """Run ``workload`` against ``labeler`` and record the move costs.

    ``validate_every`` > 0 re-checks the full structural invariants (sorted
    order, size, contents against the reference model) every that many
    operations — slow, only used by tests.  ``stop_after`` truncates the
    workload, which lets one workload definition serve several sweep sizes.
    ``batch_size`` > 1 switches to batched execution: operations are grouped
    into same-kind batches of up to that many and forwarded through
    ``insert_batch`` / ``delete_batch``.  ``durable_dir`` write-ahead logs
    every applied operation (see the module docstring); ``durable_sync``
    sets the log's fsync policy (``"always"``/``"batch"``/``"never"``).
    ``clock`` overrides the per-operation latency clock (deterministic
    fakes in tests); the default is :func:`time.perf_counter`.
    ``parallel`` / ``max_workers`` attach a
    :class:`~repro.core.parallel.ShardPool` to the labeler for the
    duration of the run (detached — and closed, when owned — afterwards),
    so batched execution against a sharded structure fans its per-shard
    sub-batches out across workers; labelers without a ``set_parallel``
    hook run serially as before.
    """
    from repro.core.parallel import resolve_pool

    if clock is None:
        clock = time.perf_counter
    pool, owns_pool = resolve_pool(parallel, max_workers)
    attach = getattr(labeler, "set_parallel", None)
    if pool is not None and attach is not None:
        attach(pool)
    tracker = CostTracker()
    reference = ChunkedList(
        block_size=max(8, math.isqrt(max(1, workload.operations)))
    )
    journal = (
        _RunJournal(durable_dir, durable_sync) if durable_dir is not None else None
    )
    # Sharded structures log their splits/merges; only events appended
    # during this run are attributed to it.
    restructure_log = getattr(labeler, "restructure_log", None)
    restructures_before = len(restructure_log) if restructure_log is not None else 0
    started = time.perf_counter()

    try:
        if batch_size > 1:
            _run_batched(
                labeler, workload, tracker, reference,
                batch_size=batch_size,
                validate_every=validate_every,
                stop_after=stop_after,
                journal=journal,
                clock=clock,
            )
        else:
            _run_singleton(
                labeler, workload, tracker, reference,
                validate_every=validate_every,
                stop_after=stop_after,
                journal=journal,
                clock=clock,
            )
    finally:
        if journal is not None:
            journal.close()
        if pool is not None:
            if attach is not None:
                attach(None)
            if owns_pool:
                pool.close()

    elapsed = time.perf_counter() - started
    if restructure_log is not None:
        for kind, moves in restructure_log[restructures_before:]:
            tracker.record_restructure(kind, moves)
    return RunResult(
        labeler=labeler,
        workload_name=workload.name,
        tracker=tracker,
        elapsed_seconds=elapsed,
        final_keys=reference.to_list(),
        batch_size=max(1, batch_size),
        wal_frames=journal.frames if journal is not None else 0,
        durable_path=str(journal.path) if journal is not None else None,
    )


def replay_run(durable_dir, labeler: ListLabeler) -> RunResult:
    """Reapply a durable run log to a fresh structure.

    Replays the acknowledged frames of a (possibly interrupted) durable
    run in order — singleton inserts/deletes with their recorded keys,
    batch frames through the batch API — and returns a :class:`RunResult`
    measuring the replay.  With the same starting structure this
    reproduces the original run's state exactly.
    """
    from pathlib import Path

    from repro.store.wal import WriteAheadLog

    path = Path(durable_dir) / RUN_WAL_FILENAME
    if not path.exists():
        # Opening would create an empty log as a side effect and report a
        # "successful" zero-op replay — a mistyped directory must fail.
        raise FileNotFoundError(f"no durable run log at {path}")
    wal = WriteAheadLog(path, sync_policy="never")
    report = wal.open()
    wal.close()
    tracker = CostTracker()
    started = time.perf_counter()
    for frame in report.frames:
        op = frame["op"]
        if op == "ins":
            tracker.record(labeler.insert(frame["rank"], frame["key"]).cost)
        elif op == "del":
            tracker.record(labeler.delete(frame["rank"]).cost)
        elif op == "ins_batch":
            items = [(rank, key) for rank, key in frame["items"]]
            result = labeler.insert_batch(items)
            tracker.record_batch(result.cost, result.count)
        elif op == "del_batch":
            result = labeler.delete_batch(frame["ranks"])
            tracker.record_batch(result.cost, result.count)
        else:
            raise ValueError(f"unknown run-log op {op!r}")
    elapsed = time.perf_counter() - started
    return RunResult(
        labeler=labeler,
        workload_name=f"replay({path})",
        tracker=tracker,
        elapsed_seconds=elapsed,
        final_keys=list(labeler.elements()),
        wal_frames=len(report.frames),
        durable_path=str(path),
    )


def _validate(labeler: ListLabeler, reference: ChunkedList) -> None:
    # check_contents (inside check_labeler) raises InvariantViolation when
    # the structure diverges from the reference model.
    check_labeler(labeler, expected=reference.to_list())


def _execute_read(
    labeler: ListLabeler,
    reference: ChunkedList,
    operation: Operation,
    tracker: CostTracker,
) -> None:
    """Serve one read op and verify it against the reference model inline.

    Every query is checked as it runs — a wrong answer raises
    :class:`InvariantViolation` immediately, so a completed read-heavy run
    certifies every one of its reads.  Reads are recorded through
    :meth:`CostTracker.record_query` (they never contribute element moves).
    Interval bounds are clamped to the current size, so a workload may
    address ``[rank, rank + span - 1]`` without tracking deletions exactly.
    """
    size = len(reference)
    kind = operation.kind
    if size == 0 or operation.rank > size:
        tracker.record_query(kind, 0)
        return
    rank = operation.rank
    if kind == SELECT:
        value = labeler.select(rank)
        expected = reference.select(rank)
        if value != expected:
            raise InvariantViolation(
                f"select({rank}) returned {value!r}, reference holds {expected!r}"
            )
        tracker.record_query(kind, 1)
    elif kind == LOOKUP:
        key = operation.key if operation.key is not None else reference.select(rank)
        found_rank = labeler.rank_of(key)
        slot = labeler.slot_of(key)
        if found_rank != rank:
            raise InvariantViolation(
                f"lookup({key!r}) resolved to rank {found_rank}, expected {rank}"
            )
        if labeler.slot_of_rank(rank) != slot:
            raise InvariantViolation(
                f"lookup({key!r}) label {slot} disagrees with slot_of_rank"
            )
        tracker.record_query(kind, 1)
    elif kind == RANGE:
        hi = min(operation.end_rank, size)
        expected = reference.range_ranks(rank, hi)
        got: list = []
        for value in labeler.iter_from(rank):
            got.append(value)
            if len(got) >= hi - rank + 1:
                break
        if got != expected:
            raise InvariantViolation(
                f"range({rank}, {hi}) diverged from the reference model"
            )
        tracker.record_query(kind, len(got))
    elif kind == COUNT_RANGE:
        hi = min(operation.end_rank, size)
        count = labeler.count_rank_range(rank, hi)
        expected_count = reference.count_range(rank, hi)
        if count != expected_count:
            raise InvariantViolation(
                f"count_range({rank}, {hi}) returned {count}, "
                f"reference counts {expected_count}"
            )
        tracker.record_query(kind, count)
    else:  # pragma: no cover - the operation model validates kinds
        raise ValueError(f"unknown read kind {kind!r}")


def _run_singleton(
    labeler: ListLabeler,
    workload: Workload,
    tracker: CostTracker,
    reference: ChunkedList,
    *,
    validate_every: int,
    stop_after: int | None,
    journal: _RunJournal | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> None:
    executed = 0
    for operation in workload:
        if stop_after is not None and executed >= stop_after:
            break
        if operation.is_read:
            _execute_read(labeler, reference, operation, tracker)
            executed += 1
            if validate_every and executed % validate_every == 0:
                _validate(labeler, reference)
            continue
        if operation.is_insert:
            key = operation.key
            if key is None:
                key = synthesize_key(reference, operation.rank)
            started = clock()
            if journal is not None:
                journal.log("ins", {"rank": operation.rank, "key": key})
            result = labeler.insert(operation.rank, key)
            latency = clock() - started
            reference.insert(operation.rank - 1, key)
        else:
            started = clock()
            if journal is not None:
                journal.log("del", {"rank": operation.rank})
            result = labeler.delete(operation.rank)
            latency = clock() - started
            reference.pop(operation.rank - 1)
        tracker.record(result.cost, latency=max(0.0, latency))
        executed += 1
        if validate_every and executed % validate_every == 0:
            _validate(labeler, reference)


def _run_batched(
    labeler: ListLabeler,
    workload: Workload,
    tracker: CostTracker,
    reference: ChunkedList,
    *,
    batch_size: int,
    validate_every: int,
    stop_after: int | None,
    journal: _RunJournal | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> None:
    executed = 0
    next_check = validate_every if validate_every else None
    for batch in workload.iter_batches(batch_size):
        if stop_after is not None:
            if executed >= stop_after:
                break
            batch = batch[: stop_after - executed]
        if not batch:
            continue
        if batch[0].is_read:
            # Reads pass through one at a time: batching buys nothing for
            # side-effect-free operations, and the inline verification
            # wants each query against the current reference state.
            for operation in batch:
                _execute_read(labeler, reference, operation, tracker)
        elif batch[0].is_insert:
            started = clock()
            result = _execute_insert_batch(labeler, reference, batch, journal)
            latency = clock() - started
            tracker.record_batch(
                result.cost, result.count, latency=max(0.0, latency)
            )
        else:
            started = clock()
            result = _execute_delete_batch(labeler, reference, batch, journal)
            latency = clock() - started
            tracker.record_batch(
                result.cost, result.count, latency=max(0.0, latency)
            )
        executed += len(batch)
        if next_check is not None and executed >= next_check:
            _validate(labeler, reference)
            next_check = (executed // validate_every + 1) * validate_every


def _execute_insert_batch(
    labeler: ListLabeler,
    reference: ChunkedList,
    batch: Sequence[Operation],
    journal: _RunJournal | None = None,
):
    """Forward a run of insertions as one ``insert_batch`` call.

    The workload's ranks are *sequential* (each against the state left by
    the previous operation); the batch API wants ranks against the
    *pre-batch* state.  The conversion tracks where each pending key lands
    in the final sequence: the ``j``-th pending entry (in final order) at
    final position ``p_j`` has pre-batch rank ``p_j - j``.
    """
    positions: list[int] = []  # final sequence positions of pending keys
    keys: list[Hashable] = []
    for operation in batch:
        sequential_rank = operation.rank
        key = operation.key
        if key is None:
            key = _synthesize_mid_batch(reference, positions, keys, sequential_rank)
        index = bisect.bisect_left(positions, sequential_rank)
        for later in range(index, len(positions)):
            positions[later] += 1
        positions.insert(index, sequential_rank)
        keys.insert(index, key)
    items = [(positions[j] - j, keys[j]) for j in range(len(keys))]
    if journal is not None:
        journal.log("ins_batch", {"items": [[rank, key] for rank, key in items]})
    result = labeler.insert_batch(items)
    for j, key in enumerate(keys):
        # Ascending final positions: all j earlier entries are already in,
        # so inserting at position - 1 reproduces the final sequence.
        reference.insert(positions[j] - 1, key)
    return result


class _MergedView:
    """Read-only view of reference ⊎ pending batch entries, in final order.

    Lets :func:`synthesize_key` generate mid-batch keys against the state
    the sequence *will* have, without materializing it.
    """

    def __init__(
        self, reference: ChunkedList, positions: list[int], keys: list[Hashable]
    ) -> None:
        self._reference = reference
        self._positions = positions
        self._keys = keys

    def __len__(self) -> int:
        return len(self._reference) + len(self._positions)

    def __getitem__(self, index: int) -> Hashable:
        position = index + 1
        pending = bisect.bisect_left(self._positions, position)
        if pending < len(self._positions) and self._positions[pending] == position:
            return self._keys[pending]
        # ``pending`` batch entries sit before this position.
        return self._reference[index - pending]


def _synthesize_mid_batch(
    reference: ChunkedList,
    positions: list[int],
    keys: list[Hashable],
    rank: int,
) -> Fraction:
    """A key for sequential ``rank`` against reference ⊎ pending entries."""
    return synthesize_key(_MergedView(reference, positions, keys), rank)


def _execute_delete_batch(
    labeler: ListLabeler,
    reference: ChunkedList,
    batch: Sequence[Operation],
    journal: _RunJournal | None = None,
):
    """Forward a run of deletions as one ``delete_batch`` call.

    A sequential delete rank ``s`` maps to the smallest pre-batch rank
    ``p`` with ``p - |{deleted < p}| = s``, found by iterating
    ``p ← s + |{deleted ≤ p}|`` to its fixed point.
    """
    deleted: list[int] = []  # pre-batch ranks, kept sorted
    for operation in batch:
        sequential_rank = operation.rank
        pre_rank = sequential_rank
        while True:
            shifted = sequential_rank + bisect.bisect_right(deleted, pre_rank)
            if shifted == pre_rank:
                break
            pre_rank = shifted
        bisect.insort(deleted, pre_rank)
    if journal is not None:
        journal.log("del_batch", {"ranks": list(deleted)})
    result = labeler.delete_batch(deleted)
    for rank in reversed(deleted):
        reference.pop(rank - 1)
    return result
