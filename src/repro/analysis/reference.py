"""A blocked sequence: the runner's reference model at ``O(√n)`` per update.

The workload runner maintains a ground-truth copy of the stored key sequence
to synthesize keys and validate the structure under test.  A flat Python
``list`` pays ``O(n)`` per ``insert``/``pop`` — at a million operations that
reference model, not the structure being measured, dominates wall-clock.
:class:`ChunkedList` stores the sequence as a list of contiguous blocks of
``Θ(√n)`` elements each, so locating an index costs ``O(√n)`` (a linear walk
over ``O(√n)`` blocks) and the shift inside the hit block costs ``O(√n)``
too.  Only the operations the runner needs are provided; ``to_list()``
materializes the sequence when a plain list is required.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence


class ChunkedList:
    """A mutable sequence of blocks with ``O(√n)`` insert/pop by index."""

    def __init__(
        self, iterable: Iterable = (), *, block_size: int | None = None
    ) -> None:
        """``block_size`` pins the block capacity; by default it tracks √n.

        Passing an expected final size as ``ChunkedList(block_size=
        int(math.isqrt(expected)))`` avoids re-tuning churn on large runs.
        """
        self._fixed_block = block_size is not None
        self._cap = max(8, block_size) if block_size is not None else 8
        self._blocks: list[list] = []
        self._len = 0
        for value in iterable:
            self.insert(self._len, value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator:
        for block in self._blocks:
            yield from block

    def __getitem__(self, index: int):
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError(f"index {index} out of range (length {self._len})")
        block_index, offset = self._locate(index)
        return self._blocks[block_index][offset]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (ChunkedList, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ChunkedList(length={self._len}, blocks={len(self._blocks)})"

    def to_list(self) -> list:
        """The whole sequence as a plain list."""
        return [value for block in self._blocks for value in block]

    # ------------------------------------------------------------------
    # Read (query) reference operations — the runner and the differential
    # suites check labeler reads against these.
    # ------------------------------------------------------------------
    def select(self, rank: int):
        """The value of the given 1-based rank (the labeler ``select`` twin)."""
        if not 1 <= rank <= self._len:
            raise IndexError(f"rank {rank} out of range (length {self._len})")
        return self[rank - 1]

    def iter_from(self, rank: int) -> Iterator:
        """Lazily yield the values of ranks ``rank, rank+1, …``.

        One block locate, then a streaming walk — the rank-domain twin of
        the labeler cursor, at ``O(√n)`` seek instead of ``O(log m)``.
        ``rank == len + 1`` yields nothing.
        """
        if not 1 <= rank <= self._len + 1:
            raise IndexError(f"rank {rank} out of range (length {self._len})")
        if rank > self._len:
            return
        block_index, offset = self._locate(rank - 1)
        blocks = self._blocks
        yield from blocks[block_index][offset:]
        for later in range(block_index + 1, len(blocks)):
            yield from blocks[later]

    def range_ranks(self, lo: int, hi: int) -> list:
        """Values with ranks in ``[lo, hi]`` (inclusive, 1-based, clamped)."""
        lo = max(1, lo)
        hi = min(self._len, hi)
        if hi < lo:
            return []
        out = []
        for value in self.iter_from(lo):
            out.append(value)
            if len(out) >= hi - lo + 1:
                break
        return out

    def count_range(self, lo: int, hi: int) -> int:
        """Number of stored ranks in ``[lo, hi]`` (inclusive, clamped)."""
        lo = max(1, lo)
        hi = min(self._len, hi)
        return max(0, hi - lo + 1)

    # ------------------------------------------------------------------
    def _locate(self, index: int) -> tuple[int, int]:
        """Block index and offset of sequence position ``index``."""
        remaining = index
        for block_index, block in enumerate(self._blocks):
            if remaining < len(block):
                return block_index, remaining
            remaining -= len(block)
        # Only reachable for index == len when appending.
        return len(self._blocks) - 1, remaining

    def _retune(self) -> None:
        if not self._fixed_block:
            self._cap = max(8, math.isqrt(max(1, self._len)))

    def insert(self, index: int, value) -> None:
        """Insert ``value`` so it ends up at sequence position ``index``."""
        if not 0 <= index <= self._len:
            raise IndexError(f"insert index {index} out of range (length {self._len})")
        if not self._blocks:
            self._blocks.append([value])
            self._len = 1
            return
        if index == self._len:
            block_index, block = len(self._blocks) - 1, self._blocks[-1]
            block.append(value)
        else:
            block_index, offset = self._locate(index)
            block = self._blocks[block_index]
            block.insert(offset, value)
        self._len += 1
        self._retune()
        if len(block) > 2 * self._cap:
            half = len(block) // 2
            self._blocks[block_index : block_index + 1] = [
                block[:half],
                block[half:],
            ]

    def pop(self, index: int):
        """Remove and return the value at sequence position ``index``."""
        if not 0 <= index < self._len:
            raise IndexError(f"pop index {index} out of range (length {self._len})")
        block_index, offset = self._locate(index)
        block = self._blocks[block_index]
        value = block.pop(offset)
        self._len -= 1
        if not block:
            del self._blocks[block_index]
        self._retune()
        return value

    def extend(self, values: Sequence) -> None:
        for value in values:
            self.insert(self._len, value)
