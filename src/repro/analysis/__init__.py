"""Measurement layer: run workloads against labelers and summarize costs.

The benchmark harness under ``benchmarks/`` is a thin wrapper around this
package: :func:`repro.analysis.runner.run_workload` drives a labeler through
a workload while recording the paper's cost metric (element moves) into a
:class:`repro.core.cost.CostTracker`; :mod:`repro.analysis.curves` estimates
growth exponents (is the amortized cost growing like ``log n`` or
``log² n``?); :mod:`repro.analysis.report` renders the comparison tables the
experiments print.
"""

from repro.analysis.runner import RunResult, replay_run, run_workload
from repro.analysis.curves import estimate_log_exponent, growth_ratios
from repro.analysis.reference import ChunkedList
from repro.analysis.report import format_scenario_table, format_table

__all__ = [
    "ChunkedList",
    "RunResult",
    "replay_run",
    "estimate_log_exponent",
    "format_scenario_table",
    "format_table",
    "growth_ratios",
    "run_workload",
]
