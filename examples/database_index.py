"""A clustered database index backed by the layered list-labeling structure.

The scenario the paper's introduction motivates: a database needs good
throughput, good response time (no huge stalls), and must handle common
patterns such as bulk loads — three properties no single classical
list-labeling algorithm offers at once.  This example builds a tiny ordered
key-value index on top of ``X ⊳ (Y ⊳ Z)`` and runs a mixed OLTP-ish workload
(bulk load, point inserts, range scan, deletes), reporting the cost profile.

Run with ``python examples/database_index.py``.
"""

from __future__ import annotations

import bisect
import random

from repro import make_corollary11_labeler
from repro.core import CostTracker


class OrderedIndex:
    """A minimal ordered index: keys kept sorted in a packed-memory layout."""

    def __init__(self, capacity: int) -> None:
        self._labeler = make_corollary11_labeler(capacity, seed=7)
        self._keys: list[int] = []  # mirror of the key order, for rank lookups
        self.costs = CostTracker()

    def insert(self, key: int) -> None:
        rank = bisect.bisect_left(self._keys, key) + 1
        result = self._labeler.insert(rank, key)
        self._keys.insert(rank - 1, key)
        self.costs.record(result.cost)

    def insert_many(self, keys: list[int]) -> None:
        """Bulk-insert ``keys`` through the batch API (one cost event).

        Ranks are computed against the current state — exactly the
        pre-batch semantics of ``insert_batch`` — so a whole sorted
        partition lands in a single call.
        """
        items = [
            (bisect.bisect_left(self._keys, key) + 1, key) for key in sorted(keys)
        ]
        result = self._labeler.insert_batch(items)
        for key in keys:
            self._keys.insert(bisect.bisect_left(self._keys, key), key)
        self.costs.record_batch(result.cost, result.count)

    def delete(self, key: int) -> None:
        rank = bisect.bisect_left(self._keys, key) + 1
        result = self._labeler.delete(rank)
        self._keys.pop(rank - 1)
        self.costs.record(result.cost)

    def range_scan(self, low: int, high: int) -> list[int]:
        """Scan keys in [low, high] straight off the physical array."""
        return [key for key in self._labeler.elements() if low <= key <= high]

    def __len__(self) -> int:
        return len(self._keys)


def main() -> None:
    rng = random.Random(2024)
    index = OrderedIndex(capacity=4_000)

    # Phase 1: bulk load a sorted partition (the friendly case) in batches
    # of 100 keys, the way an LSM flush or partition import would arrive.
    partition = list(range(0, 2_000, 2))
    for start in range(0, len(partition), 100):
        index.insert_many(partition[start : start + 100])
    bulk_amortized = index.costs.amortized

    # Phase 2: OLTP churn — random point inserts and deletes.
    for _ in range(1_500):
        if rng.random() < 0.3 and len(index) > 100:
            index.delete(rng.choice(index._keys))
        else:
            index.insert(rng.randrange(0, 4_000_000))

    # Phase 3: a hot-spot burst (e.g. an auto-increment secondary key).
    for key in range(5_000_000, 5_000_400):
        index.insert(key)

    print("database index demo — layered list labeling as the storage layout")
    print(f"  keys stored                 : {len(index)}")
    print(f"  amortized cost after bulk   : {bulk_amortized:.2f} moves/op")
    print(f"  amortized cost overall      : {index.costs.amortized:.2f} moves/op")
    print(f"  worst single operation      : {index.costs.worst_case} moves")
    print(f"  p99 operation cost          : {index.costs.percentile(0.99)} moves")
    sample = index.range_scan(0, 50)
    print(f"  range scan [0, 50]          : {sample}")


if __name__ == "__main__":
    main()
