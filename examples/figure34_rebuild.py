"""Figures 3 and 4: rebuild intervals and the step-by-step interval rewrite.

The example drives an embedding into a state with a pending rebuild (the
F-emulator lags behind the simulated copy of F), prints the dirty intervals
of the plan (Figure 3), and then executes the rebuild one budget chunk at a
time, showing the F-emulator's array converging to the checkpoint
(Figure 4).

Run with ``python examples/figure34_rebuild.py``.
"""

from __future__ import annotations

from fractions import Fraction

from repro import ClassicalPMA, Embedding, NaiveLabeler
from repro.core.rebuild import _interval_boundaries


def show(label: str, state) -> None:
    cells = ["--" if item is None else str(item) for item in state]
    print(f"  {label:<22}: " + " ".join(f"{cell:>3}" for cell in cells))


def main() -> None:
    embedding = Embedding(
        capacity=16,
        fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        reliable_expected_cost=3,
        epsilon=0.3,
    )
    # Name elements by insertion order so the printed states are readable.
    for index in range(12):
        embedding.insert(1, 100 - index)

    emulator = embedding.emulator
    shadow = list(emulator.shadow)
    checkpoint = list(emulator.simulated.slots())

    print("Figure 3 — the F-emulator's array vs the pending checkpoint")
    show("state of Ẽ_F", shadow)
    show("target checkpoint C", checkpoint)
    intervals = _interval_boundaries(shadow, checkpoint)
    print(f"  dirty intervals (F-index ranges): {intervals}")
    print()

    print("Figure 4 — executing the rebuild in Θ(E_R) chunks")
    chunk = 0
    while emulator.has_pending_rebuild:
        spent = emulator.rebuild_work(embedding.e_r)
        chunk += 1
        show(f"after chunk {chunk} (cost {spent})", list(emulator.shadow))
        if chunk > 50:  # safety valve for the example
            break
    print()
    print("The F-emulator has caught up with the checkpoint; buffered elements")
    print(f"remaining in the R-shell: {embedding.buffered_elements}")


if __name__ == "__main__":
    main()
