"""Figure 2: a deadweight move, traced on a tiny hand-built array.

An F-emulator element hops into the next free F-slot; the buffered elements
sitting in between are shifted (the *deadweight moves*) and the slot kinds
are relabelled so the R-shell's view never changes.

Run with ``python examples/figure2_deadweight.py``.
"""

from __future__ import annotations

from repro.core.physical import BUFFER, F_SLOT, R_EMPTY, PhysicalArray


def render(array: PhysicalArray) -> str:
    symbols = []
    for position in range(array.num_slots):
        kind = array.kind(position)
        element = array.element(position)
        if kind == R_EMPTY:
            symbols.append(" . ")
        elif kind == F_SLOT:
            symbols.append(f"[{element if element is not None else ' '}]")
        else:
            symbols.append(f"({element if element is not None else ' '})")
    return "".join(symbols)


def main() -> None:
    # Build the Figure 2 scenario: element x in an F-slot, a run of buffer
    # slots (some holding buffered elements, some dummies), then a free F-slot.
    layout = "f bbbb . b f".replace(" ", "")
    array = PhysicalArray(len(layout))
    kinds = {"f": F_SLOT, "b": BUFFER, ".": R_EMPTY}
    array.initialize_kinds((i, kinds[c]) for i, c in enumerate(layout))
    array.put_element(0, "x")
    for position, name in [(1, "r1"), (2, "r2"), (4, "r3"), (6, "r4")]:
        array.put_element(position, name)

    print("Figure 2 — moving x into the next free F-slot")
    print("  [e] = F-slot, (e) = buffer slot, . = R-empty")
    print()
    print("before:", render(array))
    cost = array.chain_move(0, 1)  # move x to F-index 1 (the free F-slot)
    print("after :", render(array))
    print()
    print(f"cost of the move     : {cost} (1 for x + {cost - 1} deadweight moves)")
    print(f"deadweight by element: {dict(array.deadweight_by_element)}")
    print("From the F-emulator's view x simply moved into the free slot; from the")
    print("R-shell's view nothing happened at all (the occupied set is unchanged).")


if __name__ == "__main__":
    main()
