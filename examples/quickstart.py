"""Quickstart: build the paper's layered list-labeling structure and use it.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import AdaptivePMA, ClassicalPMA, Embedding, make_corollary11_labeler


def main() -> None:
    # --- a single embedding F ⊳ R (Theorem 2) --------------------------------
    embedding = Embedding(
        capacity=1_000,
        fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
    )
    # Insert a few keys by rank (rank 1 = new smallest element).
    embedding.insert(1, "delta")
    embedding.insert(1, "alpha")
    embedding.insert(2, "charlie")
    embedding.insert(4, "echo")
    embedding.delete(3)  # remove "delta"
    print("stored elements (in order):", embedding.elements())
    print("labels (slot per element): ", embedding.labels())
    print("fast-path ops:", embedding.fast_operations, "| slow-path ops:", embedding.slow_operations)

    # --- the full Corollary 11 structure X ⊳ (Y ⊳ Z) --------------------------
    layered = make_corollary11_labeler(1_000, seed=42)
    total_cost = 0
    for index in range(500):
        # A hammer-insert workload: everything lands at the same rank.
        result = layered.insert(min(index + 1, 10), index)
        total_cost += result.cost
    print()
    print("Corollary 11 structure after 500 hammer inserts:")
    print("  amortized cost (element moves/op):", total_cost / 500)
    print("  buffered elements awaiting incorporation:", layered.buffered_elements)
    print("  elements stored:", len(layered), "in", layered.num_slots, "slots")


if __name__ == "__main__":
    main()
