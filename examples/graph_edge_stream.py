"""Streaming graph storage (PMA-based CSR) on top of the embedding.

Dynamic-graph systems (Packed CSR, Terrace, Teseo — cited in the paper's
introduction) store the edge list of every vertex contiguously in one big
packed-memory array so neighbourhood scans are cache friendly.  Edge streams
are highly skewed: a few "hot" vertices receive long bursts of edges, which
is exactly the hammer-insert pattern the adaptive side of the layered
structure is good at, while the reliable side keeps ingestion latency
bounded.

Run with ``python examples/graph_edge_stream.py``.
"""

from __future__ import annotations

import bisect
import random

from repro import make_corollary11_labeler
from repro.core import CostTracker


class EdgeStore:
    """Edges stored as (source, destination) pairs in lexicographic order."""

    def __init__(self, capacity: int) -> None:
        self._labeler = make_corollary11_labeler(capacity, seed=3)
        self._edges: list[tuple[int, int]] = []
        self.costs = CostTracker()

    def add_edge(self, source: int, destination: int) -> None:
        edge = (source, destination)
        rank = bisect.bisect_left(self._edges, edge) + 1
        result = self._labeler.insert(rank, edge)
        self._edges.insert(rank - 1, edge)
        self.costs.record(result.cost)

    def neighbours(self, source: int) -> list[int]:
        """All destinations of ``source`` — a contiguous scan of the array."""
        return [dst for (src, dst) in self._labeler.elements() if src == source]

    def __len__(self) -> int:
        return len(self._edges)


def main() -> None:
    rng = random.Random(7)
    store = EdgeStore(capacity=6_000)

    # A power-law-ish edge stream: vertex 0 is extremely hot (hammer pattern),
    # the rest of the edges are spread uniformly.
    hot_edges = 0
    for step in range(4_000):
        if rng.random() < 0.5:
            store.add_edge(0, 10_000 + step)  # burst on the hot vertex
            hot_edges += 1
        else:
            store.add_edge(rng.randrange(1, 500), rng.randrange(0, 10_000))

    print("streaming graph (packed CSR) demo")
    print(f"  edges ingested              : {len(store)}")
    print(f"  edges on the hot vertex     : {hot_edges}")
    print(f"  amortized ingest cost       : {store.costs.amortized:.2f} moves/edge")
    print(f"  worst single ingest         : {store.costs.worst_case} moves")
    print(f"  degree of hot vertex        : {len(store.neighbours(0))}")
    print(f"  sample neighbours of v17    : {store.neighbours(17)[:10]}")


if __name__ == "__main__":
    main()
