"""Figure 1: the three views of the embedding's array, rendered live.

Upper-case letters mark slots occupied by real elements; lower-case letters
mark free slots of the same kind (``F``/``f`` = F-emulator slot, ``B``/``b``
= buffer slot, ``.`` = R-empty slot).  The second line shows what the
F-emulator sees (only the F-slots) and the third what the R-shell sees
(every F-slot and buffer slot looks occupied, only ``.`` looks free).

Run with ``python examples/figure1_views.py``.
"""

from __future__ import annotations

from fractions import Fraction

from repro import ClassicalPMA, Embedding, NaiveLabeler


def main() -> None:
    embedding = Embedding(
        capacity=17,
        fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        reliable_expected_cost=3,
        epsilon=0.3,
    )
    # Front-load insertions so that some land on the slow path and end up in
    # buffer slots, exactly like the green occupied slots of Figure 1.
    key = Fraction(0)
    for _ in range(14):
        embedding.insert(1, key)
        key -= 1

    views = embedding.render_views()
    print("Figure 1 — three views of the same array")
    print()
    print("view of F ⊳ R      :", views["embedding"])
    print("view of F-emulator :", views["f_emulator"])
    print("view of R-shell    :", views["r_shell"])
    print()
    print(f"F-slots: {embedding.f_slot_count}   "
          f"buffer slots: {embedding.physical.buffer_count} "
          f"({embedding.buffered_elements} occupied)   "
          f"R-empty slots: {embedding.num_slots - embedding.f_slot_count - embedding.physical.buffer_count}")
    print(f"fast-path ops: {embedding.fast_operations}   slow-path ops: {embedding.slow_operations}")


if __name__ == "__main__":
    main()
