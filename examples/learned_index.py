"""Learning-augmented bulk ingestion (Corollary 12).

A learned model predicts where each incoming key will land in the final
sorted order (e.g. a CDF model trained on yesterday's data).  With good
predictions the learned labeler ingests at ~1 move per key; with a stale or
broken model the layered composition of Corollary 12 caps the damage at the
prediction-free bounds.

Run with ``python examples/learned_index.py``.
"""

from __future__ import annotations

from repro import LearnedLabeler, make_corollary12_labeler
from repro.analysis import run_workload
from repro.workloads import PredictedWorkload


def ingest(eta: int, n: int = 2_000) -> dict[str, float]:
    workload = PredictedWorkload(n, eta=eta, seed=13)
    learned_alone = run_workload(
        LearnedLabeler(n, predictor=workload.predictor), workload
    )
    layered = run_workload(
        make_corollary12_labeler(n, workload.predictor, seed=13), workload
    )
    return {
        "eta": eta,
        "learned amortized": learned_alone.amortized_cost,
        "learned worst": learned_alone.worst_case_cost,
        "layered amortized": layered.amortized_cost,
        "layered worst": layered.worst_case_cost,
    }


def main() -> None:
    print("learning-augmented ingestion (Corollary 12)")
    print(f"{'eta':>8} {'learned amort':>14} {'learned worst':>14} "
          f"{'layered amort':>14} {'layered worst':>14}")
    for eta in (0, 8, 64, 512, 2_000):
        row = ingest(eta)
        print(
            f"{row['eta']:>8} {row['learned amortized']:>14.2f} "
            f"{row['learned worst']:>14.0f} {row['layered amortized']:>14.2f} "
            f"{row['layered worst']:>14.0f}"
        )
    print()
    print("Good predictions (small eta) ingest at ~1 move per key; as eta grows")
    print("the cost degrades toward the classical O(log^2 n) behaviour, while the")
    print("layered structure keeps the worst single operation bounded throughout.")


if __name__ == "__main__":
    main()
