"""Tests for the adaptive (hotspot-skewing) PMA."""

from __future__ import annotations

from repro.algorithms import AdaptivePMA, ClassicalPMA
from repro.analysis import run_workload
from repro.workloads import HammerWorkload, RandomWorkload

from tests.conftest import ReferenceDriver


class TestHotspotTracking:
    def test_hits_concentrate_under_hammering(self):
        labeler = AdaptivePMA(256)
        driver = ReferenceDriver(labeler, seed=1)
        for _ in range(20):
            driver.insert(len(driver.reference) + 1)
        for _ in range(100):
            driver.insert(5)
        hits = labeler._leaf_hits
        total = sum(hits)
        assert total > 0
        # Hammering one rank concentrates the (decayed) hit mass on few leaves.
        assert max(hits) > 0.2 * total
        assert max(hits) > 5.0

    def test_targets_skew_toward_insertion_point(self):
        labeler = AdaptivePMA(256)
        targets = labeler._rebalance_targets(0, 64, 16, insert_slot_hint=0)
        gaps = [targets[0]] + [b - a - 1 for a, b in zip(targets, targets[1:])]
        # The gap right at the hinted insertion point should receive more free
        # slots than the average gap.
        assert gaps[1] >= (64 - 16) / 17

    def test_targets_remain_sorted_and_in_window(self):
        labeler = AdaptivePMA(128)
        targets = labeler._rebalance_targets(32, 96, 20, insert_slot_hint=10)
        assert targets == sorted(set(targets))
        assert all(32 <= t < 96 for t in targets)


class TestAdaptiveAdvantage:
    def test_beats_classical_on_hammer_inserts(self):
        """The adaptive PMA must beat the classical PMA by a clear factor on
        hammer-insert workloads (the [18] guarantee Corollary 11 consumes)."""
        n = 2048
        adaptive = run_workload(AdaptivePMA(n), HammerWorkload(n, seed=3))
        classical = run_workload(ClassicalPMA(n), HammerWorkload(n, seed=3))
        assert adaptive.amortized_cost < classical.amortized_cost / 1.5

    def test_not_much_worse_on_uniform_random(self):
        n = 1024
        adaptive = run_workload(AdaptivePMA(n), RandomWorkload(n, n, seed=3))
        classical = run_workload(ClassicalPMA(n), RandomWorkload(n, n, seed=3))
        assert adaptive.amortized_cost < 2.5 * classical.amortized_cost

    def test_consistency_under_mixed_workload(self):
        driver = ReferenceDriver(AdaptivePMA(96), seed=8)
        for _ in range(400):
            driver.random_operation()
        driver.check()
