"""Tests for the embedding ``F ⊳ R`` (Section 3, Theorem 2) and its lemmas."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    AdaptivePMA,
    ClassicalPMA,
    DeamortizedPMA,
    NaiveLabeler,
    RandomizedPMA,
)
from repro.core import Embedding
from repro.core.exceptions import CapacityError
from repro.core.physical import BUFFER, F_SLOT, R_EMPTY

from tests.conftest import COMPOSITE_FACTORIES, ReferenceDriver


def adaptive_classical(capacity: int, **kwargs) -> Embedding:
    return Embedding(
        capacity,
        fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        **kwargs,
    )


def naive_classical(capacity: int, **kwargs) -> Embedding:
    kwargs.setdefault("reliable_expected_cost", 32)
    return Embedding(
        capacity,
        fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        **kwargs,
    )


class TestConstruction:
    def test_slot_budget_matches_paper(self):
        """Array of (1+3ε)n slots: (1+ε)n F-slots, εn buffers, εn R-empty."""
        embedding = adaptive_classical(200, epsilon=0.25)
        kinds = embedding.physical.kinds()
        f_slots = sum(1 for kind in kinds if kind == F_SLOT)
        buffers = sum(1 for kind in kinds if kind == BUFFER)
        empty = sum(1 for kind in kinds if kind == R_EMPTY)
        assert f_slots == embedding.emulator.simulated.num_slots
        assert f_slots >= int(1.25 * 200)
        assert buffers >= int(0.25 * 200)
        assert empty >= int(0.25 * 200)
        assert f_slots + buffers + empty == embedding.num_slots

    def test_prescribed_num_slots(self):
        embedding = adaptive_classical(100, num_slots=160)
        assert embedding.num_slots == 160

    def test_too_little_slack_rejected(self):
        with pytest.raises(ValueError):
            adaptive_classical(100, num_slots=103)

    def test_capacity_enforced(self):
        embedding = adaptive_classical(4)
        for index in range(4):
            embedding.insert(index + 1, Fraction(index))
        with pytest.raises(CapacityError):
            embedding.insert(1, Fraction(-1))

    def test_default_expected_cost_is_log_squared(self):
        embedding = adaptive_classical(1024)
        assert embedding.e_r == pytest.approx(math.log2(1024) ** 2, rel=0.2)


class TestFastAndSlowPaths:
    def test_cheap_operations_take_fast_path(self):
        embedding = adaptive_classical(64)
        for index in range(20):
            embedding.insert(index + 1, Fraction(index))
        assert embedding.fast_operations == 20
        assert embedding.slow_operations == 0
        assert embedding.buffered_elements == 0

    def test_expensive_operations_are_buffered(self):
        embedding = naive_classical(256, reliable_expected_cost=8)
        driver = ReferenceDriver(embedding, seed=1)
        for _ in range(256):
            driver.insert(1)  # front insertions are Θ(n) for the naive F
        assert embedding.slow_operations > 0
        assert embedding.emulator.rebuilds_started > 0
        driver.check()
        embedding.check_consistency()

    def test_worst_case_cost_bounded_by_shell(self):
        """Theorem 2, worst-case cost: the embedding's spikes are O(W_R).

        The classical PMA on its own suffers Θ(n) rebalance spikes; embedded
        into a worst-case-bounded R (the deamortized PMA) those spikes are
        buffered and the embedding's worst operation stays far below them.
        """
        from repro.analysis import run_workload
        from repro.workloads import RandomWorkload

        capacity = 1024
        alone = run_workload(
            ClassicalPMA(capacity), RandomWorkload(capacity, capacity, seed=2)
        )
        embedding = Embedding(
            capacity,
            fast_factory=lambda cap, slots: ClassicalPMA(cap, slots),
            reliable_factory=lambda cap, slots: DeamortizedPMA(cap, slots),
        )
        embedded = run_workload(embedding, RandomWorkload(capacity, capacity, seed=2))
        assert embedded.worst_case_cost < alone.worst_case_cost / 2
        assert embedded.amortized_cost < 3 * alone.amortized_cost

    def test_amortized_cost_bounded_by_shell(self):
        """Theorem 2, general cost: amortized cost is O(E_R) even when F is bad."""
        capacity = 512
        embedding = naive_classical(capacity, reliable_expected_cost=16)
        driver = ReferenceDriver(embedding, seed=3)
        total = sum(driver.insert(1) for _ in range(capacity))
        naive_amortized = capacity / 2  # what F alone would pay per operation
        assert total / capacity < naive_amortized / 4

    def test_good_case_follows_fast_algorithm(self):
        """Theorem 2, good-case cost: when F is cheap the embedding is cheap."""
        capacity = 512
        embedding = adaptive_classical(capacity)
        driver = ReferenceDriver(embedding, seed=4)
        for _ in range(capacity):
            driver.insert(len(driver.reference) + 1)
        assert embedding.fast_operations > 0.9 * capacity
        driver.check()


class TestInvariants:
    @pytest.mark.parametrize("name", sorted(COMPOSITE_FACTORIES))
    def test_mixed_workload_consistency(self, name):
        driver = ReferenceDriver(COMPOSITE_FACTORIES[name](96), seed=7)
        for step in range(400):
            driver.random_operation(delete_probability=0.3)
            if step % 100 == 0:
                driver.check()
                driver.labeler.check_consistency()
        driver.check()
        driver.labeler.check_consistency()

    def test_lemma5_deadweight_bounded_per_element(self):
        """Lemma 5: every element suffers O(1) deadweight moves."""
        embedding = naive_classical(384, reliable_expected_cost=12)
        driver = ReferenceDriver(embedding, seed=5)
        for _ in range(384):
            driver.insert(driver.rng.randint(1, len(driver.reference) + 1))
        per_element = embedding.physical.deadweight_by_element
        assert max(per_element.values(), default=0) <= 8

    def test_lemma6_rebuild_spans_are_sublinear(self):
        """Lemma 6: each rebuild completes within o(n) operations."""
        capacity = 384
        embedding = naive_classical(capacity, reliable_expected_cost=12)
        driver = ReferenceDriver(embedding, seed=6)
        for _ in range(capacity):
            driver.insert(1)
        spans = embedding.emulator.rebuild_spans
        assert spans, "the workload must have triggered rebuilds"
        assert max(spans) < capacity / 2

    def test_lemma7_buffer_never_exhausted(self):
        """Lemma 7: buffered elements stay o(n) and never exhaust the buffer."""
        capacity = 384
        embedding = naive_classical(capacity, reliable_expected_cost=12)
        driver = ReferenceDriver(embedding, seed=7)
        for _ in range(capacity):
            driver.insert(1)
        assert embedding.max_buffered_elements < capacity // 4
        assert embedding.physical.dummy_buffer_count > 0

    def test_deletions_with_ghosts(self):
        embedding = naive_classical(128, reliable_expected_cost=8)
        driver = ReferenceDriver(embedding, seed=8)
        for _ in range(128):
            driver.insert(1)
        for _ in range(64):
            driver.delete(driver.rng.randint(1, len(driver.reference)))
        driver.check()
        embedding.check_consistency()

    def test_render_views_shapes(self):
        embedding = adaptive_classical(32)
        driver = ReferenceDriver(embedding, seed=9)
        for _ in range(20):
            driver.random_operation(delete_probability=0.2)
        views = embedding.render_views()
        assert len(views["embedding"]) == embedding.num_slots
        assert len(views["f_emulator"]) == embedding.emulator.simulated.num_slots
        assert len(views["r_shell"]) == embedding.num_slots


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_property_embedding_matches_reference(data):
    """Random operation sequences keep the embedding equal to the model."""
    capacity = data.draw(st.integers(min_value=8, max_value=48), label="capacity")
    expected_cost = data.draw(st.integers(min_value=2, max_value=30), label="E_R")
    embedding = Embedding(
        capacity,
        fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
        reliable_factory=lambda cap, slots: RandomizedPMA(cap, slots, seed=5),
        reliable_expected_cost=expected_cost,
    )
    driver = ReferenceDriver(embedding)
    length = data.draw(st.integers(min_value=1, max_value=80), label="length")
    for index in range(length):
        size = len(driver.reference)
        do_delete = size > 0 and (
            size >= capacity or data.draw(st.booleans(), label=f"delete-{index}")
        )
        if do_delete:
            driver.delete(data.draw(st.integers(1, size), label=f"rank-{index}"))
        else:
            driver.insert(data.draw(st.integers(1, size + 1), label=f"rank-{index}"))
    driver.check()
    embedding.check_consistency()
