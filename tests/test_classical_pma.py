"""Tests specific to the classical packed-memory array."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import ClassicalPMA, NaiveLabeler
from repro.analysis import run_workload
from repro.workloads import RandomWorkload

from tests.conftest import ReferenceDriver


class TestGeometry:
    def test_segment_size_is_logarithmic(self):
        pma = ClassicalPMA(1024)
        assert pma.segment_size == pytest.approx(math.log2(pma.num_slots), abs=2)

    def test_thresholds_interpolate(self):
        pma = ClassicalPMA(256)
        assert pma.upper_threshold(0) >= pma.upper_threshold(pma.height)
        assert pma.lower_threshold(0) <= pma.lower_threshold(pma.height)
        assert pma.lower_threshold(pma.height) < pma.upper_threshold(pma.height)

    def test_window_bounds_contain_slot_and_are_nested(self):
        pma = ClassicalPMA(512)
        slot = 100
        previous = (slot, slot + 1)
        for level in range(pma.height + 1):
            lo, hi = pma._window_bounds(slot, level)
            assert lo <= slot < hi
            assert lo <= previous[0] and previous[1] <= hi
            previous = (lo, hi)
        assert pma._window_bounds(slot, pma.height) == (0, pma.num_slots)

    def test_root_threshold_allows_full_capacity(self):
        pma = ClassicalPMA(100, num_slots=110)
        assert pma.upper_threshold(pma.height) >= 100 / 110


class TestRebalancing:
    def test_rebalances_happen_and_are_counted(self):
        driver = ReferenceDriver(ClassicalPMA(256), seed=2)
        for _ in range(256):
            driver.insert(1)  # front hammering forces rebalances
        driver.check()
        assert driver.labeler.rebalance_count > 0
        assert driver.labeler.rebalance_moves > 0

    def test_even_targets_are_strictly_increasing(self):
        targets = ClassicalPMA.even_targets(10, 30, 7)
        assert targets == sorted(set(targets))
        assert all(10 <= t < 30 for t in targets)

    def test_even_targets_reject_overflow(self):
        with pytest.raises(ValueError):
            ClassicalPMA.even_targets(0, 3, 4)


class TestCostProfile:
    def test_amortized_cost_is_polylogarithmic(self):
        """On uniform random insertions the amortized cost must be far below
        the naive labeler's Θ(n)."""
        n = 1024
        pma_run = run_workload(ClassicalPMA(n), RandomWorkload(n, n, seed=1))
        naive_run = run_workload(NaiveLabeler(n), RandomWorkload(n, n, seed=1))
        assert pma_run.amortized_cost < naive_run.amortized_cost / 5
        log_sq = math.log2(n) ** 2
        assert pma_run.amortized_cost < 3 * log_sq
