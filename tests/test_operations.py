"""Tests for operations, moves, and result cost accounting."""

from __future__ import annotations

import pytest

from repro.core.operations import (
    DELETE,
    INSERT,
    Move,
    Operation,
    OperationResult,
    total_cost,
)


class TestOperation:
    def test_insert_constructor(self):
        operation = Operation.insert(3, key="k")
        assert operation.is_insert and not operation.is_delete
        assert operation.rank == 3
        assert operation.key == "k"

    def test_delete_constructor(self):
        operation = Operation.delete(1)
        assert operation.is_delete
        assert operation.kind == DELETE

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Operation("upsert", 1)

    def test_rank_must_be_positive(self):
        with pytest.raises(ValueError):
            Operation(INSERT, 0)

    def test_operations_are_hashable_and_frozen(self):
        operation = Operation.insert(1)
        assert hash(operation) == hash(Operation.insert(1))
        with pytest.raises(AttributeError):
            operation.rank = 2


class TestMove:
    def test_placement_costs_one(self):
        move = Move("x", None, 5)
        assert move.is_placement and not move.is_removal
        assert move.cost == 1

    def test_removal_costs_zero(self):
        move = Move("x", 5, None)
        assert move.is_removal
        assert move.cost == 0

    def test_relocation_costs_one(self):
        assert Move("x", 2, 9).cost == 1

    def test_noop_move_costs_zero(self):
        assert Move("x", 4, 4).cost == 0


class TestOperationResult:
    def test_cost_sums_moves(self):
        result = OperationResult(Operation.insert(1))
        result.extend([Move("a", None, 0), Move("b", 3, 4), Move("c", 7, None)])
        assert result.cost == 2
        assert result.moved_elements() == ["a", "b"]

    def test_iteration_yields_moves(self):
        result = OperationResult(Operation.delete(1), [Move("a", 1, None)])
        assert [move.element for move in result] == ["a"]

    def test_total_cost_helper(self):
        first = OperationResult(Operation.insert(1), [Move("a", None, 0)])
        second = OperationResult(Operation.insert(2), [Move("b", None, 1), Move("a", 0, 2)])
        assert total_cost([first, second]) == 3
