"""Tests for the deamortized (worst-case bounded) PMA."""

from __future__ import annotations

from repro.algorithms import ClassicalPMA, DeamortizedPMA
from repro.analysis import run_workload
from repro.workloads import HammerWorkload, RandomWorkload, SequentialWorkload

from tests.conftest import ReferenceDriver


class TestWorkCap:
    def test_work_cap_is_polylogarithmic(self):
        pma = DeamortizedPMA(4096)
        assert pma.work_cap <= 4 * (13**2)  # ~ work_factor * log2(m)^2

    def test_worst_case_is_far_below_classical(self):
        n = 1024
        classical = run_workload(ClassicalPMA(n), RandomWorkload(n, n, seed=5))
        deamortized = run_workload(DeamortizedPMA(n), RandomWorkload(n, n, seed=5))
        assert deamortized.worst_case_cost < classical.worst_case_cost / 2
        # The incremental tasks must not blow up the amortized cost either.
        assert deamortized.amortized_cost < 4 * classical.amortized_cost + 10

    def test_worst_case_bounded_on_hammer(self):
        n = 1024
        run = run_workload(DeamortizedPMA(n), HammerWorkload(n, seed=2))
        assert run.worst_case_cost <= 3 * DeamortizedPMA(n).work_cap

    def test_worst_case_bounded_on_sequential(self):
        n = 1024
        run = run_workload(DeamortizedPMA(n), SequentialWorkload(n))
        assert run.worst_case_cost <= 3 * DeamortizedPMA(n).work_cap


class TestBackgroundTasks:
    def test_tasks_drain_and_forced_rebalances_are_rare(self):
        n = 1024
        labeler = DeamortizedPMA(n)
        run_workload(labeler, RandomWorkload(n, n, seed=7))
        assert labeler.background_moves > 0
        assert labeler.forced_rebalances <= n // 50

    def test_consistency_under_churn(self):
        driver = ReferenceDriver(DeamortizedPMA(128), seed=13)
        for step in range(600):
            driver.random_operation(delete_probability=0.4)
            if step % 150 == 0:
                driver.check()
        driver.check()

    def test_deletions_never_rebalance(self):
        labeler = DeamortizedPMA(64)
        driver = ReferenceDriver(labeler, seed=1)
        for _ in range(64):
            driver.insert(len(driver.reference) + 1)
        delete_costs = [driver.delete(1) for _ in range(32)]
        # Deletion itself costs no moves (background task work may add some,
        # but an empty task queue means zero).
        assert min(delete_costs) == 0
        driver.check()
