"""Parallel shard execution: pool mechanics and serial-vs-pooled identity.

The determinism contract under test: with the same seed, a pooled run
must be *bit-identical* to the serial run — same elements, same labels,
same per-shard physical layout, and the same move log, operation by
operation.  Parallelism may reorder execution, never results.

The worker count for the pooled side honours ``REPRO_PARALLEL_WORKERS``
(default 8) so the CI matrix can sweep {1, 2, 8} over one test body.
"""

from __future__ import annotations

import os
import random
import threading
from itertools import islice

import pytest

from repro.algorithms import ClassicalPMA
from repro.analysis import run_workload
from repro.core import ShardedLabeler
from repro.core.parallel import ShardPool, default_workers, resolve_pool
from repro.store.harness import (
    make_ops,
    move_log_digest,
    parallel_replay,
    record_move_log,
)
from repro.workloads import ZipfianWorkload

WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "8"))


def classical_factory(capacity):
    return ClassicalPMA(capacity)


def make(shard_capacity=16, **kwargs):
    return ShardedLabeler(classical_factory, shard_capacity=shard_capacity, **kwargs)


class TestShardPool:
    def test_results_come_back_in_task_order(self):
        release = threading.Event()

        def slow():
            release.wait(timeout=5)
            return "slow"

        tasks = [slow] + [lambda i=i: i for i in range(10)]
        with ShardPool(4) as pool:
            timer = threading.Timer(0.05, release.set)
            timer.start()
            try:
                results = pool.run(tasks)
            finally:
                timer.cancel()
        assert results == ["slow"] + list(range(10))

    def test_serial_pool_runs_inline_without_threads(self):
        pool = ShardPool(1)
        assert pool.is_serial
        names = set()
        pool.run([lambda: names.add(threading.current_thread().name)] * 4)
        assert names == {threading.current_thread().name}
        assert pool._executor is None  # never started a worker

    def test_single_task_runs_inline_even_on_a_wide_pool(self):
        with ShardPool(8) as pool:
            thread_name = pool.run([lambda: threading.current_thread().name])
        assert thread_name == [threading.current_thread().name]

    def test_exceptions_propagate_after_all_tasks_finish(self):
        finished = []

        def boom():
            raise RuntimeError("task failed")

        with ShardPool(2) as pool:
            with pytest.raises(RuntimeError, match="task failed"):
                pool.run([boom, lambda: finished.append(1), boom])
        assert finished == [1]  # later tasks still ran to completion

    def test_closed_pool_degrades_to_inline(self):
        pool = ShardPool(4)
        assert pool.run([lambda: 1, lambda: 2]) == [1, 2]
        pool.close()
        assert pool.is_serial
        assert pool.run([lambda: 3, lambda: 4]) == [3, 4]

    def test_default_workers_is_bounded(self):
        assert 1 <= default_workers() <= 8
        assert ShardPool(None).max_workers == default_workers()

    def test_resolve_pool_rejects_both_knobs(self):
        with pytest.raises(ValueError):
            resolve_pool(ShardPool(2), 2)

    def test_resolve_pool_ownership(self):
        assert resolve_pool(None, None) == (None, False)
        assert resolve_pool(None, 1) == (None, False)
        shared = ShardPool(2)
        assert resolve_pool(shared, None) == (shared, False)
        owned, is_owned = resolve_pool(None, 4)
        assert is_owned and owned.max_workers == 4
        owned.close()
        shared.close()


class TestLabelerPoolPlumbing:
    def test_max_workers_knob_builds_an_owned_pool(self):
        labeler = make(max_workers=4)
        assert labeler.pool is not None
        assert labeler.pool.max_workers == 4
        labeler.close_parallel()
        assert labeler.pool is None

    def test_injected_pool_is_shared_not_closed(self):
        pool = ShardPool(2)
        labeler = make(parallel=pool)
        assert labeler.pool is pool
        labeler.set_parallel(None)
        assert not pool.is_serial  # detaching must not close a shared pool
        pool.close()

    def test_set_parallel_closes_a_previously_owned_pool(self):
        labeler = make(max_workers=4)
        owned = labeler.pool
        replacement = ShardPool(2)
        labeler.set_parallel(replacement)
        assert owned.is_serial  # the owned pool was closed on replacement
        assert labeler.pool is replacement
        replacement.close()

    def test_both_knobs_rejected(self):
        pool = ShardPool(2)
        with pytest.raises(ValueError):
            make(parallel=pool, max_workers=2)
        pool.close()


def _mixed_batches(steps, seed, *, max_batch=24):
    """A seeded stream of valid insert/delete batches over a model list."""
    rng = random.Random(seed)
    model = 0  # only the size matters for rank validity
    counter = 0
    script = []
    for _ in range(steps):
        if model and rng.random() < 0.4:
            count = min(model, rng.randint(1, max_batch))
            ranks = sorted(rng.sample(range(1, model + 1), count))
            script.append(("delete", ranks))
            model -= count
        else:
            count = rng.randint(1, max_batch)
            items = []
            for _ in range(count):
                # insert_batch takes pre-batch ranks: all validated (and
                # applied, descending) against the size before the batch.
                rank = rng.randint(1, model + 1)
                counter += 1
                items.append((rank, counter))
            script.append(("insert", items))
            model += count
    return script


def _replay(script, pool):
    labeler = make(shard_capacity=16, parallel=pool)
    log = record_move_log(labeler)
    for kind, payload in script:
        if kind == "insert":
            labeler.insert_batch(payload)
        else:
            labeler.delete_batch(payload)
    labeler.check_consistency()
    return labeler, log


class TestParallelMatchesSerial:
    """Bit-identical execution across worker counts."""

    def test_mixed_batches_are_bit_identical(self):
        script = _mixed_batches(200, seed=7)
        serial, serial_log = _replay(script, None)
        with ShardPool(WORKERS) as pool:
            pooled, pooled_log = _replay(script, pool)
        assert pooled.elements() == serial.elements()
        assert pooled.labels() == serial.labels()
        assert [tuple(s.slots()) for s in pooled.shards] == [
            tuple(s.slots()) for s in serial.shards
        ]
        assert pooled.restructure_log == serial.restructure_log
        assert move_log_digest(pooled_log) == move_log_digest(serial_log)

    def test_replay_digests_agree_across_worker_counts(self):
        ops = make_ops(300, seed=11)
        baseline = parallel_replay(ops, shard_capacity=16, max_workers=1)
        for workers in (2, WORKERS):
            assert (
                parallel_replay(ops, shard_capacity=16, max_workers=workers)
                == baseline
            )

    def test_run_workload_with_pool_matches_serial(self):
        def one(max_workers):
            labeler = make(shard_capacity=16)
            result = run_workload(
                labeler,
                ZipfianWorkload(600, seed=5),
                batch_size=64,
                max_workers=max_workers,
            )
            return labeler, result

        serial, serial_result = one(1)
        pooled, pooled_result = one(WORKERS)
        assert pooled.elements() == serial.elements()
        assert pooled.labels() == serial.labels()
        assert pooled_result.total_cost == serial_result.total_cost
        assert pooled.pool is None  # the runner detached its owned pool


class TestParallelReads:
    def build(self, n=600):
        serial = make(shard_capacity=16)
        serial.bulk_load(list(range(n)))
        return serial

    def test_range_ranks_matches_cursor_drain(self):
        labeler = self.build()
        windows = [(1, 600), (50, 420), (299, 301), (595, 600), (7, 7)]
        expected = {
            window: list(
                islice(labeler.iter_from(window[0]), window[1] - window[0] + 1)
            )
            for window in windows
        }
        with ShardPool(WORKERS) as pool:
            labeler.set_parallel(pool)
            for window in windows:
                assert labeler.range_ranks(*window) == expected[window]
            labeler.set_parallel(None)
        # Serial path answers identically without a pool.
        for window in windows:
            assert labeler.range_ranks(*window) == expected[window]
        assert labeler.range_ranks(10, 5) == []
        assert labeler.range_ranks(601, 700) == []

    def test_count_ranges_matches_the_singleton_loop(self):
        labeler = self.build()
        rng = random.Random(3)
        windows = [
            tuple(sorted((rng.randrange(labeler.num_slots),
                          rng.randrange(labeler.num_slots))))
            for _ in range(40)
        ]
        expected = [labeler.count_range(lo, hi) for lo, hi in windows]
        with ShardPool(WORKERS) as pool:
            labeler.set_parallel(pool)
            assert labeler.count_ranges(windows) == expected
            labeler.set_parallel(None)
        assert labeler.count_ranges(windows) == expected
