"""Lemma 4: the R-shell's input is independent of the R-shell's random bits.

The embedding records the exact operation sequence it hands to the R-shell
(``shell_input_trace``).  Running the same original input against embeddings
whose reliable algorithm uses *different random seeds* must produce the very
same shell input sequence — the randomness of R cannot leak back into what R
is asked to do.  Changing the *fast* algorithm's behaviour, by contrast, is
allowed to change the trace.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms import AdaptivePMA, NaiveLabeler, RandomizedPMA
from repro.core import Embedding

from tests.conftest import ReferenceDriver


def build(seed: int, capacity: int = 192, expected_cost: int = 10) -> Embedding:
    return Embedding(
        capacity,
        fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
        reliable_factory=lambda cap, slots: RandomizedPMA(cap, slots, seed=seed),
        reliable_expected_cost=expected_cost,
    )


def drive(embedding: Embedding, operations: int = 192) -> list[tuple[str, int]]:
    driver = ReferenceDriver(embedding, seed=123)
    for _ in range(operations):
        driver.random_operation(delete_probability=0.2)
    return list(embedding.shell_input_trace)


class TestLemma4:
    def test_shell_input_identical_across_r_seeds(self):
        traces = [drive(build(seed)) for seed in (1, 2, 3, 99)]
        assert traces[0], "the workload must exercise the slow path"
        for trace in traces[1:]:
            assert trace == traces[0]

    def test_shell_input_depends_on_the_fast_algorithm(self):
        """Sanity check: the trace is not a constant — it reflects F's choices."""
        naive_trace = drive(build(1))
        adaptive = Embedding(
            192,
            fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
            reliable_factory=lambda cap, slots: RandomizedPMA(cap, slots, seed=1),
            reliable_expected_cost=10,
        )
        adaptive_trace = drive(adaptive)
        assert naive_trace != adaptive_trace

    def test_contents_identical_across_r_seeds(self):
        """The user-visible element order never depends on R's random bits."""
        first, second = build(7), build(11)
        driver_a = ReferenceDriver(first, seed=5)
        driver_b = ReferenceDriver(second, seed=5)
        for _ in range(150):
            driver_a.random_operation(delete_probability=0.25)
            driver_b.random_operation(delete_probability=0.25)
        assert first.elements() == second.elements()
