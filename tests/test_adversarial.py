"""Tests for the adversarial workloads and the runner's latency capture.

Covers the tail-latency layer end to end: every adversarial workload is
seeded-deterministic and structurally valid, runs through ``run_workload``
in singleton and batched mode against every registered algorithm plus the
sharded and durable layers, the runner's injectable clock produces exact
latency percentiles with a fake clock, and the cliff-chaser actually
concentrates its insertions (the property that makes it adversarial).
"""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms import ClassicalPMA, DeamortizedPMA
from repro.analysis.runner import run_workload
from repro.core.sharded import ShardedLabeler
from repro.workloads import (
    ADVERSARIAL_WORKLOADS,
    CompactionStormWorkload,
    DriftingZipfWorkload,
    FlashCrowdWorkload,
    RebalanceCliffWorkload,
    SortedRandomInterleaveWorkload,
)

from tests.conftest import ALGORITHM_FACTORIES


class FakeClock:
    """A deterministic clock: every call advances by a scripted tick."""

    def __init__(self, ticks=None):
        self._time = 0.0
        self._ticks = iter(ticks) if ticks is not None else itertools.repeat(1.0)

    def __call__(self) -> float:
        now = self._time
        self._time += next(self._ticks)
        return now


@pytest.mark.parametrize("name", sorted(ADVERSARIAL_WORKLOADS))
class TestAdversarialDeterminism:
    def test_same_seed_same_stream(self, name):
        factory = ADVERSARIAL_WORKLOADS[name]
        first = [(op.kind, op.rank) for op in factory(300, 42)]
        second = [(op.kind, op.rank) for op in factory(300, 42)]
        assert first == second
        assert len(first) == 300

    def test_different_seeds_differ(self, name):
        factory = ADVERSARIAL_WORKLOADS[name]
        first = [(op.kind, op.rank) for op in factory(300, 1)]
        second = [(op.kind, op.rank) for op in factory(300, 2)]
        assert first != second

    def test_runs_on_every_algorithm(self, name, algorithm_name):
        factory = ADVERSARIAL_WORKLOADS[name]
        labeler = ALGORITHM_FACTORIES[algorithm_name](128)
        result = run_workload(labeler, factory(128, 5), validate_every=64)
        assert result.tracker.operations == 128
        assert list(labeler.elements()) == result.final_keys

    def test_runs_sharded_singleton_and_batched(self, name):
        factory = ADVERSARIAL_WORKLOADS[name]
        singleton = run_workload(
            ShardedLabeler(lambda c: ClassicalPMA(c), shard_capacity=32),
            factory(256, 5),
            validate_every=128,
        )
        batched = run_workload(
            ShardedLabeler(lambda c: ClassicalPMA(c), shard_capacity=32),
            factory(256, 5),
            batch_size=16,
            validate_every=128,
        )
        # Both execution modes must land on the same final sequence and
        # logical-operation count; only the cost accounting differs.
        assert singleton.final_keys == batched.final_keys
        assert singleton.tracker.operations == batched.tracker.operations

    def test_runs_durable_and_replays(self, name, tmp_path):
        from repro.analysis.runner import replay_run

        factory = ADVERSARIAL_WORKLOADS[name]
        original = run_workload(
            DeamortizedPMA(128),
            factory(128, 5),
            durable_dir=tmp_path,
            durable_sync="never",
        )
        replayed = replay_run(tmp_path, DeamortizedPMA(128))
        assert replayed.final_keys == original.final_keys


class TestCliffChaserShape:
    def test_insert_only_and_concentrated(self):
        workload = RebalanceCliffWorkload(512, seed=3)
        buckets = [0] * 16
        size = 0
        post_warmup = 0
        for operation in workload:
            assert operation.is_insert
            if size >= 128:  # past warmup
                bucket = min(15, operation.rank * 16 // (size + 2))
                buckets[bucket] += 1
                post_warmup += 1
            size += 1
        # Feedback-driven hammering: the hottest window absorbs far more
        # than a uniform share (1/16) of the post-warmup insertions.
        assert max(buckets) > post_warmup // 4

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            RebalanceCliffWorkload(10, buckets=0)
        with pytest.raises(ValueError):
            RebalanceCliffWorkload(10, warmup_fraction=1.0)
        with pytest.raises(ValueError):
            RebalanceCliffWorkload(10, probe_every=0)
        with pytest.raises(ValueError):
            RebalanceCliffWorkload(10, jitter=-1)
        with pytest.raises(ValueError):
            DriftingZipfWorkload(10, skew_start=0.0)
        with pytest.raises(ValueError):
            DriftingZipfWorkload(10, drift_cycles=0.0)
        with pytest.raises(ValueError):
            FlashCrowdWorkload(10, burst_length=0)
        with pytest.raises(ValueError):
            FlashCrowdWorkload(10, burst_every=0)
        with pytest.raises(ValueError):
            CompactionStormWorkload(10, grow_fraction=1.0)
        with pytest.raises(ValueError):
            CompactionStormWorkload(10, region_width=0.0)
        with pytest.raises(ValueError):
            SortedRandomInterleaveWorkload(10, run_length=0)


class TestFlashCrowdShape:
    def test_bursts_are_sorted_runs(self):
        workload = FlashCrowdWorkload(300, burst_length=16, burst_every=64, seed=4)
        ranks = [op.rank for op in workload]
        # Find at least one run of 16 strictly consecutive ascending ranks
        # (the sorted ingest burst).
        runs = 0
        streak = 1
        for previous, current in zip(ranks, ranks[1:]):
            if current == previous + 1:
                streak += 1
                if streak == 16:
                    runs += 1
                    streak = 1
            else:
                streak = 1
        assert runs >= 2


class TestCompactionStormShape:
    def test_contains_delete_storms(self):
        workload = CompactionStormWorkload(600, storm_length=64, seed=5)
        kinds = [op.kind for op in workload]
        deletes = kinds.count("delete")
        assert deletes >= 64
        # Deletions arrive in contiguous storms, not interleaved churn.
        longest = 0
        current = 0
        for kind in kinds:
            current = current + 1 if kind == "delete" else 0
            longest = max(longest, current)
        assert longest >= 32


class TestRunnerLatencyCapture:
    def test_fake_clock_singleton_latencies_exact(self):
        # Two clock() calls per write → each op takes exactly one tick.
        result = run_workload(
            ClassicalPMA(32),
            SortedRandomInterleaveWorkload(32, run_length=8, seed=1),
            clock=FakeClock(),
        )
        tracker = result.tracker
        assert tracker.latency_events == 32
        assert tracker.latency_percentile(0.5) == pytest.approx(1.0)
        assert tracker.latency_percentile(0.999) == pytest.approx(1.0)
        assert tracker.max_latency == pytest.approx(1.0)

    def test_fake_clock_batched_latency_is_per_operation(self):
        result = run_workload(
            ShardedLabeler(lambda c: ClassicalPMA(c), shard_capacity=32),
            SortedRandomInterleaveWorkload(64, run_length=64, seed=1),
            batch_size=16,
            clock=FakeClock(),
        )
        tracker = result.tracker
        assert tracker.batches == 4
        # Each batch of 16 took one fake tick → 1/16 s per operation.
        assert tracker.latency_percentile(0.5) == pytest.approx(1.0 / 16.0)
        assert tracker.event_latency_percentile(0.5) == pytest.approx(1.0)

    def test_summary_surfaces_latency_percentiles(self):
        result = run_workload(
            ClassicalPMA(64),
            RebalanceCliffWorkload(64, seed=2),
            clock=FakeClock(ticks=itertools.cycle([0.5, 1.5])),
        )
        summary = result.summary()
        for key in ("latency_p50", "latency_p99", "latency_p999", "latency_max"):
            assert key in summary
        assert summary["p999"] >= summary["p99"] >= summary["p50"]
