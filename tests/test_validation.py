"""Tests for the invariant-checking helpers."""

from __future__ import annotations

import pytest

from repro.algorithms import NaiveLabeler
from repro.core.exceptions import InvariantViolation
from repro.core.validation import (
    check_capacity_slack,
    check_contents,
    check_labeler,
    check_moves_consistent,
    check_sorted,
)


class TestCheckSorted:
    def test_accepts_sorted_with_gaps(self):
        check_sorted([1, None, 3, None, None, 7])

    def test_rejects_out_of_order(self):
        with pytest.raises(InvariantViolation):
            check_sorted([1, None, 3, 2])

    def test_rejects_duplicates(self):
        with pytest.raises(InvariantViolation):
            check_sorted([5, 5])

    def test_key_function(self):
        check_sorted([("a", 1), None, ("b", 2)], key=lambda pair: pair[1])


class TestCheckLabeler:
    def test_passes_on_consistent_structure(self):
        labeler = NaiveLabeler(4)
        labeler.insert(1, 1)
        labeler.insert(2, 2)
        check_labeler(labeler, expected=[1, 2])

    def test_contents_mismatch_detected(self):
        labeler = NaiveLabeler(4)
        labeler.insert(1, 1)
        with pytest.raises(InvariantViolation):
            check_contents(labeler, [2])

    def test_capacity_slack(self):
        labeler = NaiveLabeler(100)
        check_capacity_slack(labeler, minimum_slack=0.01)
        with pytest.raises(InvariantViolation):
            check_capacity_slack(labeler, minimum_slack=3.0)


class TestMovesConsistent:
    def test_accepts_reported_moves(self):
        before = [1, 2, None]
        after = [1, None, 2]
        check_moves_consistent(before, after, moved=[2])

    def test_detects_unreported_moves(self):
        before = [1, 2, None]
        after = [1, None, 2]
        with pytest.raises(InvariantViolation):
            check_moves_consistent(before, after, moved=[])
