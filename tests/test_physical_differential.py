"""Differential trace tests: every physical backend vs ReferencePhysicalArray.

The contract fenced here is stronger than final-state equality: replaying a
recorded workload trace on every implementation — the slab
:class:`PhysicalArray` and, when numpy is importable, the bitboard
:class:`VectorPhysicalArray` — must produce the **same move log** as the
reference — the same ``(element, source, destination)`` sequence — plus
identical slot kinds, contents, deadweight accounting, and index answers.
Traces cover every physical primitive: embedding fast-path puts/moves,
chain moves with deadweight (both directions, both the short-scan and the
Fenwick-guided long path), slot relabels, and R-shell replays.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.operations import MoveRecorder, move_triples
from repro.core.physical import (
    BUFFER,
    F_SLOT,
    R_EMPTY,
    PhysicalArray,
    ReferencePhysicalArray,
)
from repro.core.physical_backends import vector_available
from repro.perf.scenarios import _record_chain_sparse_trace
from repro.perf.trace import record_insert_heavy_trace, replay_trace

CANDIDATES = {"slab": PhysicalArray}
if vector_available():
    from repro.core.physical_vector import VectorPhysicalArray

    CANDIDATES["vector"] = VectorPhysicalArray


def replay_on_all(trace, num_slots):
    """Replay a trace on the reference and every candidate backend."""
    reference = ReferencePhysicalArray(num_slots)
    reference_sink: list = []
    reference.move_sink = reference_sink
    replay_trace(trace, reference)
    reference.move_sink = None

    candidates = {}
    for name, cls in CANDIDATES.items():
        array = cls(num_slots)
        recorder = MoveRecorder()
        array.move_sink = recorder
        replay_trace(trace, array)
        array.move_sink = None
        candidates[name] = (array, recorder)
    return reference, reference_sink, candidates


def assert_equivalent(reference, reference_sink, candidates, *, ordered=True):
    if ordered:
        # Only workload traces keep elements physically sorted; the raw
        # primitive fuzz deliberately does not.
        reference.check_consistency()
    ranks = list(range(1, reference.element_count + 1))
    for name, (array, recorder) in candidates.items():
        # Move-log equality: element, source, destination — order included.
        assert move_triples(reference_sink) == recorder.triples(), name
        assert sum(move.cost for move in reference_sink) == recorder.total_cost, name
        # Full physical state.
        assert list(reference.kinds()) == list(array.kinds()), name
        assert list(reference.slots()) == list(array.slots()), name
        assert reference.elements() == array.elements(), name
        # Cost accounting.
        assert reference.total_deadweight_moves == array.total_deadweight_moves, name
        assert reference.deadweight_by_element == array.deadweight_by_element, name
        # Index answers.
        assert reference.element_count == array.element_count, name
        assert reference.f_slot_count == array.f_slot_count, name
        assert reference.buffer_count == array.buffer_count, name
        assert reference.dummy_buffer_count == array.dummy_buffer_count, name
        for rank in ranks:
            assert reference.element_at_rank(rank) == array.element_at_rank(rank), name
        assert reference.elements() == array.elements_at_ranks(ranks), name
        if ordered:
            array.check_consistency()


@pytest.mark.parametrize("seed", [1, 7, 20260730])
def test_embedding_insert_trace_is_move_identical(seed):
    trace, num_slots = record_insert_heavy_trace(192, seed)
    assert_equivalent(*replay_on_all(trace, num_slots))


@pytest.mark.parametrize("seed", [3, 11])
def test_embedding_churn_trace_is_move_identical(seed):
    # Deletions plus a tight reliable budget force slow-path buffering,
    # ghosts, rebuild incorporations and R-shell activity — the trace
    # exercises apply_shell_moves and take_element alongside the chain
    # machinery.
    trace, num_slots = record_insert_heavy_trace(
        256, seed, delete_fraction=0.35, reliable_expected_cost=4
    )
    ops = {op for op, _ in trace}
    assert "take" in ops and "chain" in ops
    assert_equivalent(*replay_on_all(trace, num_slots))


def test_shell_replay_trace_is_move_identical():
    # A tiny reliable budget forces nearly every operation onto the slow
    # path, maximizing shell traffic (token deletes + inserts).
    trace, num_slots = record_insert_heavy_trace(
        96, 5, reliable_expected_cost=1
    )
    assert any(op == "shell" for op, _ in trace)
    assert_equivalent(*replay_on_all(trace, num_slots))


@pytest.mark.parametrize("seed", [2, 13])
def test_sparse_chain_trace_is_move_identical(seed):
    trace, num_slots, _rounds = _record_chain_sparse_trace(256, seed)
    assert sum(1 for op, _ in trace if op == "chain") >= 8
    assert_equivalent(*replay_on_all(trace, num_slots))


def test_random_primitive_soup_is_move_identical():
    # Raw primitive fuzz (no embedding): random puts/takes/moves over a
    # mixed-kind array, applied to both implementations in lockstep.
    rng = random.Random(99)
    num_slots = 512
    spec = [
        F_SLOT if rng.random() < 0.5 else (BUFFER if rng.random() < 0.5 else R_EMPTY)
        for _ in range(num_slots)
    ]
    trace = [("init", (tuple(enumerate(spec)),))]
    scratch = ReferencePhysicalArray(num_slots)
    scratch.initialize_kinds(enumerate(spec))
    occupied: list[int] = []
    fresh = 0
    for _ in range(3000):
        roll = rng.random()
        if roll < 0.5 or not occupied:
            candidates = [
                p
                for p in range(num_slots)
                if scratch.kind(p) != R_EMPTY and scratch.element(p) is None
            ]
            if not candidates:
                continue
            position = rng.choice(candidates)
            scratch.put_element(position, fresh)
            trace.append(("put", (position, fresh, False)))
            occupied.append(position)
            fresh += 1
        elif roll < 0.8:
            index = rng.randrange(len(occupied))
            src = occupied[index]
            candidates = [
                p
                for p in range(num_slots)
                if scratch.kind(p) != R_EMPTY and scratch.element(p) is None
            ]
            if not candidates:
                continue
            dst = rng.choice(candidates)
            scratch.move_element(src, dst)
            trace.append(("move", (src, dst, False)))
            occupied[index] = dst
        else:
            index = rng.randrange(len(occupied))
            position = occupied.pop(index)
            scratch.take_element(position)
            trace.append(("take", (position,)))
    assert_equivalent(*replay_on_all(trace, num_slots), ordered=False)


class TestSparseChainPositions:
    """Regression: ``chain_positions`` must not pay ``O(hi - lo)`` on
    sparse arrays (the seed's scan dominated chain-move cost there)."""

    NUM_SLOTS = 400_000
    TOKENS = 16

    def _build(self, cls):
        array = cls(self.NUM_SLOTS)
        step = self.NUM_SLOTS // self.TOKENS
        kinds = [
            (i * step, F_SLOT if i % 2 == 0 else BUFFER)
            for i in range(self.TOKENS)
        ]
        array.initialize_kinds(kinds)
        return array

    def test_select_walk_matches_scan(self):
        slab = self._build(PhysicalArray)
        reference = self._build(ReferencePhysicalArray)
        full = slab.chain_positions(0, self.NUM_SLOTS - 1)
        assert full == reference.chain_positions(0, self.NUM_SLOTS - 1)
        assert len(full) == self.TOKENS
        # Partial and empty spans, boundaries inclusive.
        step = self.NUM_SLOTS // self.TOKENS
        assert slab.chain_positions(1, step - 1) == []
        assert slab.chain_positions(step, step) == [step]
        assert slab.chain_positions(step + 1, 3 * step) == [2 * step, 3 * step]

    def test_select_walk_beats_scan_on_sparse_array(self):
        slab = self._build(PhysicalArray)
        reference = self._build(ReferencePhysicalArray)
        lo, hi = 0, self.NUM_SLOTS - 1

        def best_of(callable_, repeats=3):
            times = []
            for _ in range(repeats):
                started = time.perf_counter()
                callable_()
                times.append(time.perf_counter() - started)
            return min(times)

        slab_time = best_of(lambda: slab.chain_positions(lo, hi))
        reference_time = best_of(lambda: reference.chain_positions(lo, hi))
        # 16 tokens over 400k slots: the select-walk does a few hundred slab
        # reads where the scan does 400k — orders of magnitude apart, so a
        # 5x margin keeps the assertion far from timing noise.
        assert slab_time * 5 < reference_time, (
            f"select-walk {slab_time:.6f}s vs scan {reference_time:.6f}s"
        )


@pytest.mark.parametrize("leftward", [True, False])
def test_degenerate_chain_fallback_relabel_is_identical(leftward):
    # A chain holding more elements than buffer slots (count - 1 > buffer
    # count) is unreachable from embedding chains but legal through the
    # public chain_move API, and drives the relabel's fallback branch where
    # the moved element lands inside the all-F interval.  Regression: the
    # slab relabel used to consult the pre-move element positions, so a
    # buffer slot that *received* an element during the compaction was
    # never flipped to F_SLOT and kinds() silently diverged.
    m = 96
    kinds = [F_SLOT] * m
    if leftward:
        kinds[1] = kinds[2] = BUFFER
        puts, chain = (92, 93, 94, 95), (95, 0)
    else:
        kinds[93] = kinds[94] = BUFFER
        puts, chain = (0, 1, 2, 3), (0, 93)
    trace = [("init", (tuple(enumerate(kinds)),))]
    trace.extend(("put", (position, position, False)) for position in puts)
    trace.append(("chain", chain))
    assert_equivalent(*replay_on_all(trace, m))
