"""Tests for the layered composition X ⊳ (Y ⊳ Z) (Theorem 3, Corollaries 11–12)."""

from __future__ import annotations

from repro.analysis import run_workload
from repro.algorithms import AdaptivePMA, ClassicalPMA, NaiveLabeler
from repro.core import Embedding, make_corollary11_labeler, make_corollary12_labeler
from repro.core.layered import (
    LayeredLabeler,
    corollary11_worst_case_bound,
    embedding_factory,
)
from repro.workloads import HammerWorkload, PredictedWorkload, RandomWorkload

from tests.conftest import ReferenceDriver


class TestStructure:
    def test_inner_embedding_is_the_shell(self):
        labeler = make_corollary11_labeler(64, seed=1)
        inner = labeler.inner_embedding
        assert isinstance(inner, Embedding)
        assert inner.num_slots == labeler.num_slots

    def test_embedding_factory_respects_prescribed_size(self):
        factory = embedding_factory(
            lambda cap, slots: NaiveLabeler(cap, slots),
            lambda cap, slots: ClassicalPMA(cap, slots),
        )
        built = factory(100, 180)
        assert built.capacity == 100
        assert built.num_slots == 180


class TestCorollary11:
    def test_consistency_on_mixed_workload(self):
        driver = ReferenceDriver(make_corollary11_labeler(96, seed=2), seed=3)
        for step in range(400):
            driver.random_operation(delete_probability=0.25)
            if step % 200 == 0:
                driver.check()
        driver.check()
        driver.labeler.check_consistency()

    def test_all_three_guarantees_hold_simultaneously(self):
        """Corollary 11: adaptive on hammer, bounded expected cost on random,
        bounded worst case everywhere — all from one structure."""
        n = 512
        layered_hammer = run_workload(
            make_corollary11_labeler(n, seed=4), HammerWorkload(n, seed=1)
        )
        classical_hammer = run_workload(ClassicalPMA(n), HammerWorkload(n, seed=1))
        layered_random = run_workload(
            make_corollary11_labeler(n, seed=4), RandomWorkload(n, n, seed=1)
        )
        naive_random = run_workload(NaiveLabeler(n), RandomWorkload(n, n, seed=1))

        # Adaptive bound: not worse than the non-adaptive classical PMA.
        assert layered_hammer.amortized_cost < 1.5 * classical_hammer.amortized_cost
        # Expected-cost bound: far cheaper than the naive baseline.
        assert layered_random.amortized_cost < naive_random.amortized_cost / 4
        # Worst-case bound: no Θ(n) spike on either workload.
        assert layered_hammer.worst_case_cost < corollary11_worst_case_bound(n)
        assert layered_random.worst_case_cost < corollary11_worst_case_bound(n)

    def test_worst_case_envelope_regression(self):
        """Regression for the bench_corollary11 bound repair.

        The envelope is the structure's own constants (6·E_Z + 2·E_Y with a
        4/3 margin), so it must (a) hold empirically across seeds at a size
        small enough to run quickly, and (b) grow polylogarithmically — by
        n = 1024 (the benchmark size) it must already sit below n, and the
        bound-to-n ratio must shrink as n doubles.
        """
        n = 256
        bound = corollary11_worst_case_bound(n)
        for seed in (1, 5, 9):
            hammer = run_workload(
                make_corollary11_labeler(n, seed=seed), HammerWorkload(n, seed=seed)
            )
            assert hammer.worst_case_cost < bound
        # Θ(log² n) shape: the envelope falls away from n as n grows.
        ratios = [
            corollary11_worst_case_bound(size) / size
            for size in (1024, 4096, 16384, 65536)
        ]
        assert corollary11_worst_case_bound(1024) < 1024
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < 0.05


class TestCorollary12:
    def test_prediction_quality_drives_cost(self):
        n = 384
        good = PredictedWorkload(n, eta=1, seed=5)
        bad = PredictedWorkload(n, eta=n // 2, seed=5)
        good_run = run_workload(
            make_corollary12_labeler(n, good.predictor, seed=6), good
        )
        bad_run = run_workload(
            make_corollary12_labeler(n, bad.predictor, seed=6), bad
        )
        assert good_run.amortized_cost <= bad_run.amortized_cost
        # Even with terrible predictions the worst case stays far from Θ(n).
        assert bad_run.worst_case_cost < n / 2

    def test_consistency(self):
        n = 128
        workload = PredictedWorkload(n, eta=4, seed=7)
        labeler = make_corollary12_labeler(n, workload.predictor, seed=8)
        result = run_workload(labeler, workload, validate_every=64)
        labeler.check_consistency()
        assert result.tracker.operations == n


class TestCustomComposition:
    def test_three_custom_factories(self):
        labeler = LayeredLabeler(
            64,
            adaptive_factory=lambda cap, slots: AdaptivePMA(cap, slots),
            expected_factory=lambda cap, slots: ClassicalPMA(cap, slots),
            worst_case_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        )
        driver = ReferenceDriver(labeler, seed=9)
        for _ in range(200):
            driver.random_operation()
        driver.check()
        labeler.check_consistency()
